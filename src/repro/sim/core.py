"""Discrete-event simulation kernel: environment and processes.

This is a small, dependency-free engine in the style of SimPy.  All of the
Madeus middleware, the MVCC storage engine, the cluster substrate, and the
TPC-W emulated browsers run as processes on one :class:`Environment`.

Determinism: events are ordered by ``(time, priority, sequence)`` where
``sequence`` is a monotonically increasing tie-breaker, so runs are
exactly reproducible for a fixed seed.  The implementation folds priority
and sequence into one integer sort key (normal events use the plain
sequence number, urgent kernel events use ``seq - URGENT_BIAS``; see
:data:`~repro.sim.events.URGENT_BIAS`) so queue entries are
``(when, key, event)`` 3-tuples whose first two elements are always
unique — the event object itself is never reached by a comparison.

Performance: three internally-sorted queues realise the classic total
order, merged at dispatch by lexicographic entry compare.

* a same-tick FIFO deque for zero-delay normal events — every
  ``succeed()``/``fail()`` and ``timeout(0)`` lands here in O(1) instead
  of paying two O(log n) heap operations,
* a monotone FIFO *lane* for future normal events whose entry is >= the
  current lane tail — fixed think times, uniform retry intervals and
  constant cpu-cost chains schedule in near-sorted order, and each such
  event costs two deque operations instead of two heap operations, and
* a binary heap for everything else: out-of-order future events and the
  rare urgent kernel events (process starts, interrupts, the ``until``
  stop).

All three queues draw keys from one monotonic sequence counter, so the
merge reproduces the single-heap total order exactly; seeded runs are
bit-identical to the classic implementation.

The dispatch loop in :meth:`Environment.run` is deliberately inlined
(no per-event ``step()`` call, locals for the queues, the single-waiter
process resume folded in) — this kernel processes millions of events for
a paper-scale experiment.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Generator, Iterable, List, Optional, Tuple

from .events import (
    PENDING,
    PROCESSED,
    TRIGGERED,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
    URGENT_BIAS,
)

ProcessGenerator = Generator[Event, Any, Any]

#: Priority used for normal events.
NORMAL = 1
#: Priority used for urgent (kernel-internal) events.
URGENT = 0


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at ``until``."""


class Environment:
    """Execution environment for a single simulation run.

    The environment owns simulated time, the event queues, and the
    scheduler loop.  Typical use::

        env = Environment()

        def proc(env):
            yield env.timeout(5)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 5
    """

    __slots__ = ("_now", "_queue", "_tick", "_lane", "_lane_when", "_seq",
                 "_active_process", "_pool")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: Out-of-order future + urgent events: heap of ``(when, key, ev)``.
        self._queue: List[Tuple[float, int, Event]] = []
        #: Zero-delay normal events at the current timestamp (FIFO).
        self._tick: deque = deque()
        #: Near-sorted future normal events (FIFO, non-decreasing entries).
        #: Because keys are globally monotone, an entry belongs here iff
        #: its ``when`` is >= the tail timestamp ``_lane_when``.
        self._lane: deque = deque()
        self._lane_when = 0.0
        self._seq = 0
        self._active_process: Optional["Process"] = None
        #: Free list of dead Timeout objects for reuse by :meth:`timeout`.
        self._pool: List[Timeout] = []

    # ------------------------------------------------------------------
    # time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def events_processed(self) -> int:
        """Total events dispatched so far (the sim-throughput metric).

        Derived instead of counted: every schedule bumps ``_seq`` exactly
        once and every scheduled entry is dispatched exactly once, so
        dispatched = scheduled - still-pending.  This keeps one increment
        out of the hot dispatch loop.
        """
        return (self._seq - len(self._tick) - len(self._lane)
                - len(self._queue))

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        """Enqueue ``event`` after ``delay`` (kernel-internal API).

        Hot callers (``succeed``/``fail``/``timeout``) inline this; the
        method is kept for cold paths and compatibility.
        """
        self._seq = seq = self._seq + 1
        if priority == URGENT:
            heappush(self._queue, (self._now + delay, seq - URGENT_BIAS,
                                   event))
        elif delay == 0:
            self._tick.append((self._now, seq, event))
        else:
            when = self._now + delay
            lane = self._lane
            if when >= self._lane_when or not lane:
                self._lane_when = when
                lane.append((when, seq, event))
            else:
                heappush(self._queue, (when, seq, event))

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None,
                _TRIGGERED=TRIGGERED, _Timeout=Timeout,
                _heappush=heappush) -> Timeout:
        """Create an event that fires after ``delay`` simulated time units.

        The trailing underscore parameters are bound at definition time
        purely so the hot path reads them as locals; callers must not
        pass them.
        """
        # Flattened Timeout construction (bypasses Event.__init__ and
        # Timeout.__init__): one timeout per simulated wait makes this the
        # single most-called constructor in a run.  Dead timeouts are
        # recycled through ``_pool`` by the run loop (see :meth:`run`),
        # skipping the allocation entirely on the steady-state path.
        pool = self._pool
        if pool:
            # Invariants of a pooled timeout: env is self, callbacks is
            # None, _exception is None, name is None (only run() pools,
            # and only after dispatch cleared the callbacks).  ``delay``
            # keeps the value from the previous use — nothing reads it
            # back, and skipping the store matters at this call rate.
            event = pool.pop()
            event._value = value
            event._state = _TRIGGERED
        else:
            event = _Timeout.__new__(_Timeout)
            event.env = self
            event.callbacks = None
            event._value = value
            event._exception = None
            event._state = _TRIGGERED
            event.name = None
            event.delay = delay
        self._seq = seq = self._seq + 1
        if delay > 0:
            when = self._now + delay
            lane = self._lane
            # One comparison on the hot path: a stale ``_lane_when`` on
            # an empty lane is harmless either way (any entry may start
            # a fresh lane), so the emptiness test only runs when the
            # monotonicity test fails.
            if when >= self._lane_when or not lane:
                self._lane_when = when
                lane.append((when, seq, event))
            else:
                _heappush(self._queue, (when, seq, event))
        elif delay == 0:
            self._tick.append((self._now, seq, event))
        else:
            # Undo the speculative bookkeeping from the fast path above.
            self._seq = seq - 1
            pool.append(event)
            raise ValueError("negative delay %r" % delay)
        return event

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> "Process":
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        item = self._pop_next()
        if item is None:
            return float("inf")
        # Push back (the heap is a correct destination for any entry).
        heappush(self._queue, item)
        return item[0]

    def _pop_next(self) -> Optional[Tuple[float, int, Event]]:
        """Pop the globally smallest ``(when, key, event)`` entry.

        Merges the three internally-sorted sources (same-tick FIFO, lane,
        heap) by lexicographic entry compare; all three draw keys from one
        monotonic sequence counter, so the merge reproduces the
        single-queue total order exactly.
        """
        tick, lane, queue = self._tick, self._lane, self._queue
        if tick:
            head = tick[0]
            if lane and lane[0] < head:
                if queue and queue[0] < lane[0]:
                    return heappop(queue)
                return lane.popleft()
            if queue and queue[0] < head:
                return heappop(queue)
            return tick.popleft()
        if lane:
            if queue and queue[0] < lane[0]:
                return heappop(queue)
            return lane.popleft()
        if queue:
            return heappop(queue)
        return None

    def step(self) -> None:
        """Process the next event (the one-at-a-time loop for tests)."""
        item = self._pop_next()
        if item is None:
            raise RuntimeError("step() on an empty event queue")
        self._dispatch(item)

    def _dispatch(self, item: Tuple[float, int, Event]) -> None:
        event = item[2]
        self._now = item[0]
        callbacks = event.callbacks
        event.callbacks = None
        event._state = PROCESSED
        if callbacks is not None:
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(event)
            else:
                callbacks(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or simulated time reaches ``until``."""
        if until is not None:
            if until < self._now:
                raise ValueError("until=%r is in the past (now=%r)"
                                 % (until, self._now))
            stop = Event(self)
            stop.callbacks = self._stop_callback
            stop._state = TRIGGERED
            # URGENT priority (negative-bias key): the stop event
            # pre-empts same-time events.
            self._seq += 1
            heappush(self._queue, (until, self._seq - URGENT_BIAS, stop))
        # Inlined dispatch loop; see module docstring.  The single-waiter
        # process case (callbacks is exactly a Process) additionally
        # inlines Process._resume, saving one Python call frame per event,
        # and recycles dead Timeout objects through the free list —
        # together these are worth ~3x on the kernel microbench.
        tick, lane, queue = self._tick, self._lane, self._queue
        tick_popleft, lane_popleft = tick.popleft, lane.popleft
        pool = self._pool
        recycle = pool.append
        pop, list_type, process_type = heappop, list, Process
        timeout_type, refcount = Timeout, getrefcount
        try:
            while True:
                if tick:
                    head = tick[0]
                    if lane and lane[0] < head:
                        if queue and queue[0] < lane[0]:
                            item = pop(queue)
                        else:
                            item = lane_popleft()
                    elif queue and queue[0] < head:
                        item = pop(queue)
                    else:
                        item = tick_popleft()
                elif lane:
                    if queue and queue[0] < lane[0]:
                        item = pop(queue)
                    else:
                        item = lane_popleft()
                elif queue:
                    item = pop(queue)
                else:
                    break
                self._now, _key, event = item
                callbacks = event.callbacks
                event.callbacks = None
                event._state = PROCESSED
                if callbacks.__class__ is process_type:
                    # ---- inlined Process._resume(event) ----
                    process = callbacks
                    resume_ev = event
                    try:
                        while True:
                            if resume_ev._exception is None:
                                target = process._send(resume_ev._value)
                            else:
                                target = process.generator.throw(
                                    resume_ev._exception)
                            try:
                                if target._state is PROCESSED:
                                    resume_ev = target
                                    continue
                            except AttributeError:
                                raise TypeError(
                                    "process %r yielded a non-event: %r"
                                    % (process.name, target)) from None
                            process._target = target
                            tcb = target.callbacks
                            if tcb is None:
                                target.callbacks = process
                            elif tcb.__class__ is list_type:
                                tcb.append(process)
                            else:
                                target.callbacks = [tcb, process]
                            break
                    except StopIteration as stop_iter:
                        process._target = None
                        process.succeed(stop_iter.value)
                    except BaseException as error:
                        if isinstance(error, StopSimulation):
                            raise
                        process._target = None
                        if process.callbacks is not None:
                            process.fail(error)
                        else:
                            raise
                    # Recycle the dispatched timeout if it is provably
                    # dead: exactly a Timeout, and referenced only by
                    # `item`, `event` and the refcount argument (== 3) —
                    # any caller-held reference makes the count higher
                    # and skips the recycle.
                    resume_ev = None
                    if (event.__class__ is timeout_type
                            and refcount(event) == 3):
                        recycle(event)
                elif callbacks.__class__ is list_type:
                    for callback in callbacks:
                        callback(event)
                elif callbacks is not None:
                    callbacks(event)
        except StopSimulation:
            pass

    @staticmethod
    def _stop_callback(_event: Event) -> None:
        raise StopSimulation


class ProcessDied(Exception):
    """Raised when waiting on a process that terminated with an error."""


class Process(Event):
    """A running generator coroutine; also an event that fires on exit.

    The process's generator yields :class:`Event` objects.  When a yielded
    event succeeds, the event's value is sent back into the generator; when
    it fails, the exception is thrown into the generator.  The process
    itself is an event which succeeds with the generator's return value, or
    fails with its uncaught exception.
    """

    __slots__ = ("generator", "_target", "_send")

    def __init__(self, env: Environment, generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(env, name=name or getattr(generator, "__name__",
                                                   None))
        self.generator = generator
        # Cache the bound send: called once per resume, and a slot load
        # is cheaper than generator attribute + method binding each time.
        self._send = generator.send
        self._target: Optional[Event] = None
        # The process object itself is the waiter callback (it is
        # callable, see ``__call__`` below): registering ``self`` instead
        # of a bound method avoids a per-wait method allocation and lets
        # the dispatch loop in :meth:`Environment.run` recognise and
        # inline the resume by a single type check.
        # Kick off the process on a zero-delay internal event so that the
        # creator finishes its current step first (SimPy semantics).
        # URGENT, so it goes on the heap with a negative-bias key.
        start = Event(env)
        start.callbacks = self
        start._state = TRIGGERED
        env._seq += 1
        heappush(env._queue, (env._now, env._seq - URGENT_BIAS, start))

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return self._state is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self._state is not PENDING:
            raise RuntimeError("cannot interrupt a dead process")
        env = self.env
        interrupt_event = Event(env)
        interrupt_event._exception = Interrupt(cause)
        interrupt_event._state = TRIGGERED
        interrupt_event.callbacks = self
        # Detach from the event we were waiting on, so its later firing
        # does not resume us twice.
        if self._target is not None:
            self._target.remove_callback(self)
            self._target = None
        env._seq += 1
        heappush(env._queue, (env._now, env._seq - URGENT_BIAS,
                              interrupt_event))

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self.generator
        try:
            while True:
                exc = event._exception
                if exc is None:
                    target = generator.send(event._value)
                else:
                    target = generator.throw(exc)
                # Duck-typed yield check: every Event subclass has _state
                # (slotted), so the AttributeError path only fires for
                # non-event yields; cheaper than isinstance per event.
                try:
                    state = target._state
                except AttributeError:
                    raise TypeError("process %r yielded a non-event: %r"
                                    % (self.name, target)) from None
                if state is PROCESSED:
                    # Already fired and processed: loop immediately with
                    # its outcome instead of registering a callback.
                    event = target
                    continue
                self._target = target
                # Inlined Event.add_callback (hottest line in the repo);
                # the registered waiter is the process object itself.
                callbacks = target.callbacks
                if callbacks is None:
                    target.callbacks = self
                elif type(callbacks) is list:
                    callbacks.append(self)
                else:
                    target.callbacks = [callbacks, self]
                return
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
        except BaseException as error:
            if isinstance(error, StopSimulation):
                raise
            self._target = None
            if self.callbacks:
                self.fail(error)
            else:
                # Nobody is waiting: surface the crash instead of dropping it.
                raise
        finally:
            env._active_process = None

    # Calling a process resumes it: this is what makes the process object
    # itself usable as an event callback (including inside callback lists
    # and for Process subclasses the run-loop fast path doesn't match).
    __call__ = _resume

    def _has_waiters(self) -> bool:
        return bool(self.callbacks)


def run_processes(*generators: ProcessGenerator,
                  until: Optional[float] = None) -> Environment:
    """Convenience: run a set of process generators in a new environment."""
    env = Environment()
    for generator in generators:
        env.process(generator)
    env.run(until=until)
    return env
