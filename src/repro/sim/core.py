"""Discrete-event simulation kernel: environment and processes.

This is a small, dependency-free engine in the style of SimPy.  All of the
Madeus middleware, the MVCC storage engine, the cluster substrate, and the
TPC-W emulated browsers run as processes on one :class:`Environment`.

Determinism: the event queue is ordered by ``(time, priority, sequence)``
where ``sequence`` is a monotonically increasing tie-breaker, so runs are
exactly reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Interrupt, Timeout

ProcessGenerator = Generator[Event, Any, Any]

#: Priority used for normal events.
NORMAL = 1
#: Priority used for urgent (kernel-internal) events.
URGENT = 0


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at ``until``."""


class Environment:
    """Execution environment for a single simulation run.

    The environment owns simulated time, the event queue, and the scheduler
    loop.  Typical use::

        env = Environment()

        def proc(env):
            yield env.timeout(5)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 5
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional["Process"] = None

    # ------------------------------------------------------------------
    # time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently executing, if any."""
        return self._active_process

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq,
                                     event))

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated time units."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> "Process":
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event in the queue."""
        if not self._queue:
            raise RuntimeError("step() on an empty event queue")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._mark_processed()
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        stop: Optional[Event] = None
        if until is not None:
            if until < self._now:
                raise ValueError("until=%r is in the past (now=%r)"
                                 % (until, self._now))
            stop = Event(self)
            stop.callbacks.append(self._stop_callback)
            self._seq += 1
            # URGENT priority: the stop event pre-empts same-time events.
            heapq.heappush(self._queue, (until, URGENT, self._seq, stop))
            stop._state = "triggered"
        try:
            while self._queue:
                self.step()
        except StopSimulation:
            pass

    @staticmethod
    def _stop_callback(_event: Event) -> None:
        raise StopSimulation


class ProcessDied(Exception):
    """Raised when waiting on a process that terminated with an error."""


class Process(Event):
    """A running generator coroutine; also an event that fires on exit.

    The process's generator yields :class:`Event` objects.  When a yielded
    event succeeds, the event's value is sent back into the generator; when
    it fails, the exception is thrown into the generator.  The process
    itself is an event which succeeds with the generator's return value, or
    fails with its uncaught exception.
    """

    __slots__ = ("generator", "_target")

    def __init__(self, env: Environment, generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(env, name=name or getattr(generator, "__name__",
                                                   None))
        self.generator = generator
        self._target: Optional[Event] = None
        # Kick off the process on a zero-delay internal event so that the
        # creator finishes its current step first (SimPy semantics).
        start = Event(env)
        start.callbacks.append(self._resume)
        start._state = "triggered"
        env._schedule(start, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self.triggered:
            raise RuntimeError("cannot interrupt a dead process")
        interrupt_event = Event(self.env)
        interrupt_event._exception = Interrupt(cause)
        interrupt_event._state = "triggered"
        interrupt_event.callbacks.append(self._resume)
        # Detach from the event we were waiting on, so its later firing does
        # not resume us twice.
        if self._target is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        self.env._schedule(interrupt_event, priority=URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            while True:
                if event._exception is not None:
                    target = self.generator.throw(event._exception)
                else:
                    target = self.generator.send(event._value)
                if not isinstance(target, Event):
                    raise TypeError("process %r yielded a non-event: %r"
                                    % (self.name, target))
                if target.processed:
                    # Already fired and processed: loop immediately with its
                    # outcome instead of registering a callback.
                    event = target
                    continue
                self._target = target
                target.callbacks.append(self._resume)
                return
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
        except BaseException as error:
            if isinstance(error, StopSimulation):
                raise
            self._target = None
            if self.callbacks or self._has_waiters():
                self.fail(error)
            else:
                # Nobody is waiting: surface the crash instead of dropping it.
                raise
        finally:
            self.env._active_process = None

    def _has_waiters(self) -> bool:
        return bool(self.callbacks)


def run_processes(*generators: ProcessGenerator,
                  until: Optional[float] = None) -> Environment:
    """Convenience: run a set of process generators in a new environment."""
    env = Environment()
    for generator in generators:
        env.process(generator)
    env.run(until=until)
    return env
