"""Discrete-event simulation kernel.

This subpackage is the substrate on which everything else runs: a small,
deterministic, dependency-free event engine (in the style of SimPy) plus
resources, synchronisation primitives, seeded random streams, and
time-series monitors.
"""

from .core import Environment, Process, ProcessDied, run_processes
from .events import AllOf, AnyOf, Event, Interrupt, Timeout
from .monitor import CounterSeries, SampleSeries
from .rand import RandomStream, StreamFactory
from .resources import Request, Resource, Store
from .sync import CLOSED, Channel, CountdownLatch, Gate, Mutex, Semaphore

__all__ = [
    "AllOf",
    "AnyOf",
    "CLOSED",
    "Channel",
    "CountdownLatch",
    "CounterSeries",
    "Environment",
    "Event",
    "Gate",
    "Interrupt",
    "Mutex",
    "Process",
    "ProcessDied",
    "RandomStream",
    "Request",
    "Resource",
    "SampleSeries",
    "Semaphore",
    "Store",
    "StreamFactory",
    "Timeout",
    "run_processes",
]
