"""Synchronisation primitives built on the event kernel.

The middleware algorithms in the paper use a critical region (Algorithm 1
lines 2-9 / 17-28, Algorithm 3 lines 1-5), conductor/player rendezvous
(Algorithms 4 and 5), and — in the B-CON baseline — a pthread mutex whose
contention is itself a measured effect (Section 5.3.2).  These primitives
model exactly those constructs.

:class:`Mutex` records contention statistics and can charge a configurable
*contention penalty* per contended acquisition, which is how the paper's
observation that "all players compete for the pthread mutex lock at every
commit time" becomes a first-class, tunable cost in the simulation.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, List, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment


class Mutex:
    """A FIFO mutual-exclusion lock with contention accounting.

    ``contention_penalty`` adds simulated time to every acquisition that
    found the lock busy (cache-line bouncing / futex syscall cost); it is
    used to model the B-CON commit-serialisation overhead.
    """

    def __init__(self, env: "Environment", name: Optional[str] = None,
                 contention_penalty: float = 0.0):
        self.env = env
        self.name = name
        self.contention_penalty = contention_penalty
        self.locked = False
        self._waiters: Deque[Event] = deque()
        # statistics
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_time = 0.0

    def acquire(self) -> Generator[Event, None, None]:
        """Process-style acquire: ``yield from mutex.acquire()``."""
        self.acquisitions += 1
        if not self.locked and not self._waiters:
            self.locked = True
            return
        self.contended_acquisitions += 1
        waiter = Event(self.env)
        enqueued = self.env.now
        self._waiters.append(waiter)
        yield waiter
        self.total_wait_time += self.env.now - enqueued
        if self.contention_penalty:
            yield self.env.timeout(self.contention_penalty)

    def release(self) -> None:
        """Release the lock; hands it to the oldest waiter if any."""
        if not self.locked:
            raise RuntimeError("release of an unlocked mutex %r" % self.name)
        if self._waiters:
            # Ownership transfers directly: the lock stays held.
            self._waiters.popleft().succeed()
        else:
            self.locked = False

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that found the mutex busy."""
        if not self.acquisitions:
            return 0.0
        return self.contended_acquisitions / self.acquisitions


class CountdownLatch:
    """Fires an event once :meth:`arrive` has been called ``count`` times.

    The conductor uses this to wait until all players have propagated their
    current first-read (or commit) operations (Algorithm 4 lines 5 and 10).
    """

    def __init__(self, env: "Environment", count: int):
        if count < 0:
            raise ValueError("count must be >= 0")
        self.env = env
        self.remaining = count
        self.done = Event(env)
        if count == 0:
            self.done.succeed()

    def arrive(self) -> None:
        """Record one arrival; triggers :attr:`done` at zero."""
        if self.remaining <= 0:
            raise RuntimeError("latch over-arrived")
        self.remaining -= 1
        if self.remaining == 0:
            self.done.succeed()

    def wait(self) -> Event:
        """Event that fires when all arrivals have happened."""
        return self.done


class Gate:
    """A reusable open/close barrier.

    While closed, :meth:`wait` returns pending events; :meth:`open` releases
    all current waiters and lets subsequent waiters pass immediately.  The
    manager uses a gate to suspend and resume customer transactions around
    switch-over (Algorithm 3 lines 14-17).
    """

    def __init__(self, env: "Environment", is_open: bool = True):
        self.env = env
        self._open = is_open
        self._waiters: List[Event] = []

    @property
    def is_open(self) -> bool:
        """Whether the gate currently lets processes through."""
        return self._open

    def wait(self) -> Event:
        """Event that fires once the gate is (or becomes) open."""
        event = Event(self.env)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def close(self) -> None:
        """Close the gate: subsequent waiters block until :meth:`open`."""
        self._open = False

    def open(self) -> None:
        """Open the gate and release every blocked waiter."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()


#: Sentinel returned by :meth:`Channel.get` once the channel is closed
#: and drained.  Compare with ``is``.
CLOSED = object()


class Channel:
    """A bounded FIFO pipe between producer and consumer processes.

    The pipelined snapshot path (dump → ship → restore) uses channels as
    its back-pressure mechanism: a producer blocked in :meth:`put` models
    the dumper stalling because the shipper (or the destination's disk)
    has not kept up, so buffering stays bounded by ``capacity`` chunks.

    ``close()`` signals normal end-of-stream — consumers drain whatever
    is buffered and then receive :data:`CLOSED`.  ``fail(exc)`` tears the
    stream down: buffered items are discarded and both ends observe
    ``exc``, which is how a mid-stream crash or network outage propagates
    to every stage at once.
    """

    def __init__(self, env: "Environment", capacity: int = 1,
                 name: Optional[str] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._buffer: Deque[object] = deque()
        self._putters: Deque[Event] = deque()
        self._getters: Deque[Event] = deque()
        self._closed = False
        self._exc: Optional[BaseException] = None
        # statistics
        self.put_count = 0
        self.put_wait_time = 0.0
        self.get_wait_time = 0.0

    @property
    def closed(self) -> bool:
        """Whether end-of-stream (or failure) has been signalled."""
        return self._closed or self._exc is not None

    def put(self, item: object) -> Generator[Event, None, None]:
        """Process-style blocking put: ``yield from channel.put(item)``.

        Blocks while the buffer is full; raises the failure exception if
        the channel has been torn down, and :class:`RuntimeError` on a
        put after a normal close.
        """
        while True:
            if self._exc is not None:
                raise self._exc
            if self._closed:
                raise RuntimeError("put on closed channel %r" % self.name)
            if len(self._buffer) < self.capacity:
                break
            waiter = Event(self.env)
            enqueued = self.env.now
            self._putters.append(waiter)
            yield waiter
            self.put_wait_time += self.env.now - enqueued
        self._buffer.append(item)
        self.put_count += 1
        if self._getters:
            self._getters.popleft().succeed()

    def get(self) -> Generator[Event, None, object]:
        """Process-style blocking get: ``item = yield from channel.get()``.

        Returns the oldest buffered item, or :data:`CLOSED` once the
        channel is closed and drained.  Re-raises the teardown exception
        if the channel failed (buffered items are discarded).
        """
        while True:
            if self._exc is not None:
                raise self._exc
            if self._buffer:
                item = self._buffer.popleft()
                if self._putters:
                    self._putters.popleft().succeed()
                return item
            if self._closed:
                return CLOSED
            waiter = Event(self.env)
            enqueued = self.env.now
            self._getters.append(waiter)
            yield waiter
            self.get_wait_time += self.env.now - enqueued

    def close(self) -> None:
        """Signal normal end-of-stream; buffered items remain readable."""
        if self.closed:
            return
        self._closed = True
        self._wake_all()

    def fail(self, exc: BaseException) -> None:
        """Tear the stream down: discard the buffer, raise ``exc`` at
        both ends.  Idempotent; a later ``fail`` keeps the first cause.
        """
        if self._exc is not None:
            return
        self._exc = exc
        self._buffer.clear()
        self._wake_all()

    def _wake_all(self) -> None:
        # Waiters re-check state on wakeup, so succeed (not fail) them;
        # abandoned events from interrupted processes trigger harmlessly.
        for waiter in self._putters:
            waiter.succeed()
        for waiter in self._getters:
            waiter.succeed()
        self._putters.clear()
        self._getters.clear()


class Semaphore:
    """A counting semaphore with FIFO wakeup order."""

    def __init__(self, env: "Environment", value: int = 1):
        if value < 0:
            raise ValueError("initial value must be >= 0")
        self.env = env
        self.value = value
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Generator[Event, None, None]:
        """Process-style P operation: ``yield from sem.acquire()``."""
        if self.value > 0 and not self._waiters:
            self.value -= 1
            return
        waiter = Event(self.env)
        self._waiters.append(waiter)
        yield waiter

    def release(self) -> None:
        """V operation; wakes the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.value += 1
