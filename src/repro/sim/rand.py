"""Seeded random-number streams.

Every stochastic component (think times, interaction choice, key choice,
service-time jitter) draws from its own named substream derived from one
experiment seed, so adding a component never perturbs the draws of another
and every run is exactly reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


class RandomStream:
    """One named substream, a thin wrapper over :class:`random.Random`."""

    def __init__(self, seed: int):
        self._random = random.Random(seed)

    def uniform(self, low: float, high: float) -> float:
        """Uniform draw in ``[low, high)``."""
        return self._random.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential draw with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be positive, got %r" % mean)
        return self._random.expovariate(1.0 / mean)

    def randint(self, low: int, high: int) -> int:
        """Integer draw in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform draw in ``[0, 1)``."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def weighted_choice(self, items: Sequence[T],
                        weights: Sequence[float]) -> T:
        """Choice from ``items`` with the given relative weights."""
        return self._random.choices(items, weights=weights, k=1)[0]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(seq)


class StreamFactory:
    """Derives independent :class:`RandomStream` objects from a root seed.

    Substream seeds are derived by hashing ``(root_seed, name)`` so that the
    mapping is stable across runs and insertion orders.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return (creating if needed) the substream called ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                ("%d/%s" % (self.root_seed, name)).encode()).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = RandomStream(seed)
        return self._streams[name]
