"""Shared resources for simulated processes.

:class:`Resource` models a server pool with FIFO queueing (CPU cores, a
disk head).  :class:`Store` is an unbounded producer/consumer queue used as
the message channel between middleware threads.  Both integrate with the
event kernel: requests are events that processes yield on.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Yields to the requesting process once granted.  Must be released via
    :meth:`Resource.release` (or use :meth:`Resource.acquire` /
    ``with``-style helpers in caller code).
    """

    __slots__ = ("resource", "enqueued_at", "granted_at", "released")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.enqueued_at = resource.env.now
        self.granted_at: Optional[float] = None
        self.released = False


class Resource:
    """A pool of ``capacity`` identical slots with a FIFO wait queue.

    Tracks utilisation statistics (busy integral, wait times) so that the
    experiment harness can report node utilisation.
    """

    def __init__(self, env: "Environment", capacity: int = 1,
                 name: Optional[str] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %r" % capacity)
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: int = 0
        self.queue: Deque[Request] = deque()
        # statistics
        self.total_waits = 0
        self.total_wait_time = 0.0
        self._busy_integral = 0.0
        self._last_change = env.now

    # ------------------------------------------------------------------
    def request(self) -> Request:
        """Claim a slot; the returned event fires when the claim is granted."""
        req = Request(self)
        if self.users < self.capacity and not self.queue:
            self._grant(req)
        else:
            self.queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return the slot held by ``req`` and grant the next waiter."""
        if req.released:
            raise RuntimeError("request released twice")
        req.released = True
        if req.granted_at is None:
            # Cancelled while queued.
            try:
                self.queue.remove(req)
            except ValueError:
                raise RuntimeError("release of a request that was never "
                                   "granted nor queued")
            return
        self._account()
        self.users -= 1
        while self.queue and self.users < self.capacity:
            self._grant(self.queue.popleft())

    def _grant(self, req: Request) -> None:
        self._account()
        self.users += 1
        req.granted_at = self.env.now
        wait = req.granted_at - req.enqueued_at
        self.total_waits += 1
        self.total_wait_time += wait
        req.succeed(self)

    def _account(self) -> None:
        now = self.env.now
        self._busy_integral += self.users * (now - self._last_change)
        self._last_change = now

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting."""
        return len(self.queue)

    def utilisation(self, since: float = 0.0) -> float:
        """Mean fraction of capacity busy since ``since`` (approximate)."""
        self._account()
        horizon = self.env.now - since
        if horizon <= 0:
            return 0.0
        return self._busy_integral / (horizon * self.capacity)

    def mean_wait(self) -> float:
        """Mean queueing delay over all grants so far."""
        if not self.total_waits:
            return 0.0
        return self.total_wait_time / self.total_waits


class Store:
    """Unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an event that fires when an item
    is available.  Items are delivered to getters in FIFO order.
    """

    def __init__(self, env: "Environment", name: Optional[str] = None):
        self.env = env
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
