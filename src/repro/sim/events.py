"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-coroutine style: a simulated
*process* is a Python generator that ``yield``s :class:`Event` objects.  The
:class:`~repro.sim.core.Environment` resumes the generator when the yielded
event fires, sending the event's value back into the generator (or throwing
the event's exception).

Events move through three states:

``PENDING``
    created but not yet triggered,
``TRIGGERED``
    scheduled on the event queue with a value or an exception,
``PROCESSED``
    callbacks have run; waiting processes have been resumed.

Performance notes (this module is the hottest code in the repo — every
simulated statement, disk I/O and network hop allocates events here):

* ``callbacks`` is ``None`` (no waiter), a single callable (one waiter —
  by far the common case: the one process blocked on the event), or a
  list of callables.  Avoiding the per-event list allocation is worth
  ~20% of kernel throughput.  Use :meth:`Event.add_callback` /
  :meth:`Event.remove_callback` instead of poking the attribute.
* Scheduling is inlined into :meth:`Event.succeed`, :meth:`Event.fail`
  and :class:`Timeout` instead of calling
  :meth:`~repro.sim.core.Environment.schedule`: zero-delay triggers go
  to the environment's same-tick FIFO (no heap traffic), delayed ones
  to the heap.  Both paths assign keys from the same monotonic sequence
  counter, so the total event order is exactly the classic
  ``(time, priority, sequence)`` order and seeded runs stay
  bit-reproducible.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .core import Environment

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"

#: Priority bias folded into the sort key.  NORMAL events use the plain
#: sequence number as their key (no arithmetic on the hot path); URGENT
#: kernel events use ``seq - URGENT_BIAS`` so they sort before every
#: same-time normal event.  One integer compare thus reproduces the old
#: ``(priority, seq)`` ordering.  2**53 leaves room for ~9e15 events per
#: run before an urgent key could collide with a normal one.
URGENT_BIAS = 1 << 53


class Event:
    """A one-shot occurrence at a point in simulated time.

    Processes wait for events by yielding them.  An event is *succeeded*
    with a value or *failed* with an exception exactly once.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_state", "name")

    def __init__(self, env: "Environment", name: Optional[str] = None):
        self.env = env
        #: ``None`` | one callable | list of callables (see module docs).
        self.callbacks: Any = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = PENDING
        self.name = name

    # ------------------------------------------------------------------
    # waiter registration
    # ------------------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when this event is processed."""
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = callback
        elif type(callbacks) is list:
            callbacks.append(callback)
        else:
            self.callbacks = [callbacks, callback]

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Unregister ``callback`` if present (no-op otherwise)."""
        callbacks = self.callbacks
        if callbacks is callback:
            self.callbacks = None
        elif type(callbacks) is list:
            try:
                callbacks.remove(callback)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled (succeeded or failed)."""
        return self._state is not PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._state is PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._state is not PENDING and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event was succeeded with."""
        if self._state is PENDING:
            raise RuntimeError("value of untriggered event %r" % self)
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception the event was failed with, if any."""
        return self._exception

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state is not PENDING:
            raise RuntimeError("event %r already triggered" % self)
        self._value = value
        self._state = TRIGGERED
        # Inlined zero-delay NORMAL-priority schedule (the hot path).
        env = self.env
        env._seq = seq = env._seq + 1
        env._tick.append((env._now, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event has the exception thrown into it.
        """
        if self._state is not PENDING:
            raise RuntimeError("event %r already triggered" % self)
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = TRIGGERED
        env = self.env
        env._seq = seq = env._seq + 1
        env._tick.append((env._now, seq, self))
        return self

    def _mark_processed(self) -> None:
        self._state = PROCESSED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = getattr(self, "name", None) or self.__class__.__name__
        return "<%s state=%s at t=%s>" % (label, self._state, self.env.now)


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay %r" % delay)
        # Flattened Event.__init__ + schedule: a Timeout is created for
        # every simulated wait, so the two saved calls matter.
        self.env = env
        self.callbacks = None
        self._value = value
        self._exception = None
        self._state = TRIGGERED
        self.name = None
        self.delay = delay
        env._seq = seq = env._seq + 1
        if delay == 0:
            # Same-tick fast path: FIFO append instead of heap traffic.
            env._tick.append((env._now, seq, self))
        else:
            heappush(env._queue, (env._now + delay, seq, self))


class Condition(Event):
    """Base for composite events over several sub-events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        for event in self.events:
            if event.env is not env:
                raise ValueError("events belong to different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            # A scheduled-but-unprocessed event (e.g. a fresh Timeout)
            # still delivers callbacks; only a *processed* event must be
            # consumed immediately.
            if event._state is PROCESSED:
                self._on_subevent(event)
            else:
                event.add_callback(self._on_subevent)

    def _on_subevent(self, event: Event) -> None:  # pragma: no cover
        raise NotImplementedError


class AllOf(Condition):
    """Fires once *all* sub-events have fired; value is their value list."""

    __slots__ = ()

    def _on_subevent(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])


class AnyOf(Condition):
    """Fires as soon as *any* sub-event fires; value is that event."""

    __slots__ = ()

    def _on_subevent(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self.succeed(event)


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause
