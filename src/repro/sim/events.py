"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-coroutine style: a simulated
*process* is a Python generator that ``yield``s :class:`Event` objects.  The
:class:`~repro.sim.core.Environment` resumes the generator when the yielded
event fires, sending the event's value back into the generator (or throwing
the event's exception).

Events move through three states:

``PENDING``
    created but not yet triggered,
``TRIGGERED``
    scheduled on the event queue with a value or an exception,
``PROCESSED``
    callbacks have run; waiting processes have been resumed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .core import Environment

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Event:
    """A one-shot occurrence at a point in simulated time.

    Processes wait for events by yielding them.  An event is *succeeded*
    with a value or *failed* with an exception exactly once.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_state", "name")

    def __init__(self, env: "Environment", name: Optional[str] = None):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = PENDING
        self.name = name

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled (succeeded or failed)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event was succeeded with."""
        if not self.triggered:
            raise RuntimeError("value of untriggered event %r" % self)
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception the event was failed with, if any."""
        return self._exception

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError("event %r already triggered" % self)
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event has the exception thrown into it.
        """
        if self.triggered:
            raise RuntimeError("event %r already triggered" % self)
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def _mark_processed(self) -> None:
        self._state = PROCESSED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.__class__.__name__
        return "<%s state=%s at t=%s>" % (label, self._state, self.env.now)


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay %r" % delay)
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = TRIGGERED
        env._schedule(self, delay=delay)


class Condition(Event):
    """Base for composite events over several sub-events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        for event in self.events:
            if event.env is not env:
                raise ValueError("events belong to different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            # A scheduled-but-unprocessed event (e.g. a fresh Timeout)
            # still delivers callbacks; only a *processed* event must be
            # consumed immediately.
            if event.processed:
                self._on_subevent(event)
            else:
                event.callbacks.append(self._on_subevent)

    def _on_subevent(self, event: Event) -> None:  # pragma: no cover
        raise NotImplementedError


class AllOf(Condition):
    """Fires once *all* sub-events have fired; value is their value list."""

    __slots__ = ()

    def _on_subevent(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])


class AnyOf(Condition):
    """Fires as soon as *any* sub-event fires; value is that event."""

    __slots__ = ()

    def _on_subevent(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self.succeed(event)


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause
