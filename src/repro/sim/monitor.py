"""Time-series probes used by the experiment harness.

The paper's timeline figures (7, 8, 10-19) plot per-second mean response
time and per-second throughput against elapsed time.  :class:`SampleSeries`
records (time, value) samples; :class:`CounterSeries` records event
timestamps; both can be bucketed into fixed windows for those plots.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Sequence, Tuple


class SampleSeries:
    """Timestamped numeric samples, e.g. individual response times."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("samples must arrive in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self, start: float = -math.inf,
             end: float = math.inf) -> float:
        """Mean value over samples whose timestamp is in ``[start, end)``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        if hi <= lo:
            return 0.0
        window = self.values[lo:hi]
        return sum(window) / len(window)

    def maximum(self, start: float = -math.inf,
                end: float = math.inf) -> float:
        """Max value over ``[start, end)``, 0 if empty."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        if hi <= lo:
            return 0.0
        return max(self.values[lo:hi])

    def percentile(self, q: float, start: float = -math.inf,
                   end: float = math.inf) -> float:
        """The ``q``-th percentile (0-100) over ``[start, end)``."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        window = sorted(self.values[lo:hi])
        if not window:
            return 0.0
        rank = (q / 100.0) * (len(window) - 1)
        low_idx = int(math.floor(rank))
        high_idx = min(low_idx + 1, len(window) - 1)
        frac = rank - low_idx
        return window[low_idx] * (1 - frac) + window[high_idx] * frac

    def bucketed_mean(self, width: float, start: float = 0.0,
                      end: Optional[float] = None
                      ) -> List[Tuple[float, float]]:
        """Per-window mean values: list of (window_start, mean)."""
        if end is None:
            end = self.times[-1] if self.times else start
        buckets: List[Tuple[float, float]] = []
        t = start
        while t < end:
            buckets.append((t, self.mean(t, t + width)))
            t += width
        return buckets


class CounterSeries:
    """Timestamped occurrences, e.g. completed interactions (throughput)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []

    def record(self, time: float) -> None:
        """Record one occurrence at ``time`` (non-decreasing)."""
        if self.times and time < self.times[-1]:
            raise ValueError("occurrences must arrive in time order")
        self.times.append(time)

    def __len__(self) -> int:
        return len(self.times)

    def count(self, start: float = -math.inf, end: float = math.inf) -> int:
        """Occurrences with timestamp in ``[start, end)``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return hi - lo

    def rate(self, start: float, end: float) -> float:
        """Mean occurrences per time unit over ``[start, end)``."""
        if end <= start:
            return 0.0
        return self.count(start, end) / (end - start)

    def bucketed_rate(self, width: float, start: float = 0.0,
                      end: Optional[float] = None
                      ) -> List[Tuple[float, float]]:
        """Per-window rates: list of (window_start, rate)."""
        if end is None:
            end = self.times[-1] if self.times else start
        buckets: List[Tuple[float, float]] = []
        t = start
        while t < end:
            buckets.append((t, self.rate(t, t + width)))
            t += width
        return buckets


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, 0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)
