"""Experiment profiles: paper-scale vs quick (CI-scale) parameters.

The ``paper`` profile uses the constants calibrated against the paper's
testbed: the Figure-5 sweep places the 2-second knee between 600 and
700 EBs, the 800-MB dump/restore takes ~106 s, and the four middlewares'
migration times land in the paper's order.  The ``quick`` profile keeps
every dimensionless ratio (utilisation at each EB count, restore/dump
ratio, fsync-to-service ratio) and shrinks wall time: EB counts /10,
think time /10 (so per-EB demand and therefore the knee *in EBs* is
preserved after the EB scaling), and database sizes /8.

All experiments accept a profile and report the scaled parameters they
actually used next to the paper's values.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..engine.dump import TransferRates

#: Environment variable selecting the default profile for benchmarks.
PROFILE_ENV_VAR = "REPRO_PROFILE"


@dataclass(frozen=True)
class Profile:
    """One consistent set of experiment scale parameters."""

    name: str
    #: Multiplier applied to paper EB counts (100/400/700 ...).
    eb_scale: float
    #: Mean EB think time in seconds (spec: 7 s).
    think_time: float
    #: CPU cost scale placing the Figure-5 knee (calibrated: 1.35 puts
    #: the 2-second threshold between 600 and 700 paper-EBs).
    cpu_scale: float
    #: Multiplier applied to paper database sizes.
    size_scale: float
    #: Fraction of nominal row counts actually materialised.
    row_scale: float
    #: Multiplier applied to paper timeline durations (warm-up, windows).
    time_scale: float
    #: Dump/restore rate model.
    rates: TransferRates = field(default_factory=TransferRates)
    #: Give up on a migration after this long (catch-up divergence).
    catchup_deadline: float = 1500.0
    #: Root random seed.
    seed: int = 7

    def ebs(self, paper_ebs: int) -> int:
        """Scale a paper EB count."""
        return max(1, int(round(paper_ebs * self.eb_scale)))

    def duration(self, paper_seconds: float) -> float:
        """Scale a paper timeline duration."""
        return paper_seconds * self.time_scale


#: Full paper-scale parameters (slow: minutes of wall time per figure).
PAPER = Profile(
    name="paper",
    eb_scale=1.0,
    think_time=7.0,
    cpu_scale=1.35,
    size_scale=1.0,
    row_scale=0.005,
    time_scale=1.0,
    rates=TransferRates(dump_mb_s=40.0, restore_mb_s=10.0),
    catchup_deadline=1500.0,
)

#: CI-scale parameters: EBs/10 with think time/10 keeps the arrival rate
#: per paper-EB-count identical, so the knee still falls between "600"
#: and "700"; sizes/8 keeps dump+restore ~13 s.
QUICK = Profile(
    name="quick",
    eb_scale=0.1,
    think_time=0.7,
    cpu_scale=1.35,
    size_scale=0.125,
    row_scale=0.005,
    time_scale=0.125,
    # base_mb scales with the sizes so the superlinear index-build term
    # of Figure 9 kicks in at the same *relative* size as at paper scale
    rates=TransferRates(dump_mb_s=40.0, restore_mb_s=10.0,
                        base_mb=100.0),
    catchup_deadline=250.0,
)

#: Even smaller, for unit tests that just need the machinery to run.
SMOKE = Profile(
    name="smoke",
    eb_scale=0.05,
    think_time=0.35,
    cpu_scale=1.35,
    size_scale=0.02,
    row_scale=0.002,
    time_scale=0.03,
    rates=TransferRates(dump_mb_s=40.0, restore_mb_s=10.0, base_mb=16.0),
    catchup_deadline=60.0,
)

PROFILES: Dict[str, Profile] = {p.name: p for p in (PAPER, QUICK, SMOKE)}


def get_profile(name: Optional[str] = None) -> Profile:
    """Resolve a profile by name, env var, or the quick default."""
    if name is None:
        name = os.environ.get(PROFILE_ENV_VAR, "quick")
    profile = PROFILES.get(name)
    if profile is None:
        raise ValueError("unknown profile %r (expected one of %s)"
                         % (name, ", ".join(sorted(PROFILES))))
    return profile
