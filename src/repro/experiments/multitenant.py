"""Figures 10-19 and Section 5.6: the multi-tenant hot-spot experiment.

Node 0 hosts three tenants: B with a heavy workload (700 EBs) and A and
C with light workloads (200 EBs each); node 1 is empty.  Node 0 is the
hot spot.  Two cases:

* **Case 1** (Figures 10-13): migrate the *heavy* tenant B.  Migration
  takes ~100 s; tenant A's response time drops after migration; tenant
  B's response time and throughput improve on the fresh node (and the
  slave is warm, so the post-switch dip is small).
* **Case 2** (Figures 14-19): migrate a *light* tenant C.  Migration
  takes longer (~130 s); A and B stay slow (the hot spot remains: 900
  EBs still hit node 0); only C improves.

The paper's answer to "which tenant should be migrated?" is the heavy
one — shorter migration *and* it removes the hot spot.  The report
derives the same answer from the measured windows.

Beyond the paper, a third section evacuates *both* light tenants at
once under the :class:`~repro.core.scheduler.MigrationScheduler` and
compares the wall clock against doing them one at a time — the
multi-tenant generalisation the scheduler exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.middleware import MigrationOptions, MigrationReport
from ..core.scheduler import ScheduleOptions, ScheduleReport
from ..metrics.report import format_table, sparkline
from .common import Report, TenantSetup, build_testbed, seeded
from .profiles import Profile, get_profile

#: Paper timings: migration order at ~500 s; B takes ~100 s, C ~130 s.
PAPER_MIGRATION_ORDER_AT = 500.0
PAPER_CASE1_DURATION = 100.0
PAPER_CASE2_DURATION = 130.0

HEAVY_EBS = 700
LIGHT_EBS = 200


@dataclass
class TenantWindowStats:
    """Mean RT/throughput before, during, and after the migration."""

    tenant: str
    rt_before: float
    rt_during: float
    rt_after: float
    tput_before: float
    tput_during: float
    tput_after: float
    rt_series: List[Tuple[float, float]] = field(default_factory=list)
    tput_series: List[Tuple[float, float]] = field(default_factory=list)


@dataclass
class CaseResult:
    """One case: which tenant migrated, its report, per-tenant stats."""

    case: str
    migrated: str
    report: Optional[MigrationReport]
    migration_start: float
    migration_end: float
    tenants: Dict[str, TenantWindowStats] = field(default_factory=dict)

    @property
    def migration_time(self) -> Optional[float]:
        """End-to-end migration duration."""
        if self.report is None:
            return None
        return self.report.migration_time


def run_case(migrate_tenant: str,
             profile: Optional[Profile] = None,
             trace_dir: Optional[str] = None) -> CaseResult:
    """Run one multi-tenant case (migrate ``migrate_tenant``)."""
    profile = profile or get_profile()
    testbed = build_testbed(
        profile,
        [TenantSetup("A", "node0", paper_ebs=LIGHT_EBS),
         TenantSetup("B", "node0", paper_ebs=HEAVY_EBS),
         TenantSetup("C", "node0", paper_ebs=LIGHT_EBS)],
        checkpoints=True, trace_dir=trace_dir)
    order_at = max(3.0, profile.duration(PAPER_MIGRATION_ORDER_AT) * 0.3)
    testbed.run(until=order_at)
    # Paper-faithful case timings: serial dump -> ship -> restore.
    outcome = testbed.migrate_async(
        migrate_tenant, "node1", options=MigrationOptions(strategy="serial"))
    cap = order_at + profile.catchup_deadline + profile.duration(600.0)
    testbed.run_until(lambda: "done" in outcome, step=5.0, cap=cap)
    report = outcome.get("report")
    end = report.ended_at if report is not None else testbed.env.now
    tail = profile.duration(200.0)
    final = end + tail
    testbed.run(until=final)
    bucket = max(0.5, profile.duration(10.0))
    case = CaseResult(
        case="heavy" if migrate_tenant == "B" else "light",
        migrated=migrate_tenant, report=report,
        migration_start=order_at, migration_end=end)
    warm = order_at * 0.3
    for tenant in ("A", "B", "C"):
        metrics = testbed.metrics[tenant]
        case.tenants[tenant] = TenantWindowStats(
            tenant=tenant,
            rt_before=metrics.response_times.mean(warm, order_at),
            rt_during=metrics.response_times.mean(order_at, end),
            rt_after=metrics.response_times.mean(end, final),
            tput_before=metrics.completions.rate(warm, order_at),
            tput_during=metrics.completions.rate(order_at, end),
            tput_after=metrics.completions.rate(end, final),
            rt_series=metrics.response_times.bucketed_mean(bucket, 0.0,
                                                           final),
            tput_series=metrics.completions.bucketed_rate(bucket, 0.0,
                                                          final))
    return case


@dataclass
class ParallelResult:
    """Evacuating both light tenants: scheduler vs. one-at-a-time."""

    serialized_wall_clock: float
    schedule: ScheduleReport

    @property
    def concurrent_wall_clock(self) -> float:
        return self.schedule.wall_clock

    @property
    def improvement(self) -> float:
        if self.serialized_wall_clock <= 0.0:
            return 0.0
        return 1.0 - (self.concurrent_wall_clock
                      / self.serialized_wall_clock)


def _evacuation_testbed(profile: Profile,
                        trace_dir: Optional[str]) -> Tuple[object, float]:
    """A fresh hot-spot testbed warmed to the migration-order time."""
    testbed = build_testbed(
        profile,
        [TenantSetup("A", "node0", paper_ebs=LIGHT_EBS),
         TenantSetup("B", "node0", paper_ebs=HEAVY_EBS),
         TenantSetup("C", "node0", paper_ebs=LIGHT_EBS)],
        checkpoints=True, trace_dir=trace_dir)
    order_at = max(3.0, profile.duration(PAPER_MIGRATION_ORDER_AT) * 0.3)
    testbed.run(until=order_at)
    return testbed, order_at


def run_parallel_evacuation(profile: Optional[Profile] = None,
                            trace_dir: Optional[str] = None
                            ) -> ParallelResult:
    """Evacuate light tenants A and C to node 1, both ways.

    The serialized baseline migrates them one after the other (two
    plain :meth:`~repro.core.middleware.Middleware.migrate` calls); the
    concurrent run submits both to a FIFO
    :class:`~repro.core.scheduler.MigrationScheduler` so their snapshot
    streams share node 0's egress link.  Case 1/Case 2 runs above are
    untouched — this uses fresh testbeds.
    """
    profile = profile or get_profile()
    cap_extra = profile.catchup_deadline + profile.duration(600.0)
    testbed, order_at = _evacuation_testbed(profile, trace_dir)
    serial_start = testbed.env.now
    serial_end = serial_start
    for tenant in ("A", "C"):
        outcome = testbed.migrate_async(tenant, "node1")
        testbed.run_until(lambda: "done" in outcome, step=5.0,
                          cap=serial_start + cap_extra)
        report = outcome.get("report")
        # run_until advances in coarse steps; the report's own end
        # time keeps the baseline honest
        serial_end = (report.ended_at if report is not None
                      else testbed.env.now)
    serialized_wall = serial_end - serial_start
    testbed, order_at = _evacuation_testbed(profile, trace_dir)
    outcome = testbed.schedule_async([("A", "node1"), ("C", "node1")],
                                     ScheduleOptions(policy="fifo"))
    testbed.run_until(lambda: "done" in outcome, step=5.0,
                      cap=testbed.env.now + cap_extra)
    return ParallelResult(serialized_wall_clock=serialized_wall,
                          schedule=outcome["report"])


def report_parallel(result: ParallelResult) -> str:
    """Render the scheduler section of the multitenant report."""
    lines = ["Parallel evacuation of light tenants A + C (scheduler, "
             "fifo):",
             "  serialized %.1f s -> concurrent %.1f s (%.0f%% faster, "
             "max in flight %d)"
             % (result.serialized_wall_clock,
                result.concurrent_wall_clock,
                result.improvement * 100.0,
                result.schedule.max_in_flight)]
    for job in result.schedule.jobs:
        lines.append("  tenant %s: %s in %.1f s (queue wait %.1f s)"
                     % (job.tenant, job.outcome, job.duration,
                        job.queue_wait))
    return "\n".join(lines)


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None) -> Report:
    """Uniform entry point: both cases plus the Section 5.6 answer."""
    profile = seeded(profile or get_profile(), seed)
    case1 = run_case("B", profile, trace_dir=trace_dir)
    case2 = run_case("C", profile, trace_dir=trace_dir)
    answer, reasons = which_migration_is_better(case1, case2)
    parallel = run_parallel_evacuation(profile, trace_dir=trace_dir)
    lines = [report_case(case1, profile, "Figures 10-13 (Case 1)"), "",
             report_case(case2, profile, "Figures 14-19 (Case 2)"), "",
             "Section 5.6 - which tenant should be migrated? -> the "
             "%s one" % answer]
    lines.extend("  - %s" % reason for reason in reasons)
    lines.extend(["", report_parallel(parallel)])
    return Report(experiment="multitenant", profile=profile.name,
                  seed=profile.seed, text="\n".join(lines),
                  data={"case1": case1, "case2": case2,
                        "answer": answer, "parallel": parallel})


def report_case(case: CaseResult, profile: Profile,
                figures: str) -> str:
    """One case's per-tenant window table plus timeline shapes."""
    rows = []
    for tenant, stats in sorted(case.tenants.items()):
        rows.append([tenant, stats.rt_before * 1000.0,
                     stats.rt_during * 1000.0, stats.rt_after * 1000.0,
                     stats.tput_before, stats.tput_during,
                     stats.tput_after])
    duration = case.migration_time
    lines = [format_table(
        ["tenant", "RT before [ms]", "RT during [ms]", "RT after [ms]",
         "tput before", "tput during", "tput after"],
        rows,
        title=("%s - migrate %s tenant %s (profile=%s): migration "
               "window [%.1f, %.1f] s, duration %s"
               % (figures, case.case, case.migrated, profile.name,
                  case.migration_start, case.migration_end,
                  "%.1f s" % duration if duration else "N/A")))]
    for tenant, stats in sorted(case.tenants.items()):
        lines.append("tenant %s RT   |%s|" % (tenant,
                                              sparkline(stats.rt_series)))
        lines.append("tenant %s tput |%s|" % (tenant,
                                              sparkline(stats.tput_series)))
    return "\n".join(lines)


def which_migration_is_better(case1: CaseResult,
                              case2: CaseResult) -> Tuple[str, List[str]]:
    """Section 5.6's question, answered from the measurements.

    Returns ("heavy" or "light", reasons).  The paper's answer is
    "heavy", for two reasons: the hot-spot tenant's response time only
    improves when the heavy tenant leaves, and the heavy migration is
    *shorter* (warm-cache + group-commit effects).
    """
    reasons: List[str] = []
    a1 = case1.tenants["A"]
    a2 = case2.tenants["A"]
    hot_spot_resolved_1 = a1.rt_after < a1.rt_before * 0.8
    hot_spot_resolved_2 = a2.rt_after < a2.rt_before * 0.8
    if hot_spot_resolved_1 and not hot_spot_resolved_2:
        reasons.append(
            "migrating the heavy tenant cut the light tenant A's "
            "response time (%.0f -> %.0f ms); migrating the light "
            "tenant did not (%.0f -> %.0f ms)"
            % (a1.rt_before * 1000, a1.rt_after * 1000,
               a2.rt_before * 1000, a2.rt_after * 1000))
    time1 = case1.migration_time or float("inf")
    time2 = case2.migration_time or float("inf")
    if time1 < time2:
        reasons.append(
            "the heavy migration was shorter (%.1f s vs %.1f s): the "
            "slave warms up faster and commits group better under "
            "heavy workload" % (time1, time2))
    answer = "heavy" if (hot_spot_resolved_1 or time1 < time2) else "light"
    return answer, reasons


def main() -> None:
    """Run both cases at the default profile and print everything."""
    profile = get_profile()
    case1 = run_case("B", profile)
    print(report_case(case1, profile, "Figures 10-13 (Case 1)"))
    print()
    case2 = run_case("C", profile)
    print(report_case(case2, profile, "Figures 14-19 (Case 2)"))
    print()
    answer, reasons = which_migration_is_better(case1, case2)
    print("Section 5.6 - which tenant should be migrated? -> the %s one"
          % answer)
    for reason in reasons:
        print("  - %s" % reason)
    print()
    print(report_parallel(run_parallel_evacuation(profile)))


if __name__ == "__main__":
    main()
