"""Shared experiment scaffolding: testbed assembly and run helpers.

Every experiment builds the same five-role testbed the paper used — a
master node, a destination node, the middleware, and (folded into the EB
processes) the Tomcat and load-generator tiers — then attaches TPC-W
tenants and emulated-browser populations to it.
"""

from __future__ import annotations

import itertools
import os
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Generator, List, Optional

from ..cluster.cluster import Cluster
from ..cluster.node import NodeSpec
from ..core.middleware import (
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
    MigrationReport,
)
from ..core.policy import MADEUS, PropagationPolicy
from ..core.scheduler import MigrationScheduler, ScheduleOptions
from ..engine.checkpoint import CheckpointSpec
from ..errors import CatchUpTimeout
from ..obs.export import write_trace
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..sim.core import Environment
from ..sim.rand import StreamFactory
from ..workload.tpcw import (
    EbConfig,
    PopulationParams,
    TenantMetrics,
    TpcwContext,
    populate,
    start_tenant_load,
)
from .profiles import Profile

#: When set, every migration run through :meth:`Testbed.migrate_async`
#: exports its trace into this directory (the CI bench-smoke artifact
#: convention; see EXPERIMENTS.md).
TRACE_DIR_ENV_VAR = "REPRO_TRACE_DIR"

#: Monotonic sequence number keeping artifact names unique per process.
_trace_sequence = itertools.count(1)


@dataclass
class Report:
    """Uniform envelope every experiment's ``run()`` returns.

    ``data`` keeps the experiment-specific result objects (points,
    timeline, cases ...) for programmatic use; ``text`` is the rendered
    human-readable report the CLI prints; ``artifacts`` lists any files
    the run exported (traces, BENCH_*.json).
    """

    experiment: str
    profile: str
    seed: int
    text: str
    data: Any = None
    artifacts: List[str] = field(default_factory=list)


def seeded(profile: Profile, seed: Optional[int]) -> Profile:
    """The profile itself, or a copy re-rooted at ``seed``."""
    if seed is None:
        return profile
    return replace(profile, seed=seed)


@dataclass
class TenantSetup:
    """One tenant's placement, database scale, and workload."""

    name: str
    node: str
    paper_ebs: int
    items: int = 100000
    #: EB count used for the *database population* (Table 3 couples DB
    #: size to an EB figure independent of the applied load).
    population_ebs: int = 100
    mix: str = "ordering"


@dataclass
class Testbed:
    """A fully assembled simulation: cluster, middleware, tenants, load."""

    env: Environment
    cluster: Cluster
    middleware: Middleware
    profile: Profile
    metrics: Dict[str, TenantMetrics] = field(default_factory=dict)
    contexts: Dict[str, TpcwContext] = field(default_factory=dict)
    #: Where :meth:`migrate_async` exports trace artifacts; ``None``
    #: falls back to the ``$REPRO_TRACE_DIR`` environment variable.
    trace_dir: Optional[str] = None

    def node(self, name: str):
        """Shorthand for a cluster node."""
        return self.cluster.node(name)

    @property
    def tracer(self) -> Tracer:
        """The middleware's span tracer (simulated-clock timestamps)."""
        return self.middleware.tracer

    @property
    def observability(self) -> MetricsRegistry:
        """The middleware's metrics registry.

        (Named ``observability`` because :attr:`metrics` already holds
        the per-tenant TPC-W load metrics.)
        """
        return self.middleware.metrics

    def export_trace(self, path: str,
                     meta: Optional[Dict[str, Any]] = None) -> int:
        """Write this testbed's trace + metrics to ``path`` (JSONL)."""
        base: Dict[str, Any] = {
            "profile": self.profile.name,
            "policy": self.middleware.config.policy.name,
            "seed": self.profile.seed,
        }
        if meta:
            base.update(meta)
        return write_trace(path, self.middleware.tracer,
                           self.middleware.metrics, base)

    def _maybe_export_trace(self, tenant: str) -> Optional[str]:
        """Export a trace artifact when a trace directory is set."""
        directory = self.trace_dir or os.environ.get(TRACE_DIR_ENV_VAR)
        if not directory:
            return None
        os.makedirs(directory, exist_ok=True)
        name = ("trace_%03d_%s_%s.jsonl"
                % (next(_trace_sequence),
                   self.middleware.config.policy.name, tenant))
        path = os.path.join(directory, name)
        self.export_trace(path, meta={"tenant": tenant})
        return path

    def run(self, until: float) -> None:
        """Advance the simulation to ``until``."""
        self.env.run(until=until)

    def run_until(self, condition: Callable[[], bool], step: float = 10.0,
                  cap: float = 100000.0) -> None:
        """Advance in ``step`` chunks until ``condition()`` or ``cap``."""
        while not condition() and self.env.now < cap:
            self.env.run(until=self.env.now + step)

    def migrate_async(self, tenant: str, destination: str,
                      options: Optional[MigrationOptions] = None
                      ) -> Dict[str, Any]:
        """Launch a migration; returns a dict later holding the outcome.

        The returned dict gains ``report`` (a
        :class:`~repro.core.middleware.MigrationReport`) on success or
        ``timeout`` (a :class:`~repro.errors.CatchUpTimeout`) when the
        slave diverges, plus ``done`` either way.  ``options`` defaults
        to the profile's transfer rates; an explicit options object
        without rates inherits them too.
        """
        if options is None:
            options = MigrationOptions(rates=self.profile.rates)
        elif options.rates is None:
            options = replace(options, rates=self.profile.rates)
        outcome: Dict[str, Any] = {}

        def runner() -> Generator:
            try:
                report = yield from self.middleware.migrate(
                    tenant, destination, options)
                outcome["report"] = report
            except CatchUpTimeout as exc:
                outcome["timeout"] = exc
            outcome["done"] = True
            trace_path = self._maybe_export_trace(tenant)
            if trace_path is not None:
                outcome["trace_path"] = trace_path
        self.env.process(runner(), name="migrate-%s" % tenant)
        return outcome

    def schedule_async(self, jobs: List[Any],
                       options: Optional[ScheduleOptions] = None
                       ) -> Dict[str, Any]:
        """Launch several migrations under a :class:`MigrationScheduler`.

        ``jobs`` is a list of ``(tenant, destination)`` pairs.  Mirrors
        :meth:`migrate_async`: the returned dict gains ``report`` (a
        :class:`~repro.core.scheduler.ScheduleReport`) and ``done``
        when the whole schedule has finished; per-job errors live on
        the report's job outcomes, they never surface here.  The
        schedule's default migration options inherit the profile's
        transfer rates unless overridden.
        """
        options = options or ScheduleOptions()
        migration = options.migration
        if migration is None:
            migration = MigrationOptions(rates=self.profile.rates)
        elif migration.rates is None:
            migration = replace(migration, rates=self.profile.rates)
        options = replace(options, migration=migration)
        scheduler = MigrationScheduler(self.middleware, options)
        for tenant, destination in jobs:
            scheduler.submit(tenant, destination)
        outcome: Dict[str, Any] = {}

        def runner() -> Generator:
            report = yield from scheduler.run()
            outcome["report"] = report
            outcome["done"] = True
            trace_path = self._maybe_export_trace("schedule")
            if trace_path is not None:
                outcome["trace_path"] = trace_path
        self.env.process(runner(), name="schedule")
        return outcome


def build_testbed(profile: Profile,
                  tenants: List[TenantSetup],
                  policy: PropagationPolicy = MADEUS,
                  nodes: Optional[List[str]] = None,
                  checkpoints: bool = False,
                  validate_lsir: bool = False,
                  verify_consistency: bool = True,
                  trace_dir: Optional[str] = None) -> Testbed:
    """Assemble nodes, middleware, tenant databases, and EB load."""
    env = Environment()
    cluster = Cluster(env)
    checkpoint_spec = None
    if checkpoints:
        checkpoint_spec = CheckpointSpec(
            interval=max(5.0, profile.duration(290.0)))
    node_spec = NodeSpec(checkpoint=checkpoint_spec)
    for node_name in (nodes or ["node0", "node1"]):
        cluster.add_node(node_name, node_spec)
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=policy,
        validate_lsir=validate_lsir,
        verify_consistency=verify_consistency,
        catchup_deadline=profile.catchup_deadline))
    for node_name in (nodes or ["node0", "node1"]):
        cluster.node(node_name).instance.bind_obs(
            middleware.metrics, tracer=middleware.tracer)
    testbed = Testbed(env, cluster, middleware, profile,
                      trace_dir=trace_dir)
    streams = StreamFactory(profile.seed)
    for setup in tenants:
        params = PopulationParams(items=setup.items,
                                  ebs=setup.population_ebs,
                                  row_scale=profile.row_scale)
        instance = cluster.node(setup.node).instance
        populate(instance, setup.name, params,
                 streams.stream("populate-%s" % setup.name))
        tenant_db = instance.tenant(setup.name)
        tenant_db.fixed_overhead_mb *= profile.size_scale
        tenant_db.size_multiplier *= profile.size_scale
        middleware.register_tenant(setup.name, setup.node)
        scaled = params.scaled_cardinalities()
        ctx = TpcwContext(customers=scaled["customer"],
                          items=scaled["item"],
                          orders=scaled["orders"])
        testbed.contexts[setup.name] = ctx
        config = EbConfig(ebs=profile.ebs(setup.paper_ebs),
                          mix=setup.mix,
                          think_time=profile.think_time,
                          cpu_scale=profile.cpu_scale)
        # zlib.crc32 is stable across processes (hash() is salted).
        testbed.metrics[setup.name] = start_tenant_load(
            env, middleware, setup.name, ctx, config,
            seed=profile.seed + zlib.crc32(setup.name.encode()) % 1000)
    return testbed
