"""Figures 7 and 8: response time and throughput timelines during
Madeus migration.

One tenant (800 MB at paper scale) under heavy workload (700 EBs); the
migration order is issued mid-run.  The paper's timeline shows: warm-up
degradation early on, a response-time bump at the start of migration
(the manager's critical region blocks commits while capturing the MTS),
near-normal performance *during* migration, a bump at the end
(suspend/drain/switch-over), and a checkpoint whisker around t=290 s
that is *larger* than any migration-induced disturbance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.middleware import MigrationOptions, MigrationReport
from ..metrics.report import format_series, format_table, sparkline
from .common import Report, TenantSetup, build_testbed, seeded
from .profiles import Profile, get_profile

#: Paper timeline: migration runs roughly [150 s, 250 s] of a ~350 s run.
PAPER_MIGRATION_START = 150.0
PAPER_RUN_LENGTH = 360.0


@dataclass
class TimelineResult:
    """Both series plus the migration window and summary statistics."""

    response_series: List[Tuple[float, float]]
    throughput_series: List[Tuple[float, float]]
    report: Optional[MigrationReport]
    migration_start: float
    migration_end: float
    run_length: float
    bucket: float
    #: window means: (before, during, after) migration
    rt_before: float = 0.0
    rt_during: float = 0.0
    rt_after: float = 0.0
    tput_before: float = 0.0
    tput_during: float = 0.0
    tput_after: float = 0.0
    checkpoints: int = 0


def run_timeline(profile: Optional[Profile] = None,
                 paper_ebs: int = 700,
                 checkpoints: bool = True,
                 trace_dir: Optional[str] = None) -> TimelineResult:
    """Run the Figure 7/8 experiment and bucket both series."""
    profile = profile or get_profile()
    start = profile.duration(PAPER_MIGRATION_START)
    run_length = profile.duration(PAPER_RUN_LENGTH)
    bucket = max(0.5, profile.duration(5.0))
    testbed = build_testbed(
        profile, [TenantSetup("A", "node0", paper_ebs=paper_ebs)],
        checkpoints=checkpoints, trace_dir=trace_dir)
    testbed.run(until=start)
    # Paper-faithful timeline: serial dump -> ship -> restore.
    outcome = testbed.migrate_async(
        "A", "node1", options=MigrationOptions(strategy="serial"))
    cap = start + profile.catchup_deadline + profile.duration(400.0)
    testbed.run_until(lambda: "done" in outcome, step=5.0, cap=cap)
    report = outcome.get("report")
    end = report.ended_at if report is not None else testbed.env.now
    final = max(run_length, end + profile.duration(60.0))
    testbed.run(until=final)
    metrics = testbed.metrics["A"]
    rt_series = metrics.response_times.bucketed_mean(bucket, 0.0, final)
    tput_series = metrics.completions.bucketed_rate(bucket, 0.0, final)
    warm = profile.duration(60.0)
    result = TimelineResult(
        response_series=rt_series,
        throughput_series=tput_series,
        report=report,
        migration_start=start,
        migration_end=end,
        run_length=final,
        bucket=bucket,
        rt_before=metrics.response_times.mean(warm, start),
        rt_during=metrics.response_times.mean(start, end),
        rt_after=metrics.response_times.mean(end, final),
        tput_before=metrics.completions.rate(warm, start),
        tput_during=metrics.completions.rate(start, end),
        tput_after=metrics.completions.rate(end, final))
    node0 = testbed.node("node0").instance
    if node0.checkpointer is not None:
        result.checkpoints = node0.checkpointer.checkpoints
    return result


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None) -> Report:
    """Uniform entry point: Figures 7 and 8 from one timeline run."""
    profile = seeded(profile or get_profile(), seed)
    result = run_timeline(profile, trace_dir=trace_dir)
    text = "%s\n\n%s" % (report_fig7(result, profile),
                         report_fig8(result, profile))
    return Report(experiment="performance", profile=profile.name,
                  seed=profile.seed, text=text, data=result)


def report_fig7(result: TimelineResult, profile: Profile) -> str:
    """Figure 7: the response-time timeline."""
    lines = [format_series(
        "Figure 7 - response time during migration (profile=%s)"
        % profile.name,
        result.response_series, "elapsed [s]", "mean RT [s]")]
    lines.append("shape: |%s|" % sparkline(result.response_series))
    lines.append("migration window: [%.1f, %.1f] s"
                 % (result.migration_start, result.migration_end))
    rows = [["before", result.rt_before * 1000.0],
            ["during", result.rt_during * 1000.0],
            ["after", result.rt_after * 1000.0]]
    lines.append(format_table(["window", "mean RT [ms]"], rows))
    return "\n".join(lines)


def report_fig8(result: TimelineResult, profile: Profile) -> str:
    """Figure 8: the throughput timeline."""
    lines = [format_series(
        "Figure 8 - throughput during migration (profile=%s)"
        % profile.name,
        result.throughput_series, "elapsed [s]", "interactions/s")]
    lines.append("shape: |%s|" % sparkline(result.throughput_series))
    rows = [["before", result.tput_before],
            ["during", result.tput_during],
            ["after", result.tput_after]]
    lines.append(format_table(["window", "tput [/s]"], rows))
    if result.checkpoints:
        lines.append("checkpoints during run: %d" % result.checkpoints)
    return "\n".join(lines)


def main() -> None:
    """Run at the default profile and print both figures."""
    profile = get_profile()
    result = run_timeline(profile)
    print(report_fig7(result, profile))
    print()
    print(report_fig8(result, profile))


if __name__ == "__main__":
    main()
