"""Chaos soak: simulated days of generated faults over a live fleet.

The single-scenario chaos harness (:mod:`repro.experiments.chaos`)
stages one hand-written fault plan against one migration.  The soak
instead *draws* a whole failure scenario from a
:class:`~repro.faults.generate.FailureModel` — per-node crash/recovery
processes, link flaps, degradation windows, disk stalls, correlated
bursts, router-shard crashes — and runs a multi-tenant key-value fleet
(fronted by a crashable :class:`~repro.router.RouterFleet`) through
wave after wave of scheduled migrations for simulated hours or days,
with
restart-and-resume enabled (``MiddlewareConfig(resumable=True)`` plus
the scheduler's ``resume`` retry policy).

What the soak asserts, continuously and at the end:

* **Exactly one owner** per tenant after every wave — the two-step
  handover invariant, under arbitrary generated crash timings.
* **Zero lost commits**: the key-value workload counts every
  acknowledged increment; at the end of the run the owning node's
  table must hold exactly that value for every key of every tenant.
* **All tenants keep migrating**: every tenant completes at least one
  successful migration, and parked (suspended) migrations are resumed
  from their journal — never re-dumped — once the crashed master
  recovers.

Everything lands in the trace (``soak.wave`` / ``soak.summary`` events
plus the usual migration and fault records) and in a deterministic
JSON soak report: the artifact is byte-identical across two runs with
the same seed, model, and dimensions (no wall-clock time is recorded).
``scripts/check_trace.py --expect-resumed N --max-lost-commits 0``
gates the exported trace in CI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..cluster.cluster import Cluster
from ..core.middleware import (
    JOURNAL_SUSPENDED,
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
)
from ..core.policy import MADEUS
from ..core.scheduler import MigrationScheduler, ScheduleOptions
from ..engine.dump import TransferRates
from ..errors import CatchUpTimeout, MigrationError, SourceCrashed
from ..faults import FailureModel, FaultInjector, generate_plan
from ..metrics.report import format_table
from ..obs.export import write_trace
from ..obs.trace import MIGRATION
from ..router import RouterFleet
from ..sim.core import Environment
from ..sim.rand import StreamFactory
from ..workload import simplekv
from ..workload.simplekv import KvWorkloadConfig, KvWorkloadResult
from .common import TRACE_DIR_ENV_VAR, Report, seeded
from .profiles import Profile, get_profile

#: Deliberately slow transfer rates: migrations take minutes of sim
#: time, so generated faults actually land *inside* migration windows
#: instead of between them.
SOAK_RATES = TransferRates(dump_mb_s=2.0, restore_mb_s=1.0)

#: Fixed per-tenant database footprint (MB); with :data:`SOAK_RATES`
#: and 4 MB chunks this gives each migration a ~10-chunk snapshot plan.
TENANT_MB = 40.0

#: Key-value workload shape (per tenant, running the whole horizon).
KV_KEYS = 24
KV_CLIENTS = 3
KV_THINK_TIME = 3.0

#: Router shards fronting the kv clients (crash targets of the
#: generated ``router_crash`` stream).
ROUTER_SHARDS = 2

#: Idle gap between migration waves, in simulated seconds.
WAVE_GAP = 45.0

#: Per-wave watchdog: a wave not finished this many simulated seconds
#: after it started is recorded as wedged and the soak moves on (this
#: firing means a bug — resume waits are bounded by fault MTTR).
WAVE_CAP = 3600.0

#: The default failure model: every stream enabled, tuned so a few
#: simulated hours already see dozens of crashes, some of them
#: correlated, with every fault healing on an MTTR timescale.
DEFAULT_MODEL = FailureModel(
    node_mtbf=900.0, node_mttr=45.0,
    link_mtbf=1800.0, link_mttr=8.0,
    degrade_mtbf=2700.0, degrade_mttr=120.0, degrade_factor=3.0,
    disk_stall_mtbf=1200.0, disk_stall_mttr=2.0,
    router_mtbf=1800.0, router_mttr=10.0,
    burst_probability=0.15, burst_spread=20.0,
    max_faults=5000)


@dataclass
class SoakOutcome:
    """Everything one soak run measured, JSON-serialisable."""

    seed: int
    hours: float
    nodes: List[str]
    tenants: List[str]
    model: Dict[str, float]
    planned_faults: int = 0
    injected_faults: int = 0
    recovered_faults: int = 0
    unrecovered_faults: int = 0
    waves: List[Dict[str, Any]] = field(default_factory=list)
    migrations_ok: int = 0
    resumed_ok: int = 0
    suspended: int = 0
    aborted: int = 0
    failed: int = 0
    resumes: int = 0
    #: Tenants that never completed a single migration.
    unmigrated_tenants: List[str] = field(default_factory=list)
    #: Post-wave owner-count violations (must stay empty).
    owner_violations: List[str] = field(default_factory=list)
    #: Waves that hit the watchdog cap before finishing.
    wedged_waves: int = 0
    #: Acknowledged increments missing from the final owner copies.
    lost_commits: int = 0
    #: Keys whose final value fell *below* the acknowledged count
    #: (an actual loss; surplus is accounted separately).
    value_mismatches: int = 0
    #: Increments present on the owner beyond the acknowledged count —
    #: COMMITs that executed but whose reply died in a crashed router
    #: shard's buffers (outcome-unknown, never acked).
    phantom_increments: int = 0
    #: Upper bound on legitimate phantoms: ``writes_per_txn`` times the
    #: router tier's ``acks_dropped`` counter.
    phantom_bound: int = 0
    #: Router-tier counters (``RouterFleet.stats()``).
    router: Dict[str, Any] = field(default_factory=dict)
    committed_txns: int = 0
    aborted_txns: int = 0
    report_path: Optional[str] = None
    trace_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Did every structural invariant hold for the whole soak?"""
        return (not self.owner_violations
                and self.lost_commits == 0
                and self.value_mismatches == 0
                and self.phantom_increments <= self.phantom_bound
                and not self.unmigrated_tenants
                and self.wedged_waves == 0)

    def to_dict(self) -> Dict[str, Any]:
        """The soak report record (see EXPERIMENTS.md for the schema)."""
        return {
            "experiment": "chaos-soak",
            "seed": self.seed,
            "hours": self.hours,
            "nodes": self.nodes,
            "tenants": self.tenants,
            "model": self.model,
            "faults": {
                "planned": self.planned_faults,
                "injected": self.injected_faults,
                "recovered": self.recovered_faults,
                "unrecovered": self.unrecovered_faults,
            },
            "waves": self.waves,
            "migrations": {
                "ok": self.migrations_ok,
                "resumed_ok": self.resumed_ok,
                "suspended": self.suspended,
                "aborted": self.aborted,
                "failed": self.failed,
                "resumes": self.resumes,
            },
            "workload": {
                "committed_txns": self.committed_txns,
                "aborted_txns": self.aborted_txns,
            },
            "invariants": {
                "owner_violations": self.owner_violations,
                "lost_commits": self.lost_commits,
                "value_mismatches": self.value_mismatches,
                "phantom_increments": self.phantom_increments,
                "phantom_bound": self.phantom_bound,
                "unmigrated_tenants": self.unmigrated_tenants,
                "wedged_waves": self.wedged_waves,
            },
            "router": self.router,
            "ok": self.ok,
        }


def _kv_client(env: Environment, gateway: Any, tenant: str,
               rng: Any, config: KvWorkloadConfig,
               result: KvWorkloadResult,
               deadline: float) -> Generator[Any, Any, None]:
    """A kv client that stops issuing transactions at ``deadline``.

    Unlike :func:`repro.workload.simplekv.kv_client` (fixed transaction
    budget), the soak needs load across the whole horizon and a clean
    quiesce afterwards, so the loop is bounded by the simulated clock —
    the client always finishes shortly after the horizon closes, never
    mid-transaction.  ``gateway`` is anything with the middleware's
    ``connect``/``submit`` surface — here the
    :class:`~repro.router.RouterFleet`, so every transaction rides the
    crashable router tier.
    """
    conn = gateway.connect(tenant)
    while env.now < deadline:
        yield env.timeout(rng.exponential(config.think_time))
        if env.now >= deadline:
            return
        if rng.random() < config.read_only_ratio:
            yield from simplekv._read_only_txn(gateway, conn, rng,
                                               config, result)
        else:
            yield from simplekv._update_txn(gateway, conn, rng,
                                            config, result)


def _resume_parked(middleware: Middleware, cluster: Cluster, tenant: str,
                   options: MigrationOptions,
                   holder: Dict[str, Any]) -> Generator[Any, Any, None]:
    """Wait out the crashed master, then re-enter a parked migration.

    The scheduler's ``resume`` policy already loops resume attempts
    *inside* a job; this runner covers the jobs that exhausted their
    retry budget and ended ``suspended`` — the next wave picks their
    journal up here instead of (illegally) starting a fresh migration
    over a still-parked one.
    """
    journal = middleware.migration_journal(tenant)
    try:
        instance = cluster.node(journal.source).instance
        if instance.crashed:
            yield instance.wait_recovered()
        holder["report"] = yield from middleware.resume_migration(
            tenant, options)
        holder["outcome"] = "ok"
    except SourceCrashed as exc:
        # Crashed again mid-resume: parked once more, next wave retries.
        holder["outcome"] = "suspended"
        holder["error"] = str(exc)
    except (MigrationError, CatchUpTimeout) as exc:
        # Abandoned (unresumable) or diverging: the journal is closed,
        # so the next wave schedules an ordinary fresh migration.
        holder["outcome"] = "failed"
        holder["error"] = str(exc)
    holder["done"] = True


def _run_until(env: Environment, condition: Any, step: float,
               cap: float) -> None:
    while not condition() and env.now < cap:
        env.run(until=env.now + step)


def run_soak(profile: Optional[Profile] = None, *,
             seed: Optional[int] = None,
             hours: float = 2.0,
             tenants: int = 3,
             nodes: int = 4,
             model: Optional[FailureModel] = None,
             trace_dir: Optional[str] = None,
             soak_dir: Optional[str] = None) -> Report:
    """Run one chaos soak; deterministic under ``seed``.

    ``hours`` is the *fault/load horizon* in simulated hours; waves of
    migrations launch until the horizon closes (the last wave may run
    past it), and every fault the generated plan schedules lands inside
    it.  Returns the uniform experiment :class:`Report` whose ``data``
    is a :class:`SoakOutcome`.
    """
    profile = seeded(profile or get_profile(), seed)
    root_seed = profile.seed
    model = model or DEFAULT_MODEL
    horizon = hours * 3600.0
    node_names = ["node%d" % index for index in range(nodes)]
    tenant_names = ["T%d" % index for index in range(tenants)]
    if tenants < 1 or nodes < 2:
        raise ValueError("a soak needs >= 1 tenant and >= 2 nodes")

    env = Environment()
    cluster = Cluster(env)
    for name in node_names:
        cluster.add_node(name)
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=MADEUS, validate_lsir=False, verify_consistency=True,
        catchup_deadline=120.0, resumable=True))
    for name in node_names:
        cluster.node(name).instance.bind_obs(middleware.metrics,
                                             tracer=middleware.tracer)
    fleet = RouterFleet(env, middleware, shards=ROUTER_SHARDS,
                        seed=root_seed)

    # -- tenants + load -------------------------------------------------
    workloads: Dict[str, KvWorkloadResult] = {}
    streams = StreamFactory(root_seed)
    ready: Dict[str, bool] = {}

    def setup(tenant: str, home: str) -> Generator[Any, Any, None]:
        instance = cluster.node(home).instance
        yield from simplekv.setup_kv_tenant(instance, tenant, KV_KEYS)
        instance.tenant(tenant).fixed_overhead_mb = TENANT_MB
        middleware.register_tenant(tenant, home)
        ready[tenant] = True

    for index, tenant in enumerate(tenant_names):
        env.process(setup(tenant, node_names[index % nodes]),
                    name="soak.setup.%s" % tenant)
    _run_until(env, lambda: len(ready) == len(tenant_names), step=0.5,
               cap=60.0)
    kv_config = KvWorkloadConfig(keys=KV_KEYS, clients=KV_CLIENTS,
                                 think_time=KV_THINK_TIME,
                                 read_only_ratio=0.4)
    client_procs = []
    for tenant in tenant_names:
        result = KvWorkloadResult()
        workloads[tenant] = result
        for client in range(KV_CLIENTS):
            rng = streams.stream("soak-kv-%s-%d" % (tenant, client))
            client_procs.append(env.process(
                _kv_client(env, fleet, tenant, rng, kv_config,
                           result, horizon),
                name="soak.kv.%s.%d" % (tenant, client)))

    # -- generated fault scenario ---------------------------------------
    plan = generate_plan(model, node_names, horizon, seed=root_seed,
                         routers=sorted(fleet.shard_map()))
    injector = FaultInjector(env, cluster, plan,
                             tracer=middleware.tracer,
                             metrics=middleware.metrics, seed=root_seed,
                             routers=fleet.shard_map())
    env.run(until=env.now + 2.0)    # let the load ramp up
    injector.start()

    outcome = SoakOutcome(seed=root_seed, hours=hours, nodes=node_names,
                          tenants=tenant_names, model=model.to_dict(),
                          planned_faults=len(plan))
    migration_options = MigrationOptions(rates=SOAK_RATES, chunk_mb=4.0)
    schedule_options = ScheduleOptions(
        policy="fifo", max_concurrent=2, retry_limit=6,
        retry_base=1.0, retry_cap=30.0, resume=True,
        migration=migration_options)
    ok_by_tenant = {tenant: 0 for tenant in tenant_names}

    def parked(tenant: str) -> bool:
        journal = middleware.migration_journal(tenant)
        return (journal is not None
                and journal.state == JOURNAL_SUSPENDED)

    def check_owners(where: str) -> None:
        for tenant in tenant_names:
            owners = middleware.owners(tenant)
            if len(owners) != 1:
                outcome.owner_violations.append(
                    "%s: tenant %s has owners %r" % (where, tenant,
                                                     owners))

    def run_wave(wave_index: int) -> Dict[str, Any]:
        started = env.now
        resumers: Dict[str, Dict[str, Any]] = {}
        for tenant in tenant_names:
            if parked(tenant):
                holder: Dict[str, Any] = {}
                resumers[tenant] = holder
                env.process(
                    _resume_parked(middleware, cluster, tenant,
                                   migration_options, holder),
                    name="soak.resume.%s" % tenant)
        scheduler = MigrationScheduler(middleware, schedule_options,
                                       router=fleet)
        movers = [tenant for tenant in tenant_names
                  if tenant not in resumers]
        for tenant in movers:
            source = middleware.route(tenant)
            source_index = node_names.index(source)
            destination = node_names[(source_index + 1) % nodes]
            alternates = [name for name in node_names
                          if name not in (source, destination)]
            scheduler.submit(tenant, destination,
                             alternates=alternates)
        schedule_holder: Dict[str, Any] = {}

        def schedule_runner() -> Generator[Any, Any, None]:
            schedule_holder["report"] = yield from scheduler.run()
            schedule_holder["done"] = True

        if movers:
            env.process(schedule_runner(),
                        name="soak.wave.%d" % wave_index)
        else:
            schedule_holder["done"] = True

        def wave_done() -> bool:
            return ("done" in schedule_holder
                    and all("done" in holder
                            for holder in resumers.values()))

        _run_until(env, wave_done, step=5.0, cap=started + WAVE_CAP)
        wedged = not wave_done()
        if wedged:
            outcome.wedged_waves += 1
        jobs: List[Dict[str, Any]] = []
        schedule_report = schedule_holder.get("report")
        if schedule_report is not None:
            for job in schedule_report.jobs:
                jobs.append({"tenant": job.tenant,
                             "outcome": job.outcome,
                             "attempts": job.attempts,
                             "resumes": job.resumes,
                             "destination": job.destination,
                             "error": job.error})
                outcome.resumes += job.resumes
                if job.outcome == "ok":
                    ok_by_tenant[job.tenant] += 1
                    outcome.migrations_ok += 1
                elif job.outcome == "suspended":
                    outcome.suspended += 1
                elif job.outcome == "aborted":
                    outcome.aborted += 1
                else:
                    outcome.failed += 1
        for tenant, holder in sorted(resumers.items()):
            resumed_outcome = holder.get("outcome", "wedged")
            jobs.append({"tenant": tenant,
                         "outcome": resumed_outcome,
                         "attempts": 1, "resumes": 1,
                         "destination": middleware.route(tenant),
                         "error": holder.get("error")})
            outcome.resumes += 1
            if resumed_outcome == "ok":
                ok_by_tenant[tenant] += 1
                outcome.migrations_ok += 1
            elif resumed_outcome == "suspended":
                outcome.suspended += 1
            else:
                outcome.failed += 1
        check_owners("wave %d" % wave_index)
        record = {"wave": wave_index, "started": round(started, 6),
                  "ended": round(env.now, 6), "wedged": wedged,
                  "jobs": jobs}
        middleware.tracer.event(
            "soak.wave", wave=wave_index, jobs=len(jobs),
            ok=sum(1 for job in jobs if job["outcome"] == "ok"),
            resumes=sum(job["resumes"] for job in jobs),
            wedged=wedged)
        return record

    # -- the soak loop --------------------------------------------------
    wave_index = 0
    while env.now < horizon:
        wave_index += 1
        outcome.waves.append(run_wave(wave_index))
        env.run(until=env.now + WAVE_GAP)
    # Final drain: resume anything still parked so no tenant ends the
    # soak stuck mid-migration (bounded — crashes always heal).
    for _attempt in range(3):
        if not any(parked(tenant) for tenant in tenant_names):
            break
        wave_index += 1
        outcome.waves.append(run_wave(wave_index))

    # -- quiesce and verify ---------------------------------------------
    _run_until(env, lambda: all(not proc.is_alive
                                for proc in client_procs),
               step=5.0, cap=env.now + 600.0)
    _run_until(env, lambda: all(not cluster.node(name).instance.crashed
                                for name in node_names),
               step=5.0, cap=env.now + 600.0)
    env.run(until=env.now + 5.0)
    injector.close()
    check_owners("final")
    for tenant in tenant_names:
        workload = workloads[tenant]
        outcome.committed_txns += workload.committed_txns
        outcome.aborted_txns += workload.aborted_txns
        owner = middleware.route(tenant)
        table = cluster.node(owner).instance.tenant(tenant).table("kv")
        for key, increments in sorted(
                workload.committed_increments.items()):
            got = table.chain(key).latest()["v"]
            if got < increments:
                # An acknowledged increment is missing: a real loss.
                outcome.value_mismatches += 1
                outcome.lost_commits += increments - got
            elif got > increments:
                # Surplus: a COMMIT executed but its reply died in a
                # crashed router shard (outcome-unknown, never acked).
                # Bounded below by the router's acks_dropped counter.
                outcome.phantom_increments += got - increments
        if ok_by_tenant[tenant] == 0:
            outcome.unmigrated_tenants.append(tenant)
    registry = middleware.metrics
    outcome.injected_faults = int(
        registry.counter("faults.injected").value)
    outcome.recovered_faults = int(
        registry.counter("faults.recovered").value)
    outcome.unrecovered_faults = int(
        registry.counter("faults.unrecovered").value)
    outcome.resumed_ok = sum(
        1 for span in middleware.tracer.find(kind=MIGRATION)
        if span.attrs.get("resumed")
        and span.attrs.get("outcome") == "ok")
    outcome.router = fleet.stats()
    outcome.phantom_bound = (kv_config.writes_per_txn
                             * int(outcome.router["acks_dropped"]))
    middleware.tracer.event(
        "soak.summary", waves=len(outcome.waves),
        migrations_ok=outcome.migrations_ok,
        resumed_ok=outcome.resumed_ok, resumes=outcome.resumes,
        suspended=outcome.suspended,
        lost_commits=outcome.lost_commits,
        value_mismatches=outcome.value_mismatches,
        phantom_increments=outcome.phantom_increments,
        phantom_bound=outcome.phantom_bound,
        owner_violations=len(outcome.owner_violations),
        unmigrated=len(outcome.unmigrated_tenants),
        faults_injected=outcome.injected_faults, ok=outcome.ok)
    middleware.tracer.event(
        "router.summary", lost_requests=outcome.lost_commits,
        phantom_increments=outcome.phantom_increments,
        phantom_bound=outcome.phantom_bound, **outcome.router)

    # -- artifacts -------------------------------------------------------
    artifacts: List[str] = []
    directory = trace_dir or os.environ.get(TRACE_DIR_ENV_VAR)
    if directory:
        os.makedirs(directory, exist_ok=True)
        outcome.trace_path = os.path.join(directory,
                                          "trace_chaos_soak.jsonl")
        write_trace(outcome.trace_path, middleware.tracer,
                    middleware.metrics, {
                        "experiment": "chaos-soak",
                        "profile": profile.name,
                        "policy": middleware.config.policy.name,
                        "seed": root_seed,
                        "hours": hours,
                    })
        artifacts.append(outcome.trace_path)
    if soak_dir:
        os.makedirs(soak_dir, exist_ok=True)
        outcome.report_path = os.path.join(
            soak_dir, "SOAK_seed%s.json" % root_seed)
        with open(outcome.report_path, "w") as handle:
            json.dump(outcome.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        artifacts.append(outcome.report_path)
    return Report(experiment="chaos-soak", profile=profile.name,
                  seed=root_seed, text=report(outcome),
                  data=outcome, artifacts=artifacts)


def report(outcome: SoakOutcome) -> str:
    """The soak results as a table plus an invariant summary."""
    rows = []
    for wave in outcome.waves:
        counts: Dict[str, int] = {}
        resumes = 0
        for job in wave["jobs"]:
            counts[job["outcome"]] = counts.get(job["outcome"], 0) + 1
            resumes += job["resumes"]
        rows.append([wave["wave"], len(wave["jobs"]),
                     counts.get("ok", 0), resumes,
                     counts.get("suspended", 0),
                     counts.get("aborted", 0) + counts.get("failed", 0),
                     "%.0f" % wave["ended"]])
    table = format_table(
        ["wave", "jobs", "ok", "resumes", "suspended", "failed",
         "end [s]"],
        rows,
        title="Chaos soak - %d tenants / %d nodes, %.1f simulated "
              "hours (seed=%s)" % (len(outcome.tenants),
                                   len(outcome.nodes), outcome.hours,
                                   outcome.seed))
    lines = [table, ""]
    lines.append("faults: %d injected, %d recovered, %d unrecovered "
                 "(%d planned)" % (outcome.injected_faults,
                                   outcome.recovered_faults,
                                   outcome.unrecovered_faults,
                                   outcome.planned_faults))
    lines.append("migrations: %d ok (%d finished via resume), "
                 "%d resume re-entries, %d suspended, %d aborted, "
                 "%d failed" % (outcome.migrations_ok,
                                outcome.resumed_ok, outcome.resumes,
                                outcome.suspended, outcome.aborted,
                                outcome.failed))
    lines.append("workload: %d committed txns, %d aborted"
                 % (outcome.committed_txns, outcome.aborted_txns))
    if outcome.router:
        lines.append("router: %d shards, %d crashes, %d reconnects, "
                     "%d acks dropped, %d stale routes"
                     % (outcome.router.get("shards", 0),
                        outcome.router.get("crashes", 0),
                        outcome.router.get("reconnects", 0),
                        outcome.router.get("acks_dropped", 0),
                        outcome.router.get("stale_routes", 0)))
    lines.append("invariants: %d lost commits, %d value mismatches, "
                 "%d phantom increments (bound %d), "
                 "%d owner violations, %d unmigrated tenants, "
                 "%d wedged waves -> %s"
                 % (outcome.lost_commits, outcome.value_mismatches,
                    outcome.phantom_increments, outcome.phantom_bound,
                    len(outcome.owner_violations),
                    len(outcome.unmigrated_tenants),
                    outcome.wedged_waves,
                    "OK" if outcome.ok else "FAIL"))
    return "\n".join(lines)


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None) -> Report:
    """Uniform entry point: a short soak at the profile's seed."""
    return run_soak(profile, seed=seed, trace_dir=trace_dir)
