"""Figure 9 and Table 3: migration time vs database size.

Madeus migrates databases of 0.8 / 3.1 / 6.2 / 12 GB (paper scale) under
heavy workload (700 EBs).  The paper measured 101 / 496 / 1365 / 3536 s:
superlinear, because restoring (inserts + attribute alters + index
builds) is slower than dumping, and the longer the restore the more
syncsets accumulate and must be caught up.

Table 3 maps (items, EBs) to database size; we report the size our
population model yields for the same parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.middleware import MigrationOptions
from ..metrics.report import format_table
from ..workload.tpcw import (
    PAPER_TABLE3,
    PopulationParams,
    nominal_database_size_mb,
)
from .common import Report, TenantSetup, build_testbed, seeded
from .profiles import Profile, get_profile

#: Paper Figure 9: (items, population EBs, migration seconds).
PAPER_FIG9 = (
    (100000, 100, 101.0),
    (500000, 500, 496.0),
    (1000000, 1000, 1365.0),
    (2000000, 2000, 3536.0),
)


@dataclass
class SizeResult:
    """One Figure-9 point."""

    items: int
    population_ebs: int
    size_mb: float
    migration_time: Optional[float]
    dump_time: float = 0.0
    restore_time: float = 0.0
    catchup_time: float = 0.0
    syncsets: int = 0


def run_one_size(items: int, population_ebs: int,
                 profile: Optional[Profile] = None,
                 paper_ebs: int = 700,
                 trace_dir: Optional[str] = None) -> SizeResult:
    """Migrate one database of the given scale under heavy workload."""
    profile = profile or get_profile()
    testbed = build_testbed(
        profile,
        [TenantSetup("A", "node0", paper_ebs=paper_ebs, items=items,
                     population_ebs=population_ebs)],
        trace_dir=trace_dir)
    size_mb = testbed.node("node0").instance.tenant("A").size_mb()
    warmup = max(2.0, profile.duration(30.0))
    testbed.run(until=warmup)
    # Figure 9's superlinearity comes from the serial restore's index
    # builds, so the streamed snapshot path is pinned off here.
    outcome = testbed.migrate_async(
        "A", "node1", options=MigrationOptions(strategy="serial"))
    # Large databases legitimately take long; the patience budget is
    # several times the closed-form dump+restore estimate (the size is
    # already profile-scaled, so no further time scaling applies).
    from ..engine.dump import restore_duration
    pipeline = (size_mb / profile.rates.dump_mb_s
                + restore_duration(size_mb, profile.rates))
    cap = (warmup + profile.catchup_deadline + profile.duration(60.0)
           + 3.0 * pipeline)
    testbed.run_until(lambda: "done" in outcome, step=10.0, cap=cap)
    report = outcome.get("report")
    if report is None:
        return SizeResult(items, population_ebs, size_mb, None)
    return SizeResult(items, population_ebs, size_mb,
                      report.migration_time, report.dump_time,
                      report.restore_time, report.catchup_time,
                      report.syncsets_propagated)


def run_figure9(profile: Optional[Profile] = None,
                scales: Sequence = PAPER_FIG9,
                trace_dir: Optional[str] = None) -> List[SizeResult]:
    """The Figure-9 sweep over database sizes."""
    profile = profile or get_profile()
    return [run_one_size(items, ebs, profile, trace_dir=trace_dir)
            for items, ebs, _paper in scales]


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None) -> Report:
    """Uniform entry point: Table 3 plus the Figure-9 sweep."""
    profile = seeded(profile or get_profile(), seed)
    results = run_figure9(profile, trace_dir=trace_dir)
    text = "%s\n\n%s" % (report_table3(profile),
                         report_fig9(results, profile))
    return Report(experiment="dbsize", profile=profile.name,
                  seed=profile.seed, text=text, data=results)


def report_fig9(results: List[SizeResult], profile: Profile) -> str:
    """Figure 9 as a table with paper values and growth factors."""
    paper = {(items, ebs): seconds for items, ebs, seconds in PAPER_FIG9}
    rows = []
    previous = None
    for result in results:
        paper_time = paper.get((result.items, result.population_ebs))
        growth = (result.migration_time / previous
                  if previous and result.migration_time else None)
        rows.append([result.items, result.population_ebs,
                     result.size_mb / 1000.0,
                     result.migration_time,
                     paper_time * profile.time_scale
                     if paper_time else None,
                     growth if growth is not None else "-",
                     result.catchup_time, result.syncsets])
        previous = result.migration_time
    return format_table(
        ["items", "pop EBs", "size [GB]", "migration [s]",
         "paper(scaled) [s]", "x prev", "catchup [s]", "syncsets"],
        rows,
        title="Figure 9 - migration time vs database size (profile=%s)"
              % profile.name)


def report_table3(profile: Optional[Profile] = None) -> str:
    """Table 3: database sizes from the population model vs the paper."""
    rows = []
    for entry in PAPER_TABLE3:
        params = PopulationParams(items=entry["items"], ebs=entry["ebs"])
        model_gb = nominal_database_size_mb(params) / 1000.0
        rows.append([entry["items"], entry["ebs"], entry["size_gb"],
                     model_gb, model_gb / entry["size_gb"]])
    return format_table(
        ["items", "EBs", "paper [GB]", "model [GB]", "ratio"],
        rows, title="Table 3 - database size vs scale parameters")


def main() -> None:
    """Run at the default profile and print Table 3 + Figure 9."""
    profile = get_profile()
    print(report_table3(profile))
    print()
    results = run_figure9(profile)
    print(report_fig9(results, profile))


if __name__ == "__main__":
    main()
