"""``repro bench --scenario simthroughput``: substrate speed, measured.

Unlike every other experiment in this repo, this scenario reports *real*
wall-clock numbers: how many kernel events (or parses, MVCC reads,
statements) the simulation substrate processes per second of host CPU.
The artifact (``BENCH_simthroughput.json``) is what CI's perf gate
compares between the PR and its base commit — always the *ratio* of the
two runs on the same runner, never absolute timings, per ROADMAP.md's
tolerance policy.

Five cases, spanning the layers the paper-scale runs exercise:

``kernel_ping_pong``
    Two processes alternating ``yield env.timeout(1)`` — the raw event
    dispatch + timeout scheduling rate of :mod:`repro.sim.core`.
``parser_replay``
    A TPC-W-shaped battery of ~30 distinct statements parsed over and
    over (cold first pass, then the LRU steady state a replay sees).
``mvcc_read``
    Version-chain reads, alternating the read-latest fast path with a
    mid-chain snapshot probe (the binary-search path).
``engine_point_select``
    Full statement execution: a pre-parsed point ``SELECT`` through
    :class:`~repro.engine.Session` against a 100-row table.
``migration_e2e``
    One complete seeded single-tenant migration at the scenario's
    profile; throughput is the run's kernel events per wall second.

``--paper-smoke`` additionally drives one *paper*-profile migration and
records whether it finished within the CI budget
(:data:`PAPER_SMOKE_BUDGET_S` real seconds) — the proof that paper-scale
runs are practical on CI hardware.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.middleware import MigrationOptions
from ..engine import DbmsInstance, Session
from ..engine.dump import restore_duration
from ..engine.mvcc import VersionChain
from ..engine.sqlmini import parse
from ..sim.core import Environment
from .common import TenantSetup, build_testbed
from .profiles import PAPER, Profile

#: Real-time budget for the ``--paper-smoke`` migration, in seconds.
#: The CI job's ``timeout-minutes`` sits above this, so an overrun
#: fails the gate with a diagnosis instead of a hard job kill.
PAPER_SMOKE_BUDGET_S = 300.0

#: Workload (paper EBs) driven while the timed migrations run.
SMOKE_PAPER_EBS = 100

#: Timed rounds per microbench case; the median damps runner noise.
ROUNDS = 3

#: Per-profile iteration counts: large enough that each timed round is
#: well above timer resolution, small enough that the whole scenario
#: stays in CI's budget at the ``quick`` profile.
_PINGPONG_YIELDS = {"paper": 100_000, "quick": 25_000, "smoke": 2_000}
_PARSER_PASSES = {"paper": 1_000, "quick": 300, "smoke": 30}
_MVCC_READS = {"paper": 200_000, "quick": 50_000, "smoke": 5_000}
_POINT_SELECTS = {"paper": 2_000, "quick": 500, "smoke": 50}

#: The parser battery: the statement shapes a TPC-W replay issues, with
#: enough literal variety to exercise the LRU honestly.
_PARSER_BATTERY = tuple(
    [
        "SELECT i_id, i_title, i_srp FROM item WHERE i_subject = "
        "'subject%d' ORDER BY i_title LIMIT 50" % index
        for index in range(8)
    ] + [
        "SELECT c_fname, c_lname FROM customer WHERE c_id = %d" % index
        for index in range(8)
    ] + [
        "UPDATE item SET i_stock = %d WHERE i_id = %d"
        % (index * 3, index) for index in range(6)
    ] + [
        "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty) "
        "VALUES (%d, %d, %d, 1)" % (index, index, index)
        for index in range(6)
    ] + [
        "BEGIN",
        "COMMIT",
    ])


@dataclass
class ThroughputCase:
    """One measured substrate rate (a row of ``BENCH_simthroughput``)."""

    case: str
    metric: str
    operations: int
    wall_seconds: float
    throughput: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "metric": self.metric,
            "operations": self.operations,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "detail": self.detail,
        }


@dataclass
class SimThroughputResult:
    """The scenario's cases plus the optional paper-smoke record."""

    scenario: str
    profile: str
    seed: int
    cases: List[ThroughputCase] = field(default_factory=list)
    paper_smoke: Optional[Dict[str, Any]] = None
    path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.scenario,
            "profile": self.profile,
            "seed": self.seed,
            "cases": [case.to_dict() for case in self.cases],
            "paper_smoke": self.paper_smoke,
        }

    @property
    def paper_smoke_ok(self) -> bool:
        """True unless a paper-smoke run exceeded its budget."""
        if self.paper_smoke is None:
            return True
        return bool(self.paper_smoke.get("within_budget"))


def _median_rate(operations: int, seconds: List[float]) -> ThroughputCase:
    seconds = sorted(seconds)
    wall = seconds[len(seconds) // 2]
    return operations, wall, operations / wall


# ----------------------------------------------------------------------
# the microbench cases
# ----------------------------------------------------------------------
def _bench_kernel_ping_pong(iterations: int) -> ThroughputCase:
    """Events/sec of two processes trading 1-unit timeouts."""
    walls = []
    events = 0
    for _round in range(ROUNDS):
        env = Environment()

        def ping(env):
            for _i in range(iterations):
                yield env.timeout(1)

        env.process(ping(env))
        env.process(ping(env))
        start = time.perf_counter()
        env.run()
        walls.append(time.perf_counter() - start)
        events = env.events_processed
    operations, wall, rate = _median_rate(events, walls)
    return ThroughputCase(
        case="kernel_ping_pong", metric="events_per_second",
        operations=operations, wall_seconds=wall, throughput=rate,
        detail={"processes": 2, "yields_per_process": iterations,
                "rounds": ROUNDS})


def _bench_parser_replay(passes: int) -> ThroughputCase:
    """Statements parsed/sec over the TPC-W battery (LRU included)."""
    parse.cache_clear()
    battery = _PARSER_BATTERY
    walls = []
    for _round in range(ROUNDS):
        start = time.perf_counter()
        for _pass in range(passes):
            for sql in battery:
                parse(sql)
        walls.append(time.perf_counter() - start)
    operations, wall, rate = _median_rate(passes * len(battery), walls)
    return ThroughputCase(
        case="parser_replay", metric="statements_per_second",
        operations=operations, wall_seconds=wall, throughput=rate,
        detail={"distinct_statements": len(battery), "passes": passes,
                "rounds": ROUNDS, "cold_first_pass": True})


def _bench_mvcc_read(reads: int) -> ThroughputCase:
    """Version-chain reads/sec: latest fast path + mid-chain probe."""
    chain = VersionChain()
    for csn in range(1, 201):
        chain.install(csn, {"v": csn})
    read = chain.read
    walls = []
    for _round in range(ROUNDS):
        start = time.perf_counter()
        for _i in range(reads // 2):
            read(100)   # mid-chain: binary search
            read(500)   # at/after newest: the read-latest fast path
        walls.append(time.perf_counter() - start)
    operations, wall, rate = _median_rate(2 * (reads // 2), walls)
    return ThroughputCase(
        case="mvcc_read", metric="reads_per_second",
        operations=operations, wall_seconds=wall, throughput=rate,
        detail={"chain_versions": 200, "rounds": ROUNDS,
                "mix": "50% read-latest, 50% mid-chain snapshot"})


def _bench_engine_point_select(selects: int) -> ThroughputCase:
    """Full point-SELECT executions/sec through a Session."""
    env = Environment()
    instance = DbmsInstance(env, "bench0")
    instance.create_tenant("T")
    session = Session(instance, "T")

    def setup(env):
        yield from session.execute(
            "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        yield from session.execute("BEGIN")
        for key in range(100):
            yield from session.execute(
                "INSERT INTO kv (k, v) VALUES (%d, %d)" % (key, key))
        yield from session.execute("COMMIT")

    env.process(setup(env))
    env.run()
    statement = parse("SELECT v FROM kv WHERE k = 42")
    walls = []
    for _round in range(ROUNDS):
        def select_loop(env):
            for _i in range(selects):
                yield from session.execute(statement, cpu_cost=0.0)

        env.process(select_loop(env))
        start = time.perf_counter()
        env.run()  # a failed select crashes the run (nobody waits on it)
        walls.append(time.perf_counter() - start)
    operations, wall, rate = _median_rate(selects, walls)
    return ThroughputCase(
        case="engine_point_select", metric="selects_per_second",
        operations=operations, wall_seconds=wall, throughput=rate,
        detail={"table_rows": 100, "rounds": ROUNDS})


def _timed_migration(profile: Profile) -> Dict[str, Any]:
    """One seeded single-tenant migration, timed on the host clock."""
    testbed = build_testbed(
        profile, [TenantSetup("A", "node0", paper_ebs=SMOKE_PAPER_EBS)])
    tenant = testbed.node("node0").instance.tenant("A")
    size_mb = tenant.size_mb()
    warmup = max(2.0, profile.duration(30.0))
    transfer = (size_mb / profile.rates.dump_mb_s
                + restore_duration(size_mb, profile.rates))
    cap = (warmup + profile.catchup_deadline + profile.duration(60.0)
           + 3.0 * transfer)
    start = time.perf_counter()
    testbed.run(until=warmup)
    outcome = testbed.migrate_async("A", "node1",
                                    options=MigrationOptions())
    testbed.run_until(lambda: "done" in outcome, step=5.0, cap=cap)
    wall = time.perf_counter() - start
    report = outcome.get("report")
    if report is None:
        raise RuntimeError(
            "simthroughput migration did not complete at profile %s: %s"
            % (profile.name, outcome.get("timeout")))
    events = testbed.env.events_processed
    return {
        "profile": profile.name,
        "wall_seconds": wall,
        "events_processed": events,
        "events_per_second": events / wall if wall > 0 else 0.0,
        "sim_seconds": testbed.env.now,
        "migration_time": report.migration_time,
        "consistent": report.consistent,
    }


def _bench_migration_e2e(profile: Profile) -> ThroughputCase:
    outcome = _timed_migration(profile)
    return ThroughputCase(
        case="migration_e2e", metric="events_per_second",
        operations=outcome["events_processed"],
        wall_seconds=outcome["wall_seconds"],
        throughput=outcome["events_per_second"],
        detail={"sim_seconds": outcome["sim_seconds"],
                "migration_time": outcome["migration_time"],
                "consistent": outcome["consistent"]})


# ----------------------------------------------------------------------
# scenario entry point
# ----------------------------------------------------------------------
def run_scenario(profile: Profile,
                 paper_smoke: bool = False) -> SimThroughputResult:
    """Measure all five substrate rates (and optionally paper smoke)."""
    result = SimThroughputResult(scenario="simthroughput",
                                 profile=profile.name,
                                 seed=profile.seed)
    scale = profile.name if profile.name in _PINGPONG_YIELDS else "quick"
    result.cases.append(
        _bench_kernel_ping_pong(_PINGPONG_YIELDS[scale]))
    result.cases.append(_bench_parser_replay(_PARSER_PASSES[scale]))
    result.cases.append(_bench_mvcc_read(_MVCC_READS[scale]))
    result.cases.append(
        _bench_engine_point_select(_POINT_SELECTS[scale]))
    result.cases.append(_bench_migration_e2e(profile))
    if paper_smoke:
        outcome = _timed_migration(PAPER)
        outcome["budget_seconds"] = PAPER_SMOKE_BUDGET_S
        outcome["within_budget"] = (
            outcome["wall_seconds"] <= PAPER_SMOKE_BUDGET_S)
        result.paper_smoke = outcome
    return result


def render(result: SimThroughputResult) -> List[str]:
    """Human-readable lines for the bench report."""
    lines = ["sim throughput (profile=%s, real wall-clock rates):"
             % result.profile]
    for case in result.cases:
        lines.append(
            "  %-20s %12.0f %s  (%d ops in %.3f s)"
            % (case.case, case.throughput, case.metric.replace("_", " "),
               case.operations, case.wall_seconds))
    if result.paper_smoke is not None:
        smoke = result.paper_smoke
        lines.append(
            "  paper-smoke migration: %.1f s wall (budget %.0f s) -> %s"
            % (smoke["wall_seconds"], smoke["budget_seconds"],
               "OK" if smoke["within_budget"] else "OVER BUDGET"))
    return lines
