"""Figure 6 and Table 2: migration time per middleware per workload.

Runs database live migration of one 800-MB (paper scale) TPC-W tenant
under light/medium/heavy workloads (100/400/700 EBs) for each of B-ALL,
B-MIN, B-CON, and Madeus.  The paper's reference values:

=========  ======  ======  ======
middleware  100EB   400EB   700EB
=========  ======  ======  ======
B-ALL        ~110     304     959
B-MIN        ~110     221     332
B-CON        ~110     703     N/A
Madeus        110     104     101
=========  ======  ======  ======

"N/A" means the slave never caught up (serial commit propagation slower
than the master's commit rate) — surfaced here as a
:class:`~repro.errors.CatchUpTimeout`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.middleware import MigrationOptions
from ..core.policy import ALL_POLICIES, PropagationPolicy, feature_matrix
from ..metrics.report import format_table
from .common import Report, TenantSetup, build_testbed, seeded
from .profiles import Profile, get_profile

#: Paper-reported migration times in seconds (math.nan = N/A).
PAPER_MIGRATION_TIMES: Dict[str, Dict[int, float]] = {
    "B-ALL": {100: 110.0, 400: 304.0, 700: 959.0},
    "B-MIN": {100: 110.0, 400: 221.0, 700: 332.0},
    "B-CON": {100: 110.0, 400: 703.0, 700: math.nan},
    "Madeus": {100: 110.0, 400: 104.0, 700: 101.0},
}

#: Warm-up before the migration order is issued (paper: ~150 s).
WARMUP_SECONDS = 30.0


@dataclass
class MigrationResult:
    """One (policy, workload) cell of Figure 6."""

    policy: str
    paper_ebs: int
    migration_time: Optional[float]   # None = N/A (no catch-up)
    dump_time: float = 0.0
    restore_time: float = 0.0
    catchup_time: float = 0.0
    syncsets: int = 0
    mean_group_size: float = 0.0
    consistent: Optional[bool] = None
    backlog_at_timeout: int = 0


def run_one(policy: PropagationPolicy, paper_ebs: int,
            profile: Optional[Profile] = None,
            trace_dir: Optional[str] = None) -> MigrationResult:
    """Run one migration under ``policy`` at ``paper_ebs`` workload."""
    profile = profile or get_profile()
    testbed = build_testbed(
        profile, [TenantSetup("A", "node0", paper_ebs=paper_ebs)],
        policy=policy, trace_dir=trace_dir)
    warmup = max(2.0, WARMUP_SECONDS * profile.time_scale * 8)
    testbed.run(until=warmup)
    # Figure 6 reproduces the paper's serial dump -> ship -> restore
    # timings, so the streamed snapshot path is pinned off here.
    outcome = testbed.migrate_async(
        "A", "node1", options=MigrationOptions(strategy="serial"))
    cap = warmup + profile.catchup_deadline + profile.duration(300.0)
    testbed.run_until(lambda: "done" in outcome, step=5.0, cap=cap)
    if "report" in outcome:
        report = outcome["report"]
        return MigrationResult(
            policy=policy.name, paper_ebs=paper_ebs,
            migration_time=report.migration_time,
            dump_time=report.dump_time,
            restore_time=report.restore_time,
            catchup_time=report.catchup_time,
            syncsets=report.syncsets_propagated,
            mean_group_size=report.slave_mean_group_size,
            consistent=report.consistent)
    timeout = outcome.get("timeout")
    return MigrationResult(policy=policy.name, paper_ebs=paper_ebs,
                           migration_time=None,
                           backlog_at_timeout=getattr(timeout, "backlog", 0))


def run_figure6(profile: Optional[Profile] = None,
                eb_counts: Sequence[int] = (100, 400, 700),
                policies: Sequence[PropagationPolicy] = ALL_POLICIES,
                trace_dir: Optional[str] = None
                ) -> List[MigrationResult]:
    """The full Figure-6 grid."""
    profile = profile or get_profile()
    results: List[MigrationResult] = []
    for policy in policies:
        for paper_ebs in eb_counts:
            results.append(run_one(policy, paper_ebs, profile,
                                   trace_dir=trace_dir))
    return results


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None) -> Report:
    """Uniform entry point: Table 2 plus the Figure-6 grid."""
    profile = seeded(profile or get_profile(), seed)
    results = run_figure6(profile, trace_dir=trace_dir)
    text = "%s\n\n%s" % (report_table2(), report(results, profile))
    return Report(experiment="migration_time", profile=profile.name,
                  seed=profile.seed, text=text, data=results)


def report(results: List[MigrationResult], profile: Profile) -> str:
    """Figure 6 as a table with paper values alongside."""
    rows = []
    for result in results:
        paper = PAPER_MIGRATION_TIMES.get(result.policy, {}).get(
            result.paper_ebs, math.nan)
        measured = (result.migration_time if result.migration_time
                    is not None else math.nan)
        # paper values are at paper scale; scale for comparability
        rows.append([result.policy, result.paper_ebs, measured,
                     paper * profile.time_scale if paper == paper
                     else math.nan,
                     result.dump_time + result.restore_time,
                     result.catchup_time, result.syncsets,
                     result.mean_group_size])
    return format_table(
        ["middleware", "EBs", "migration [s]", "paper(scaled) [s]",
         "dump+restore [s]", "catchup [s]", "syncsets", "group size"],
        rows,
        title=("Figure 6 - migration time per middleware "
               "(profile=%s)" % profile.name))


def report_table2() -> str:
    """Table 2: the feature matrix, derived from the policy objects."""
    matrix = feature_matrix()
    rows = []
    for name in ("B-ALL", "B-MIN", "B-CON", "Madeus"):
        flags = matrix[name]
        rows.append([name,
                     "yes" if flags["MIN"] else "-",
                     "yes" if flags["CON-FW"] else "-",
                     "yes" if flags["CON-COM"] else "-"])
    return format_table(["middleware", "MIN", "CON-FW", "CON-COM"], rows,
                        title="Table 2 - middleware feature matrix")


def main() -> None:
    """Run Figure 6 at the default profile and print both tables."""
    profile = get_profile()
    print(report_table2())
    print()
    results = run_figure6(profile)
    print(report(results, profile))


if __name__ == "__main__":
    main()
