"""Chaos runs: a TPC-W migration under a seeded fault plan.

Not a paper figure — a robustness harness.  Each scenario builds the
usual testbed (one TPC-W tenant under EB load), arms a declarative
:class:`~repro.faults.FaultPlan` against the cluster, and runs a live
migration through the fault storm.  The interesting output is *how* the
migration ends:

``ok``
    Completed normally (possibly after retries / dropping a standby).
``failover``
    The destination died mid-migration and a standby was promoted; the
    tenant ends up consistent on the promoted node.
``aborted``
    The migration gave up; the tenant must still be routable on the
    source with the admission gate open.

Every injected fault and every recovery action lands in the trace
(``fault.injected``, ``migration.retry``, ``migration.standby_dropped``,
``migration.failover``), so a chaos run is fully auditable offline —
``scripts/check_trace.py --expect-outcome ...`` gates exactly that in CI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..core.middleware import MigrationOptions, MigrationReport
from ..errors import CatchUpTimeout, MigrationError
from ..faults import FaultInjector, FaultPlan
from ..metrics.report import format_table
from .common import (
    TRACE_DIR_ENV_VAR,
    Report,
    TenantSetup,
    build_testbed,
    seeded,
)
from .profiles import Profile, get_profile

#: Same warm-up rule as the Figure-6 harness.
WARMUP_SECONDS = 30.0


def _plan_standby_crash(profile: Profile) -> Tuple[FaultPlan, List[str]]:
    """Crash the standby mid-catch-up; migration must finish without it."""
    del profile
    plan = FaultPlan()
    plan.add("standby-dies", "crash", target="node2", phase="catch-up")
    return plan, ["node2"]


def _plan_destination_crash(profile: Profile) -> Tuple[FaultPlan, List[str]]:
    """Crash the destination mid-catch-up; the standby must take over."""
    del profile
    plan = FaultPlan()
    plan.add("destination-dies", "crash", target="node1", phase="catch-up")
    return plan, ["node2"]


def _plan_flaky_network(profile: Profile) -> Tuple[FaultPlan, List[str]]:
    """Cut the link mid-snapshot-ship; the retry loop must absorb it.

    The outage is shorter than the middleware's capped-backoff budget,
    so the migration completes with ``migration.retries`` > 0.
    """
    outage = min(0.4, profile.duration(10.0))
    plan = FaultPlan()
    plan.add("link-flaps", "link_down", phase="restore", duration=outage)
    return plan, []


def _plan_disk_stall(profile: Profile) -> Tuple[FaultPlan, List[str]]:
    """Stall the destination's disk during catch-up; just a slowdown."""
    plan = FaultPlan()
    plan.add("dest-disk-stalls", "disk_stall", target="node1",
             phase="catch-up", duration=max(0.2, profile.duration(5.0)))
    return plan, []


def _source_downtime(profile: Profile) -> float:
    """How long a crashed source stays down before WAL-replay restart."""
    return max(0.5, profile.duration(10.0))


def _plan_source_crash_dump(profile: Profile) -> Tuple[FaultPlan, List[str]]:
    """Crash the master while it is dumping; Madeus must abort (4.2)."""
    plan = FaultPlan()
    plan.add("source-dies", "crash", target="node0", phase="dump",
             duration=_source_downtime(profile))
    return plan, []


def _plan_source_crash_catchup(profile: Profile,
                               ) -> Tuple[FaultPlan, List[str]]:
    """Crash the master mid-catch-up; abort, nothing committed is lost."""
    plan = FaultPlan()
    plan.add("source-dies", "crash", target="node0", phase="catch-up",
             duration=_source_downtime(profile))
    return plan, []


def _plan_source_crash_handover(profile: Profile,
                                ) -> Tuple[FaultPlan, List[str]]:
    """Crash the master inside the handover window.

    The two-step ownership switch makes this safe either way: before
    the routing entry is marked ready the abort rolls back to the
    source; at or after ready the handover rolls forward and the
    destination owns the tenant.  The injector's phase poll may also
    land the crash just after commit — every resolution leaves exactly
    one owner, which is what the trace gate checks.
    """
    plan = FaultPlan()
    plan.add("source-dies", "crash", target="node0", phase="handover",
             duration=_source_downtime(profile))
    return plan, []


def _plan_storm_ship(profile: Profile) -> Tuple[FaultPlan, List[str]]:
    """Link outage on the ship route *while* the standby crashes.

    Two overlapping faults: the snapshot retry loop must absorb the
    outage while the (permanently) dead standby is dropped, and the
    migration still completes on the destination.
    """
    outage = min(0.4, profile.duration(10.0))
    plan = FaultPlan()
    plan.add("link-flaps", "link_down", phase="restore", duration=outage)
    plan.add("standby-dies", "crash", target="node2",
             after="link-flaps", at=outage / 2)
    return plan, ["node2"]


def _plan_crash_on_recovery(profile: Profile,
                            ) -> Tuple[FaultPlan, List[str]]:
    """Destination dies the instant a network outage heals.

    A slow-network window spans a link outage (two concurrent faults);
    the destination crash chains on the outage's *recovery*, so the
    retry that would have succeeded hits a dead node instead and the
    standby must take over.
    """
    outage = min(0.4, profile.duration(10.0))
    plan = FaultPlan()
    plan.add("slow-net", "latency", factor=3.0, phase="restore",
             duration=max(1.0, 4 * outage))
    plan.add("link-flaps", "link_down", phase="restore", at=outage / 4,
             duration=outage)
    plan.add("destination-dies", "crash", target="node1",
             after="link-flaps", after_event="recovered")
    return plan, ["node2"]


def _plan_degrade_storm(profile: Profile) -> Tuple[FaultPlan, List[str]]:
    """Latency and bandwidth collapse together, then the standby dies.

    Three overlapping fault windows during catch-up; the migration
    must ride out the degradation, drop the dead standby, and finish.
    """
    window = max(0.5, profile.duration(12.0))
    plan = FaultPlan()
    plan.add("slow-latency", "latency", factor=4.0, phase="catch-up",
             duration=window)
    plan.add("slow-bandwidth", "bandwidth", factor=4.0,
             after="slow-latency", duration=window)
    plan.add("standby-dies", "crash", target="node2",
             after="slow-bandwidth", at=window / 4)
    return plan, ["node2"]


def _plan_baseline(profile: Profile) -> Tuple[FaultPlan, List[str]]:
    """No faults: the control run."""
    del profile
    return FaultPlan(), []


SCENARIOS = {
    "baseline": _plan_baseline,
    "standby-crash": _plan_standby_crash,
    "destination-crash": _plan_destination_crash,
    "flaky-network": _plan_flaky_network,
    "disk-stall": _plan_disk_stall,
    "source-crash-dump": _plan_source_crash_dump,
    "source-crash-catchup": _plan_source_crash_catchup,
    "source-crash-handover": _plan_source_crash_handover,
    "storm-ship": _plan_storm_ship,
    "crash-on-recovery": _plan_crash_on_recovery,
    "degrade-storm": _plan_degrade_storm,
}

DESCRIPTIONS = {
    "baseline": "no faults (control)",
    "standby-crash": "standby node crashes mid-catch-up -> dropped",
    "destination-crash": "destination crashes mid-catch-up -> failover",
    "flaky-network": "link outage during snapshot ship -> retries",
    "disk-stall": "destination disk stalls during catch-up -> slowdown",
    "source-crash-dump": "master crashes while dumping -> abort (4.2)",
    "source-crash-catchup": "master crashes mid-catch-up -> abort (4.2)",
    "source-crash-handover":
        "master crashes inside handover -> one owner either way",
    "storm-ship": "link outage + standby crash overlap -> ok, dropped",
    "crash-on-recovery":
        "destination dies as the outage heals -> failover",
    "degrade-storm":
        "latency+bandwidth collapse + standby crash -> ok, dropped",
}


@dataclass
class ChaosOutcome:
    """What one chaos scenario did to the migration."""

    scenario: str
    outcome: str                       # "ok" | "failover" | "aborted"
    route: str                         # where the tenant is routable now
    error: Optional[str] = None
    report: Optional[MigrationReport] = None
    faults_injected: int = 0
    retries: int = 0
    standby_dropped: int = 0
    failovers: int = 0
    consistent: Optional[bool] = None
    gate_open: bool = True
    trace_path: Optional[str] = None
    plan: List[Dict[str, Any]] = field(default_factory=list)


def run_chaos(scenario: str,
              profile: Optional[Profile] = None,
              trace_dir: Optional[str] = None) -> ChaosOutcome:
    """Run one chaos scenario; deterministic under the profile's seed."""
    profile = profile or get_profile()
    builder = SCENARIOS.get(scenario)
    if builder is None:
        raise ValueError("unknown chaos scenario %r (one of %s)"
                         % (scenario, ", ".join(sorted(SCENARIOS))))
    plan, standbys = builder(profile)
    testbed = build_testbed(
        profile, [TenantSetup("A", "node0", paper_ebs=100)],
        nodes=["node0", "node1", "node2"], trace_dir=trace_dir)
    injector = FaultInjector(testbed.env, testbed.cluster, plan,
                             tracer=testbed.tracer,
                             metrics=testbed.observability,
                             seed=profile.seed)
    warmup = max(2.0, WARMUP_SECONDS * profile.time_scale * 8)
    testbed.run(until=warmup)
    injector.start()
    result: Dict[str, Any] = {}

    def runner() -> Generator:
        try:
            report = yield from testbed.middleware.migrate(
                "A", "node1", MigrationOptions(
                    rates=profile.rates, standbys=tuple(standbys)))
            result["report"] = report
        except (CatchUpTimeout, MigrationError) as exc:
            result["error"] = exc
        result["done"] = True

    testbed.env.process(runner(), name="chaos-migrate-A")
    cap = warmup + (profile.catchup_deadline or 1000.0) \
        + profile.duration(300.0)
    testbed.run_until(lambda: "done" in result, step=1.0, cap=cap)
    report = result.get("report")
    error = result.get("error")
    if report is not None:
        outcome = "failover" if report.failovers else "ok"
    else:
        outcome = "aborted"
    registry = testbed.observability
    chaos = ChaosOutcome(
        scenario=scenario,
        outcome=outcome,
        route=testbed.middleware.route("A"),
        error=str(error) if error is not None else None,
        report=report,
        faults_injected=int(registry.counter("faults.injected").value),
        retries=int(registry.counter("migration.retries").value),
        standby_dropped=int(
            registry.counter("migration.standby_dropped").value),
        failovers=int(registry.counter("migration.failover").value),
        consistent=report.consistent if report is not None else None,
        gate_open=testbed.middleware.tenant_state("A").gate.is_open,
        plan=plan.to_dicts())
    chaos.trace_path = _maybe_export(testbed, scenario, chaos,
                                     trace_dir)
    return chaos


def _maybe_export(testbed: Any, scenario: str, chaos: ChaosOutcome,
                  trace_dir: Optional[str] = None) -> Optional[str]:
    """Export the run's trace when a trace directory is set."""
    directory = trace_dir or os.environ.get(TRACE_DIR_ENV_VAR)
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "trace_chaos_%s.jsonl" % scenario)
    testbed.export_trace(path, meta={
        "tenant": "A",
        "scenario": scenario,
        "chaos_outcome": chaos.outcome,
        "plan": chaos.plan,
    })
    return path


def run_all(profile: Optional[Profile] = None,
            scenarios: Optional[List[str]] = None,
            trace_dir: Optional[str] = None) -> List[ChaosOutcome]:
    """Run several scenarios (each on a fresh testbed)."""
    profile = profile or get_profile()
    return [run_chaos(name, profile, trace_dir=trace_dir)
            for name in (scenarios or sorted(SCENARIOS))]


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None) -> Report:
    """Uniform entry point: every chaos scenario, outcome table."""
    profile = seeded(profile or get_profile(), seed)
    outcomes = run_all(profile, trace_dir=trace_dir)
    artifacts = [o.trace_path for o in outcomes
                 if o.trace_path is not None]
    return Report(experiment="chaos", profile=profile.name,
                  seed=profile.seed, text=report(outcomes, profile),
                  data=outcomes, artifacts=artifacts)


def report(outcomes: List[ChaosOutcome], profile: Profile) -> str:
    """Chaos results as a table."""
    rows = []
    for chaos in outcomes:
        migration_time = (chaos.report.migration_time
                          if chaos.report is not None else float("nan"))
        rows.append([chaos.scenario, chaos.outcome, chaos.route,
                     chaos.faults_injected, chaos.retries,
                     chaos.standby_dropped, chaos.failovers,
                     {True: "yes", False: "NO", None: "-"}[chaos.consistent],
                     migration_time])
    return format_table(
        ["scenario", "outcome", "route", "faults", "retries",
         "standby drop", "failover", "consistent", "migration [s]"],
        rows,
        title="Chaos - migration under injected faults (profile=%s)"
              % profile.name)


def main() -> None:
    """Run every chaos scenario at the default profile."""
    profile = get_profile()
    outcomes = run_all(profile)
    print(report(outcomes, profile))


if __name__ == "__main__":
    main()
