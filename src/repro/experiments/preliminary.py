"""Figure 5: the preliminary experiment.

Mean response time of one tenant versus the number of EBs (100..1000,
ordering mix, no migration).  The 2-second rule bands the workloads:
light (<100 ms), medium (in between), heavy (>2 s).  The paper selected
100/400/700 EBs as its light/medium/heavy representatives.

Under a scaled profile the closed-loop identity ``RT = N/X - Z`` scales
response times by the EB scale, so the banding thresholds scale the same
way; the report prints both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..metrics.report import format_table
from .common import Report, TenantSetup, build_testbed, seeded
from .profiles import Profile, get_profile

#: Paper band thresholds (seconds, at paper scale).
LIGHT_THRESHOLD = 0.100
HEAVY_THRESHOLD = 2.000

#: Paper band assignment for each EB count (Figure 5's reading).
PAPER_BANDS = {
    100: "light", 200: "light", 300: "light",
    400: "medium", 500: "medium", 600: "medium",
    700: "heavy", 800: "heavy", 900: "heavy", 1000: "heavy",
}


@dataclass
class PreliminaryPoint:
    """One sweep point: EBs, mean response time, throughput, band."""

    paper_ebs: int
    actual_ebs: int
    mean_response_time: float
    throughput: float
    band: str


def classify(response_time: float, scale: float) -> str:
    """Band a response time using profile-aware thresholds.

    Below saturation the response-time curve is profile-invariant (the
    EB and think-time scales cancel, so utilisation — and therefore
    queueing delay — is unchanged), hence the light threshold stays at
    the paper's 100 ms.  Past saturation the closed-loop excess
    ``RT = N/X - Z`` shrinks with the think time, so the heavy
    threshold's excess over the light one scales with ``scale``.
    At ``scale=1`` this is exactly the paper's 100 ms / 2 s banding.
    """
    heavy = LIGHT_THRESHOLD + (HEAVY_THRESHOLD - LIGHT_THRESHOLD) * scale
    if response_time < LIGHT_THRESHOLD:
        return "light"
    if response_time < heavy:
        return "medium"
    return "heavy"


def run_preliminary(profile: Optional[Profile] = None,
                    eb_counts: Sequence[int] = (100, 200, 300, 400, 500,
                                                600, 700, 800, 900, 1000),
                    window: float = 80.0) -> List[PreliminaryPoint]:
    """Run the Figure-5 sweep and return one point per EB count."""
    profile = profile or get_profile()
    points: List[PreliminaryPoint] = []
    measure = max(4.0, window * profile.time_scale * 8)
    for paper_ebs in eb_counts:
        testbed = build_testbed(
            profile,
            [TenantSetup("A", "node0", paper_ebs=paper_ebs)],
            nodes=["node0"], verify_consistency=False)
        testbed.run(until=measure)
        metrics = testbed.metrics["A"]
        rt = metrics.mean_response_time(measure / 2, measure)
        tput = metrics.throughput(measure / 2, measure)
        points.append(PreliminaryPoint(
            paper_ebs=paper_ebs,
            actual_ebs=profile.ebs(paper_ebs),
            mean_response_time=rt,
            throughput=tput,
            band=classify(rt, profile.eb_scale)))
    return points


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None) -> Report:
    """Uniform entry point for the Figure-5 sweep.

    ``trace_dir`` is accepted for interface uniformity; the sweep runs
    no migration, so it exports no trace.
    """
    del trace_dir
    profile = seeded(profile or get_profile(), seed)
    points = run_preliminary(profile)
    return Report(experiment="preliminary", profile=profile.name,
                  seed=profile.seed, text=report(points, profile),
                  data=points)


def report(points: List[PreliminaryPoint], profile: Profile) -> str:
    """Figure 5 as a table, with the paper's banding for comparison."""
    rows = []
    for point in points:
        rows.append([point.paper_ebs, point.actual_ebs,
                     point.mean_response_time * 1000.0,
                     point.throughput, point.band,
                     PAPER_BANDS.get(point.paper_ebs, "?")])
    table = format_table(
        ["EBs(paper)", "EBs(run)", "mean RT [ms]", "tput [/s]",
         "band", "paper band"],
        rows,
        title=("Figure 5 - preliminary: response time vs EBs "
               "(profile=%s, thresholds x%g)"
               % (profile.name, profile.eb_scale)))
    return table


def bands_match(points: List[PreliminaryPoint]) -> Dict[int, bool]:
    """Per-EB-count: does the measured band equal the paper's band?"""
    return {p.paper_ebs: p.band == PAPER_BANDS.get(p.paper_ebs)
            for p in points if p.paper_ebs in PAPER_BANDS}


def main() -> None:
    """Run at the default profile and print the table."""
    profile = get_profile()
    points = run_preliminary(profile)
    print(report(points, profile))


if __name__ == "__main__":
    main()
