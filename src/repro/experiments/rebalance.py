"""Continuous rebalancing of a large kv fleet under a shifting hotspot.

The control-plane counterpart of :mod:`examples/hotspot_rebalance`:
where the example asks the Section 4.5.2 cost model *which* migration
is better once, this experiment hands a 100-tenant fleet to the
:class:`~repro.control.Rebalancer` and lets it keep the cluster
balanced on its own while the load schedule moves the hotspot from
node to node — every phase, one node's tenants turn hot (short think
times) and everyone else goes cold.

Per phase the experiment measures the *offered-load imbalance
coefficient* (std/mean of per-node offered load, computed analytically
from the current placement and think times — deterministic, no racing
the sampler) right after the hotspot shifts and again at phase end.
The rebalancer passes when the coefficient strictly decreases in every
phase: it noticed the hotspot, drained it, and did not ping-pong
anything (a cooldown audit and a per-key lost-commit audit run too).

Everything lands in a deterministic ``BENCH_rebalance.json`` — same
seed, byte-identical artifact — gated by ``scripts/check_bench.py``
(imbalance must decrease; structural facts only, no absolute timings)
and a trace with ``rebalance.decide/submit/settle`` markers gated by
``scripts/check_trace.py``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..cluster.cluster import Cluster
from ..control import RebalanceOptions, Rebalancer, imbalance_coefficient
from ..core.middleware import Middleware, MiddlewareConfig, MigrationOptions
from ..core.policy import MADEUS
from ..engine.dump import TransferRates
from ..metrics.report import format_table
from ..obs.export import write_trace
from ..sim.core import Environment
from ..sim.rand import StreamFactory
from ..workload import simplekv
from ..workload.simplekv import KvWorkloadConfig, KvWorkloadResult
from .common import TRACE_DIR_ENV_VAR, Report, seeded
from .profiles import Profile, get_profile

#: Transfer rates for the fleet's moves: slow enough that migrations
#: are visible work, fast enough that a phase can drain a hotspot.
REBALANCE_RATES = TransferRates(dump_mb_s=4.0, restore_mb_s=2.0)

#: Fixed per-tenant footprint (MB): one move transfers ~6 sim seconds.
TENANT_MB = 8.0

#: Key-value workload shape: one client per tenant, few keys.
KV_KEYS = 4

#: Mean think time of a tenant inside/outside the hot group.
HOT_THINK = 0.5
COLD_THINK = 24.0

#: Simulated seconds per hotspot phase.
PHASE_SECONDS = 150.0


@dataclass
class RebalanceOutcome:
    """Everything one rebalance run measured, JSON-serialisable."""

    seed: int
    profile: str
    tenants: List[str]
    nodes: List[str]
    phases: List[Dict[str, Any]] = field(default_factory=list)
    moves: List[Dict[str, Any]] = field(default_factory=list)
    samples: int = 0
    decisions: int = 0
    moves_ok: int = 0
    moves_failed: int = 0
    mean_cost_error: float = 0.0
    committed_txns: int = 0
    aborted_txns: int = 0
    lost_commits: int = 0
    value_mismatches: int = 0
    owner_violations: List[str] = field(default_factory=list)
    #: Tenants decided twice within one cooldown window (must stay 0).
    cooldown_violations: int = 0
    report_path: Optional[str] = None
    trace_path: Optional[str] = None

    @property
    def moves_submitted(self) -> int:
        """Moves the control plane handed to the scheduler."""
        return len(self.moves)

    @property
    def converged(self) -> bool:
        """Did the imbalance strictly decrease in every phase?"""
        return bool(self.phases) and all(
            phase["imbalance_after"] < phase["imbalance_before"]
            for phase in self.phases)

    @property
    def ok(self) -> bool:
        """Every structural invariant held for the whole run."""
        return (self.converged
                and self.moves_submitted > 0
                and self.lost_commits == 0
                and self.value_mismatches == 0
                and not self.owner_violations
                and self.cooldown_violations == 0)

    def to_dict(self) -> Dict[str, Any]:
        """The BENCH_rebalance.json record (schema: EXPERIMENTS.md)."""
        return {
            "bench": "rebalance",
            "profile": self.profile,
            "seed": self.seed,
            "tenants": len(self.tenants),
            "nodes": len(self.nodes),
            "cases": self.phases,
            "moves": self.moves,
            "summary": {
                "samples": self.samples,
                "decisions": self.decisions,
                "moves_submitted": self.moves_submitted,
                "moves_ok": self.moves_ok,
                "moves_failed": self.moves_failed,
                "mean_cost_error": round(self.mean_cost_error, 6),
                "committed_txns": self.committed_txns,
                "aborted_txns": self.aborted_txns,
                "lost_commits": self.lost_commits,
                "value_mismatches": self.value_mismatches,
                "owner_violations": self.owner_violations,
                "cooldown_violations": self.cooldown_violations,
                "converged": self.converged,
                "ok": self.ok,
            },
        }


def _kv_client(env: Environment, middleware: Middleware, tenant: str,
               rng: Any, config: KvWorkloadConfig,
               result: KvWorkloadResult,
               deadline: float) -> Generator[Any, Any, None]:
    """A deadline-bounded kv client reading its think time live.

    ``config.think_time`` is mutated by the phase schedule while the
    client runs — each loop iteration re-reads it, so a tenant turns
    hot or cold without restarting its client.
    """
    conn = middleware.connect(tenant)
    while env.now < deadline:
        yield env.timeout(rng.exponential(config.think_time))
        if env.now >= deadline:
            return
        if rng.random() < config.read_only_ratio:
            yield from simplekv._read_only_txn(middleware, conn, rng,
                                               config, result)
        else:
            yield from simplekv._update_txn(middleware, conn, rng,
                                            config, result)


def _run_until(env: Environment, condition: Any, step: float,
               cap: float) -> None:
    while not condition() and env.now < cap:
        env.run(until=env.now + step)


def run_rebalance(profile: Optional[Profile] = None, *,
                  seed: Optional[int] = None,
                  tenants: int = 100,
                  nodes: int = 8,
                  phases: int = 3,
                  phase_seconds: float = PHASE_SECONDS,
                  options: Optional[RebalanceOptions] = None,
                  trace_dir: Optional[str] = None,
                  bench_dir: Optional[str] = None) -> Report:
    """Run one shifting-hotspot rebalance; deterministic under ``seed``.

    Phase ``p`` makes hot the tenants of placement group ``p % nodes``
    (the tenants that started on that node), so every phase begins with
    one overloaded node and the :class:`~repro.control.Rebalancer` must
    notice, plan, and drain it autonomously.  Returns the uniform
    experiment :class:`Report` whose ``data`` is a
    :class:`RebalanceOutcome`.
    """
    if tenants < nodes or nodes < 3:
        raise ValueError("rebalance needs >= 3 nodes and at least one "
                         "tenant per node")
    if phases < 1:
        raise ValueError("phases must be >= 1")
    profile = seeded(profile or get_profile(), seed)
    root_seed = profile.seed
    node_names = ["node%d" % index for index in range(nodes)]
    tenant_names = ["T%03d" % index for index in range(tenants)]
    group_of = {name: index % nodes
                for index, name in enumerate(tenant_names)}

    env = Environment()
    cluster = Cluster(env)
    for name in node_names:
        cluster.add_node(name)
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=MADEUS, validate_lsir=False, verify_consistency=True,
        catchup_deadline=120.0, resumable=True))
    for name in node_names:
        cluster.node(name).instance.bind_obs(middleware.metrics,
                                             tracer=middleware.tracer)

    # -- tenants + load -------------------------------------------------
    streams = StreamFactory(root_seed)
    ready: Dict[str, bool] = {}

    def setup(tenant: str, home: str) -> Generator[Any, Any, None]:
        instance = cluster.node(home).instance
        yield from simplekv.setup_kv_tenant(instance, tenant, KV_KEYS)
        instance.tenant(tenant).fixed_overhead_mb = TENANT_MB
        middleware.register_tenant(tenant, home)
        ready[tenant] = True

    for tenant in tenant_names:
        env.process(setup(tenant, node_names[group_of[tenant]]),
                    name="rebalance.setup.%s" % tenant)
    _run_until(env, lambda: len(ready) == len(tenant_names), step=0.5,
               cap=120.0)
    if len(ready) != len(tenant_names):
        raise RuntimeError("tenant setup did not finish")

    horizon = env.now + phases * phase_seconds
    configs: Dict[str, KvWorkloadConfig] = {}
    workloads: Dict[str, KvWorkloadResult] = {}
    client_procs = []
    for tenant in tenant_names:
        config = KvWorkloadConfig(keys=KV_KEYS, clients=1,
                                  think_time=COLD_THINK,
                                  read_only_ratio=0.4)
        configs[tenant] = config
        result = KvWorkloadResult()
        workloads[tenant] = result
        rng = streams.stream("rebalance-kv-%s" % tenant)
        client_procs.append(env.process(
            _kv_client(env, middleware, tenant, rng, config, result,
                       horizon),
            name="rebalance.kv.%s" % tenant))

    # -- the control plane ----------------------------------------------
    rebalance_options = options or RebalanceOptions(
        sample_interval=1.0, window=3, decide_every=2,
        enter_ratio=1.5, exit_ratio=1.1, sustain=2,
        cooldown=min(25.0, phase_seconds / 3.0),
        max_concurrent_moves=2,
        migration=MigrationOptions(rates=REBALANCE_RATES, chunk_mb=4.0,
                                   resume=True))
    rebalancer = Rebalancer(middleware, rebalance_options,
                            nodes=node_names)
    rebalancer.start()

    def offered_loads() -> Dict[str, float]:
        """Per-node offered load (sum of tenants' 1/think_time)."""
        loads = {name: 0.0 for name in node_names}
        for tenant in tenant_names:
            loads[middleware.route(tenant)] += (
                1.0 / configs[tenant].think_time)
        return loads

    outcome = RebalanceOutcome(seed=root_seed, profile=profile.name,
                               tenants=tenant_names, nodes=node_names)

    # -- the shifting-hotspot schedule ----------------------------------
    for phase in range(phases):
        hot_group = phase % nodes
        hot_node = node_names[hot_group]
        for tenant in tenant_names:
            configs[tenant].think_time = (
                HOT_THINK if group_of[tenant] == hot_group
                else COLD_THINK)
        started = env.now
        imbalance_before = imbalance_coefficient(offered_loads())
        middleware.tracer.event(
            "rebalance.phase", phase=phase, hot_node=hot_node,
            imbalance=round(imbalance_before, 6))
        env.run(until=started + phase_seconds)
        imbalance_after = imbalance_coefficient(offered_loads())
        moves_in_phase = [move for move in rebalancer.report.moves
                          if started <= move.decided_at < env.now]
        outcome.phases.append({
            "phase": phase,
            "hot_node": hot_node,
            "started": round(started, 6),
            "ended": round(env.now, 6),
            "imbalance_before": round(imbalance_before, 6),
            "imbalance_after": round(imbalance_after, 6),
            "moves_submitted": len(moves_in_phase),
            "moves_ok": sum(1 for move in moves_in_phase
                            if move.outcome == "ok"),
        })

    # -- stop, quiesce, audit -------------------------------------------
    stop_proc = env.process(rebalancer.stop(), name="rebalance.stop")
    _run_until(env, lambda: stop_proc.triggered, step=5.0,
               cap=env.now + 600.0)
    _run_until(env, lambda: all(not proc.is_alive
                                for proc in client_procs),
               step=5.0, cap=env.now + 600.0)
    env.run(until=env.now + 5.0)
    control_report = rebalancer.report
    outcome.samples = control_report.samples
    outcome.decisions = control_report.decisions
    outcome.mean_cost_error = control_report.mean_cost_error

    last_decided: Dict[str, float] = {}
    cooldown = rebalancer.options.cooldown
    for move in control_report.moves:
        previous = last_decided.get(move.tenant)
        if (previous is not None
                and move.decided_at - previous < cooldown):
            outcome.cooldown_violations += 1
        last_decided[move.tenant] = move.decided_at
        if move.outcome == "ok":
            outcome.moves_ok += 1
        else:
            outcome.moves_failed += 1
        outcome.moves.append({
            "tenant": move.tenant,
            "source": move.source,
            "destination": move.destination,
            "decided_at": round(move.decided_at, 6),
            "outcome": move.outcome,
            "attempts": move.attempts,
            "predicted_cost": round(move.predicted_cost, 6),
            "observed_cost": (round(move.observed_cost, 6)
                              if move.observed_cost is not None
                              else None),
        })

    for tenant in tenant_names:
        owners = middleware.owners(tenant)
        if len(owners) != 1:
            outcome.owner_violations.append(
                "tenant %s has owners %r" % (tenant, owners))
        workload = workloads[tenant]
        outcome.committed_txns += workload.committed_txns
        outcome.aborted_txns += workload.aborted_txns
        owner = middleware.route(tenant)
        table = cluster.node(owner).instance.tenant(tenant).table("kv")
        for key, increments in sorted(
                workload.committed_increments.items()):
            got = table.chain(key).latest()["v"]
            if got != increments:
                outcome.value_mismatches += 1
                if got < increments:
                    outcome.lost_commits += increments - got

    middleware.tracer.event(
        "rebalance.summary", phases=len(outcome.phases),
        moves=outcome.moves_submitted, moves_ok=outcome.moves_ok,
        mean_cost_error=round(outcome.mean_cost_error, 6),
        lost_commits=outcome.lost_commits,
        cooldown_violations=outcome.cooldown_violations,
        converged=outcome.converged, ok=outcome.ok)

    # -- artifacts -------------------------------------------------------
    artifacts: List[str] = []
    directory = trace_dir or os.environ.get(TRACE_DIR_ENV_VAR)
    if directory:
        os.makedirs(directory, exist_ok=True)
        outcome.trace_path = os.path.join(directory,
                                          "trace_rebalance.jsonl")
        write_trace(outcome.trace_path, middleware.tracer,
                    middleware.metrics, {
                        "experiment": "rebalance",
                        "profile": profile.name,
                        "policy": middleware.config.policy.name,
                        "seed": root_seed,
                        "tenants": tenants,
                        "nodes": nodes,
                        "phases": phases,
                    })
        artifacts.append(outcome.trace_path)
    if bench_dir:
        os.makedirs(bench_dir, exist_ok=True)
        outcome.report_path = os.path.join(bench_dir,
                                           "BENCH_rebalance.json")
        with open(outcome.report_path, "w") as handle:
            json.dump(outcome.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        artifacts.append(outcome.report_path)
    return Report(experiment="rebalance", profile=profile.name,
                  seed=root_seed, text=report(outcome), data=outcome,
                  artifacts=artifacts)


def report(outcome: RebalanceOutcome) -> str:
    """The rebalance results as a table plus an invariant summary."""
    rows = []
    for phase in outcome.phases:
        rows.append([phase["phase"], phase["hot_node"],
                     "%.3f" % phase["imbalance_before"],
                     "%.3f" % phase["imbalance_after"],
                     phase["moves_submitted"], phase["moves_ok"]])
    table = format_table(
        ["phase", "hot node", "imbalance before", "after", "moves",
         "ok"],
        rows,
        title="Continuous rebalance - %d tenants / %d nodes (seed=%s)"
              % (len(outcome.tenants), len(outcome.nodes),
                 outcome.seed))
    lines = [table, ""]
    lines.append("control: %d samples, %d decisions, %d moves "
                 "(%d ok, %d failed), mean predicted-vs-observed "
                 "cost error %.1f%%"
                 % (outcome.samples, outcome.decisions,
                    outcome.moves_submitted, outcome.moves_ok,
                    outcome.moves_failed,
                    100.0 * outcome.mean_cost_error))
    lines.append("workload: %d committed txns, %d aborted"
                 % (outcome.committed_txns, outcome.aborted_txns))
    lines.append("invariants: %d lost commits, %d value mismatches, "
                 "%d owner violations, %d cooldown violations, "
                 "converged=%s -> %s"
                 % (outcome.lost_commits, outcome.value_mismatches,
                    len(outcome.owner_violations),
                    outcome.cooldown_violations, outcome.converged,
                    "OK" if outcome.ok else "FAIL"))
    return "\n".join(lines)


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None) -> Report:
    """Uniform entry point: the full fleet at the profile's seed."""
    return run_rebalance(profile, seed=seed, trace_dir=trace_dir)
