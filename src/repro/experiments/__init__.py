"""Experiment harness: one module per paper table/figure, plus profiles.

==================  =============================================
module              reproduces
==================  =============================================
``preliminary``     Figure 5 (response time vs EBs, 2-second rule)
``migration_time``  Figure 6 and Table 2
``performance``     Figures 7 and 8 (timelines during migration)
``dbsize``          Figure 9 and Table 3
``multitenant``     Figures 10-19 and the Section 5.6 answer
``costmodel``       Section 4.5.2 (Equations 2-4)
``chaos``           robustness: migration under injected faults
``soak``            robustness: failure-model chaos soak (days)
``bench``           perf harness: BENCH_*.json artifacts
==================  =============================================

Every module exposes a uniform ``run(profile, *, seed, trace_dir)``
entry point returning a :class:`~repro.experiments.common.Report`.
"""

from .common import Report, TenantSetup, Testbed, build_testbed
from .profiles import PAPER, PROFILES, QUICK, SMOKE, Profile, get_profile

__all__ = ["PAPER", "PROFILES", "QUICK", "SMOKE", "Profile", "Report",
           "TenantSetup", "Testbed", "build_testbed", "get_profile"]
