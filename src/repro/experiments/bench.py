"""``repro bench``: the performance harness behind ``BENCH_*.json``.

Not a paper figure — a regression harness for the middleware itself.
Four scenarios:

``pipeline``
    Migrates the same tenant once per snapshot strategy per database
    size — the serial dump -> ship -> restore path, the streamed
    (chunked, back-pressured) snapshot pipeline, and the watermark
    (virtual-cut) path — and reports the wall-clock improvements.  The
    largest size sits above the rate model's ``base_mb`` knee, where
    the serial restore pays the superlinear index-build term all at
    once while the pipeline pays it per chunk, so the serial-vs-
    pipelined comparison there is the headline number; the watermark
    rows additionally expose the catch-up window, which the watermark
    path bounds by chunk size instead of dump duration (gated by
    ``scripts/check_bench.py --require-watermark``).  ``watermark`` is
    an alias for this scenario.  Each strategy runs on its own freshly
    seeded testbed, so the serial and pipelined figures are bit-stable
    against pre-watermark artifacts.

``policies``
    One migration per propagation policy (Table 2) on the default
    streamed path, so policy-level regressions show up in the same
    artifact schema.

``multitenant_parallel``
    Four tenants of descending size evacuate node0 -> node1, once
    serialized (one migration at a time, the paper's Section 5.5
    shape) and once per :class:`~repro.core.scheduler.ScheduleOptions`
    policy under the :class:`~repro.core.scheduler.MigrationScheduler`
    — concurrent streams honestly split the shared link's bandwidth,
    and the win comes from overlapping the restore-side work across
    tenants.  The fifo-policy improvement over serialized is the
    headline number.

``simthroughput``
    Real wall-clock substrate rates (kernel events/sec, parses/sec,
    MVCC reads/sec, point selects/sec, and a whole migration's
    events/sec) — see :mod:`repro.experiments.simthroughput`.  CI's
    perf gate compares this artifact between a PR and its base commit
    on the same runner.

``router``
    Measures what clients actually feel instead of migration
    wall-clock: a kv workload runs through the crashable
    :class:`~repro.router.RouterFleet` while one tenant bounces
    node0 <-> node1 for 25 migrations per snapshot strategy, and every
    blocked request (parked BEGINs during the handover drain,
    stale-route bounces, reconnects) lands in the ``router.downtime``
    quantile histogram.  The artifact reports p50/p90/p99/max per
    strategy plus zero-loss safety counters; the headline gate is
    relative — watermark p99 below serial p99 (``check_bench.py
    --require-router``).

Each scenario writes one ``BENCH_<scenario>.json`` file (see
EXPERIMENTS.md for the schema).  Except for ``simthroughput`` (which
honestly measures the host clock), values are *simulated* seconds from
a seeded run, so the artifacts are exactly reproducible and safe to
gate in CI — ``scripts/check_bench.py`` checks structure and relative
ordering, never absolute timings.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cluster.cluster import Cluster
from ..core.middleware import (
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
    MigrationReport,
)
from ..core.policy import ALL_POLICIES, MADEUS, PropagationPolicy
from ..core.scheduler import ScheduleOptions
from ..core.watermark import SnapshotStrategy
from ..engine.dump import TransferRates, restore_duration
from ..metrics.report import format_table
from ..obs.export import write_trace
from ..router import RouterFleet
from ..sim.core import Environment
from ..sim.rand import StreamFactory
from ..workload import simplekv
from ..workload.simplekv import KvWorkloadConfig, KvWorkloadResult
from .common import Report, TenantSetup, Testbed, build_testbed, seeded
from .profiles import Profile, get_profile
from .simthroughput import (
    SimThroughputResult,
    render as render_simthroughput,
    run_scenario as run_simthroughput_scenario,
)

#: When set, ``run_benchmark`` writes its ``BENCH_*.json`` files here
#: (mirrors the ``REPRO_TRACE_DIR`` convention for traces).
BENCH_DIR_ENV_VAR = "REPRO_BENCH_DIR"

#: Default artifact directory (relative to the working directory).
DEFAULT_BENCH_DIR = os.path.join("benchmarks", "results", "bench")

#: The pipeline scenario's database sizes, as multiples of the rate
#: model's ``base_mb`` knee.  The sub-knee point shows the small-DB
#: behaviour; the 4x point is the headline (paper Figure 9 territory,
#: where the serial restore's index builds turn superlinear).
PIPELINE_SIZE_FACTORS = (0.5, 4.0)

#: Workload applied while the benchmark migrations run.
BENCH_PAPER_EBS = 100

#: The multitenant_parallel scenario: tenant sizes as multiples of the
#: rate model's ``base_mb``, in submission order.  Descending, so the
#: smallest-first policy visibly reorders the queue.
PARALLEL_SIZE_FACTORS = (1.0, 0.75, 0.5, 0.25)

#: Per-tenant workload for the parallel scenario — light, so four
#: concurrent catch-ups stay well inside the divergence deadline.
PARALLEL_PAPER_EBS = 25

#: Scheduler configurations benched: every admission policy unlimited,
#: plus one capped run so admission queueing shows up in the artifact.
PARALLEL_SCHEDULES = (("fifo", 0), ("round-robin", 0),
                      ("smallest-first", 0), ("smallest-first", 2))

#: The router scenario: migrations per strategy (the downtime
#: histogram accumulates over all of them) and testbed shape.
ROUTER_MIGRATIONS = 25
ROUTER_STRATEGIES = (SnapshotStrategy.SERIAL, SnapshotStrategy.PIPELINED,
                     SnapshotStrategy.WATERMARK)
ROUTER_SHARD_COUNT = 2
ROUTER_KEYS = 24
ROUTER_CLIENTS = 4
ROUTER_THINK_TIME = 0.2
ROUTER_TENANT_MB = 8.0
ROUTER_CHUNK_MB = 2.0
#: Idle gap between bounce migrations, simulated seconds.
ROUTER_GAP = 2.0
#: Deliberately modest rates so each migration (and its handover
#: drain) spans enough sim time for requests to land inside it.
ROUTER_RATES = TransferRates(dump_mb_s=5.0, restore_mb_s=2.0)

SCENARIOS = ("pipeline", "policies", "multitenant_parallel",
             "simthroughput", "router")

#: Alternate scenario spellings accepted by ``run_benchmark`` and the
#: CLI.  ``watermark`` names the same three-way run as ``pipeline``
#: (both write ``BENCH_pipeline.json``); asking for both runs it once.
SCENARIO_ALIASES = {"watermark": "pipeline"}

#: One-line summaries for ``repro bench --list-scenarios``.
SCENARIO_DESCRIPTIONS = {
    "pipeline": "serial vs pipelined vs watermark snapshot shipping "
                "across database sizes",
    "watermark": "alias for the three-way pipeline scenario",
    "policies": "migration time under each propagation policy at one "
                "fixed load",
    "multitenant_parallel": "N-tenant evacuation: serialized vs "
                            "scheduler-concurrent, per admission "
                            "policy",
    "simthroughput": "DES substrate throughput gate (events/s, sim "
                     "speedup)",
    "router": "per-request downtime histograms through the router "
              "tier, 25 migrations per snapshot strategy",
}


@dataclass
class BenchCase:
    """One migration's numbers (one row of a ``BENCH_*.json``)."""

    scenario: str
    policy: str
    size_mb: float
    pipelined: bool
    wall_clock: float
    phases: Dict[str, float]
    rounds: int
    group_commit: Dict[str, float]
    chunks: int
    ship_retries: int
    consistent: Optional[bool]
    #: multitenant_parallel only: which tenant this row migrated and
    #: under which mode ("serialized" or "concurrent:<policy>").
    tenant: Optional[str] = None
    mode: Optional[str] = None
    #: Snapshot strategy, set only on watermark rows — serial and
    #: pipelined rows keep the exact pre-watermark schema so those
    #: figures stay byte-identical across artifact versions.
    strategy: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "scenario": self.scenario,
            "policy": self.policy,
            "size_mb": self.size_mb,
            "pipelined": self.pipelined,
            "wall_clock": self.wall_clock,
            "phases": self.phases,
            "rounds": self.rounds,
            "group_commit": self.group_commit,
            "chunks": self.chunks,
            "ship_retries": self.ship_retries,
            "consistent": self.consistent,
        }
        if self.tenant is not None:
            record["tenant"] = self.tenant
        if self.mode is not None:
            record["mode"] = self.mode
        if self.strategy is not None:
            record["strategy"] = self.strategy
        return record


@dataclass
class BenchScenarioResult:
    """One scenario's cases plus the artifact it was written to."""

    scenario: str
    profile: str
    seed: int
    cases: List[BenchCase] = field(default_factory=list)
    #: Pipeline scenario: per-size serial-vs-pipelined comparisons.
    comparisons: List[Dict[str, float]] = field(default_factory=list)
    #: The largest size's relative improvement (pipeline scenario).
    headline_improvement: Optional[float] = None
    path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.scenario,
            "profile": self.profile,
            "seed": self.seed,
            "cases": [case.to_dict() for case in self.cases],
            "comparisons": self.comparisons,
            "headline_improvement": self.headline_improvement,
        }


def _case_from_report(scenario: str, report: MigrationReport,
                      size_mb: float) -> BenchCase:
    """Flatten one MigrationReport into the bench schema."""
    return BenchCase(
        scenario=scenario,
        policy=report.policy,
        size_mb=round(size_mb, 3),
        pipelined=report.pipelined,
        wall_clock=report.migration_time,
        phases={
            "dump": report.dump_time,
            "restore": report.restore_time,
            "catch-up": report.catchup_time,
            "handover": report.switch_time,
        },
        rounds=report.rounds,
        group_commit={
            "commits": report.slave_commit_count,
            "flushes": report.slave_flush_count,
            "mean_group_size": report.slave_mean_group_size,
        },
        chunks=report.chunks,
        ship_retries=report.ship_retries,
        consistent=report.consistent,
        # Only watermark rows carry the strategy key; serial and
        # pipelined rows keep the pre-watermark schema byte-identical.
        strategy=(report.strategy
                  if report.strategy == SnapshotStrategy.WATERMARK.value
                  else None))


def _run_migration(profile: Profile,
                   policy: PropagationPolicy = MADEUS,
                   size_mb: Optional[float] = None,
                   strategy: Optional[SnapshotStrategy] = None,
                   trace_dir: Optional[str] = None
                   ) -> Tuple[MigrationReport, float]:
    """One seeded migration; returns (report, tenant size in MB)."""
    testbed = build_testbed(
        profile,
        [TenantSetup("A", "node0", paper_ebs=BENCH_PAPER_EBS)],
        policy=policy, trace_dir=trace_dir)
    tenant = testbed.node("node0").instance.tenant("A")
    if size_mb is not None:
        # Rescale the size *model* (not the row count) so dump/restore
        # time what a database of size_mb would, while the identical
        # seeded row data keeps serial-vs-pipelined runs comparable.
        factor = size_mb / tenant.size_mb()
        tenant.fixed_overhead_mb *= factor
        tenant.size_multiplier *= factor
    actual_mb = tenant.size_mb()
    warmup = max(2.0, profile.duration(30.0))
    testbed.run(until=warmup)
    outcome = testbed.migrate_async(
        "A", "node1", options=MigrationOptions(strategy=strategy))
    transfer = (actual_mb / profile.rates.dump_mb_s
                + restore_duration(actual_mb, profile.rates))
    cap = (warmup + profile.catchup_deadline + profile.duration(60.0)
           + 3.0 * transfer)
    testbed.run_until(lambda: "done" in outcome, step=5.0, cap=cap)
    report = outcome.get("report")
    if report is None:
        raise RuntimeError(
            "bench migration did not complete (policy=%s, size=%.0f MB, "
            "strategy=%s): %s" % (policy.name, actual_mb, strategy,
                                  outcome.get("timeout")))
    return report, actual_mb


def run_pipeline_scenario(profile: Profile,
                          size_factors: Sequence[float]
                          = PIPELINE_SIZE_FACTORS,
                          trace_dir: Optional[str] = None
                          ) -> BenchScenarioResult:
    """Serial vs pipelined vs watermark shipping across database sizes.

    Every strategy runs on its own freshly seeded testbed, so adding
    the watermark leg leaves the serial and pipelined runs — and hence
    the paper-figure fields of each comparison — byte-identical to the
    pre-watermark artifact.
    """
    result = BenchScenarioResult(scenario="pipeline",
                                 profile=profile.name,
                                 seed=profile.seed)
    for factor in size_factors:
        size_mb = profile.rates.base_mb * factor
        serial, actual_mb = _run_migration(
            profile, size_mb=size_mb, strategy=SnapshotStrategy.SERIAL,
            trace_dir=trace_dir)
        piped, _ = _run_migration(
            profile, size_mb=size_mb,
            strategy=SnapshotStrategy.PIPELINED, trace_dir=trace_dir)
        watermark, _ = _run_migration(
            profile, size_mb=size_mb,
            strategy=SnapshotStrategy.WATERMARK, trace_dir=trace_dir)
        result.cases.append(
            _case_from_report("pipeline", serial, actual_mb))
        result.cases.append(
            _case_from_report("pipeline", piped, actual_mb))
        result.cases.append(
            _case_from_report("pipeline", watermark, actual_mb))
        improvement = ((serial.migration_time - piped.migration_time)
                       / serial.migration_time)
        result.comparisons.append({
            "size_mb": round(actual_mb, 3),
            "serial_wall_clock": serial.migration_time,
            "pipelined_wall_clock": piped.migration_time,
            "improvement": improvement,
            "watermark_wall_clock": watermark.migration_time,
            "watermark_improvement":
                ((serial.migration_time - watermark.migration_time)
                 / serial.migration_time),
            # The watermark headline: its catch-up window is bounded
            # by chunk size, the pipelined one by dump duration.
            "pipelined_catchup": piped.catchup_time,
            "watermark_catchup": watermark.catchup_time,
        })
        result.headline_improvement = improvement
    return result


def run_policies_scenario(profile: Profile,
                          policies: Sequence[PropagationPolicy]
                          = ALL_POLICIES,
                          trace_dir: Optional[str] = None
                          ) -> BenchScenarioResult:
    """One default-path migration per propagation policy."""
    result = BenchScenarioResult(scenario="policies",
                                 profile=profile.name,
                                 seed=profile.seed)
    for policy in policies:
        report, actual_mb = _run_migration(profile, policy=policy,
                                           trace_dir=trace_dir)
        result.cases.append(
            _case_from_report("policies", report, actual_mb))
    return result


def _build_parallel_testbed(profile: Profile,
                            trace_dir: Optional[str]
                            ) -> Tuple[Testbed, List[str]]:
    """Four tenants of descending size on node0, ready to evacuate."""
    setups = [TenantSetup("T%d" % (index + 1), "node0",
                          paper_ebs=PARALLEL_PAPER_EBS)
              for index in range(len(PARALLEL_SIZE_FACTORS))]
    testbed = build_testbed(profile, setups, trace_dir=trace_dir)
    for setup, factor in zip(setups, PARALLEL_SIZE_FACTORS):
        tenant = testbed.node("node0").instance.tenant(setup.name)
        # Same size-model rescale as _run_migration: identical seeded
        # rows across modes, only the rate model sees the target size.
        scale = (profile.rates.base_mb * factor) / tenant.size_mb()
        tenant.fixed_overhead_mb *= scale
        tenant.size_multiplier *= scale
    return testbed, [setup.name for setup in setups]


def _parallel_run_cap(profile: Profile, warmup: float) -> float:
    """Generous sim-time budget for one evacuation run."""
    total_mb = profile.rates.base_mb * sum(PARALLEL_SIZE_FACTORS)
    transfer = (total_mb / profile.rates.dump_mb_s
                + restore_duration(total_mb, profile.rates))
    return (warmup + profile.catchup_deadline + profile.duration(60.0)
            + 3.0 * transfer)


def run_multitenant_parallel_scenario(profile: Profile,
                                      trace_dir: Optional[str] = None
                                      ) -> BenchScenarioResult:
    """Serialized vs scheduler-concurrent evacuation of four tenants."""
    result = BenchScenarioResult(scenario="multitenant_parallel",
                                 profile=profile.name,
                                 seed=profile.seed)

    def finished_reports(mode: str,
                         reports: List[MigrationReport]) -> None:
        for report in reports:
            case = _case_from_report("multitenant_parallel", report,
                                     report.snapshot_size_mb)
            case.tenant = report.tenant
            case.mode = mode
            result.cases.append(case)

    # --- serialized baseline: one migration at a time ----------------
    testbed, names = _build_parallel_testbed(profile, trace_dir)
    warmup = max(2.0, profile.duration(30.0))
    cap = _parallel_run_cap(profile, warmup)
    testbed.run(until=warmup)
    serial_start = testbed.env.now
    reports: List[MigrationReport] = []
    for name in names:
        outcome = testbed.migrate_async(name, "node1")
        testbed.run_until(lambda: "done" in outcome, step=5.0, cap=cap)
        report = outcome.get("report")
        if report is None:
            raise RuntimeError(
                "serialized evacuation stalled on tenant %s: %s"
                % (name, outcome.get("timeout")))
        reports.append(report)
    serial_wall = testbed.env.now - serial_start
    finished_reports("serialized", reports)

    # --- concurrent: the scheduler, per admission configuration ------
    for policy, max_concurrent in PARALLEL_SCHEDULES:
        testbed, names = _build_parallel_testbed(profile, trace_dir)
        testbed.run(until=warmup)
        outcome = testbed.schedule_async(
            [(name, "node1") for name in names],
            ScheduleOptions(policy=policy,
                            max_concurrent=max_concurrent))
        testbed.run_until(lambda: "done" in outcome, step=5.0, cap=cap)
        schedule = outcome.get("report")
        if schedule is None or schedule.ok_count != len(names):
            raise RuntimeError(
                "concurrent evacuation (%s) did not finish cleanly: %r"
                % (policy, schedule and [(job.tenant, job.outcome,
                                          job.error)
                                         for job in schedule.jobs]))
        mode = "concurrent:%s" % policy
        if max_concurrent:
            mode += ":cap%d" % max_concurrent
        finished_reports(mode, [job.report for job in schedule.jobs])
        improvement = (serial_wall - schedule.wall_clock) / serial_wall
        result.comparisons.append({
            "policy": policy,
            "max_concurrent": max_concurrent,
            "serialized_wall_clock": serial_wall,
            "concurrent_wall_clock": schedule.wall_clock,
            "improvement": improvement,
            "max_in_flight": schedule.max_in_flight,
            "total_queue_wait": schedule.total_queue_wait,
        })
        if policy == "fifo" and not max_concurrent:
            result.headline_improvement = improvement
    return result


@dataclass
class RouterBenchResult:
    """The router scenario's per-strategy downtime distributions."""

    scenario: str
    profile: str
    seed: int
    migrations: int
    #: One record per strategy: downtime percentiles plus the safety
    #: counters (``lost_requests`` must be 0 on every row).
    strategies: List[Dict[str, Any]] = field(default_factory=list)
    comparisons: List[Dict[str, Any]] = field(default_factory=list)
    path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.scenario,
            "profile": self.profile,
            "seed": self.seed,
            "migrations_per_strategy": self.migrations,
            "strategies": self.strategies,
            "comparisons": self.comparisons,
        }


def _run_router_strategy(profile: Profile, strategy: SnapshotStrategy,
                         migrations: int,
                         trace_dir: Optional[str]) -> Dict[str, Any]:
    """One strategy's leg: bounce a tenant ``migrations`` times under
    kv load through the router tier, collect the downtime histogram."""
    env = Environment()
    cluster = Cluster(env)
    for name in ("node0", "node1"):
        cluster.add_node(name)
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=MADEUS, verify_consistency=True, drop_source_copy=True))
    fleet = RouterFleet(env, middleware, shards=ROUTER_SHARD_COUNT,
                        seed=profile.seed)
    ready: Dict[str, bool] = {}

    def setup(env: Environment) -> Any:
        instance = cluster.node("node0").instance
        yield from simplekv.setup_kv_tenant(instance, "A", ROUTER_KEYS)
        instance.tenant("A").fixed_overhead_mb = ROUTER_TENANT_MB
        middleware.register_tenant("A", "node0")
        ready["ok"] = True

    env.process(setup(env), name="bench.router.setup")
    while "ok" not in ready:
        env.run(until=env.now + 0.1)

    stop = {"flag": False}
    workload = KvWorkloadResult()
    config = KvWorkloadConfig(keys=ROUTER_KEYS, clients=ROUTER_CLIENTS,
                              think_time=ROUTER_THINK_TIME)
    streams = StreamFactory(profile.seed)

    def client(env: Environment, rng: Any) -> Any:
        # Deadline-free load: clients issue transactions through the
        # fleet until the mover finishes, then quiesce cleanly (never
        # frozen mid-transaction, so the ack ledger stays exact).
        conn = fleet.connect("A")
        while not stop["flag"]:
            yield env.timeout(rng.exponential(config.think_time))
            if stop["flag"]:
                return
            if rng.random() < config.read_only_ratio:
                yield from simplekv._read_only_txn(fleet, conn, rng,
                                                   config, workload)
            else:
                yield from simplekv._update_txn(fleet, conn, rng,
                                                config, workload)

    clients = [
        env.process(client(env, streams.stream("bench-router-%d" % i)),
                    name="bench.router.kv.%d" % i)
        for i in range(ROUTER_CLIENTS)]
    counts = {"ok": 0, "failed": 0}

    def mover(env: Environment) -> Any:
        destination = "node1"
        for _index in range(migrations):
            report = yield from middleware.migrate(
                "A", destination,
                MigrationOptions(rates=ROUTER_RATES,
                                 chunk_mb=ROUTER_CHUNK_MB,
                                 strategy=strategy))
            counts["ok" if report.outcome == "ok" else "failed"] += 1
            destination = ("node0" if destination == "node1"
                           else "node1")
            yield env.timeout(ROUTER_GAP)
        stop["flag"] = True

    env.process(mover(env), name="bench.router.mover")
    while not stop["flag"]:
        env.run(until=env.now + 10.0)
    while any(proc.is_alive for proc in clients):
        env.run(until=env.now + 10.0)
    env.run(until=env.now + 1.0)

    # Safety ledger: every acknowledged increment must be on the final
    # owner; without router crashes there is no phantom allowance.
    owner = middleware.route("A")
    table = cluster.node(owner).instance.tenant("A").table("kv")
    lost = phantom = 0
    for key, increments in sorted(
            workload.committed_increments.items()):
        got = table.chain(key).latest()["v"]
        if got < increments:
            lost += increments - got
        elif got > increments:
            phantom += got - increments

    stats = fleet.stats()
    histogram = middleware.metrics.get("router.downtime")
    if histogram is not None and histogram.count:
        downtime = {
            "count": histogram.count,
            "mean": round(histogram.mean, 6),
            "p50": round(histogram.quantile(0.50), 6),
            "p90": round(histogram.quantile(0.90), 6),
            "p99": round(histogram.quantile(0.99), 6),
            "max": round(histogram.max or 0.0, 6),
        }
    else:
        downtime = {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0, "max": 0.0}
    record = {
        "strategy": strategy.value,
        "migrations_ok": counts["ok"],
        "migrations_failed": counts["failed"],
        "committed_txns": workload.committed_txns,
        "aborted_txns": workload.aborted_txns,
        "lost_requests": lost,
        "phantom_increments": phantom,
        "downtime": downtime,
        "requests": int(stats["requests"]),
        "blocked_requests": int(stats["blocked_requests"]),
        "stale_routes": int(stats["stale_routes"]),
        "park_rejects": int(stats["park_rejects"]),
        "park_timeouts": int(stats["park_timeouts"]),
        "acks_dropped": int(stats["acks_dropped"]),
    }
    middleware.tracer.event(
        "router.summary", lost_requests=lost,
        phantom_increments=phantom,
        phantom_bound=config.writes_per_txn
        * int(stats["acks_dropped"]), **stats)
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        path = os.path.join(trace_dir,
                            "trace_router_%s.jsonl" % strategy.value)
        write_trace(path, middleware.tracer, middleware.metrics, {
            "experiment": "bench-router",
            "profile": profile.name,
            "strategy": strategy.value,
            "seed": profile.seed,
        })
    return record


def run_router_scenario(profile: Profile,
                        migrations: int = ROUTER_MIGRATIONS,
                        trace_dir: Optional[str] = None
                        ) -> RouterBenchResult:
    """Per-request downtime per snapshot strategy, via the router tier.

    Each strategy runs on its own freshly seeded testbed (cluster,
    router fleet, workload streams), so the three histograms are
    independent seeded measurements of the same client experience —
    only the snapshot strategy differs.
    """
    result = RouterBenchResult(scenario="router", profile=profile.name,
                               seed=profile.seed,
                               migrations=migrations)
    for strategy in ROUTER_STRATEGIES:
        result.strategies.append(
            _run_router_strategy(profile, strategy, migrations,
                                 trace_dir))
    by_name = {record["strategy"]: record
               for record in result.strategies}
    serial_p99 = by_name["serial"]["downtime"]["p99"]
    for candidate in ("pipelined", "watermark"):
        p99 = by_name[candidate]["downtime"]["p99"]
        result.comparisons.append({
            "baseline": "serial",
            "candidate": candidate,
            "serial_p99": serial_p99,
            "candidate_p99": p99,
            "p99_improvement": (round((serial_p99 - p99) / serial_p99, 6)
                                if serial_p99 else 0.0),
        })
    return result


def _write_artifact(result: Any, bench_dir: str) -> str:
    os.makedirs(bench_dir, exist_ok=True)
    path = os.path.join(bench_dir, "BENCH_%s.json" % result.scenario)
    with open(path, "w") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_benchmark(profile: Optional[Profile] = None, *,
                  scenarios: Optional[Sequence[str]] = None,
                  seed: Optional[int] = None,
                  bench_dir: Optional[str] = None,
                  trace_dir: Optional[str] = None,
                  paper_smoke: bool = False
                  ) -> List[Any]:
    """Run the selected bench scenarios and write ``BENCH_*.json``.

    ``bench_dir`` falls back to ``$REPRO_BENCH_DIR``, then to
    ``benchmarks/results/bench``.  ``paper_smoke`` only affects the
    ``simthroughput`` scenario (it adds the timed paper-profile
    migration).
    """
    profile = seeded(profile or get_profile(), seed)
    directory = (bench_dir or os.environ.get(BENCH_DIR_ENV_VAR)
                 or DEFAULT_BENCH_DIR)
    results: List[Any] = []
    requested: List[str] = []
    for scenario in (scenarios or SCENARIOS):
        scenario = SCENARIO_ALIASES.get(scenario, scenario)
        if scenario not in requested:
            requested.append(scenario)
    for scenario in requested:
        if scenario == "pipeline":
            result = run_pipeline_scenario(profile, trace_dir=trace_dir)
        elif scenario == "policies":
            result = run_policies_scenario(profile, trace_dir=trace_dir)
        elif scenario == "multitenant_parallel":
            result = run_multitenant_parallel_scenario(
                profile, trace_dir=trace_dir)
        elif scenario == "simthroughput":
            result = run_simthroughput_scenario(profile,
                                                paper_smoke=paper_smoke)
        elif scenario == "router":
            result = run_router_scenario(profile, trace_dir=trace_dir)
        else:
            raise ValueError("unknown bench scenario %r (one of %s)"
                             % (scenario, ", ".join(SCENARIOS)))
        result.path = _write_artifact(result, directory)
        results.append(result)
    return results


def report(results: List[Any], profile: Profile) -> str:
    """The bench cases as a table, plus the headline comparisons."""
    rows = []
    throughput_lines: List[str] = []
    router_lines: List[str] = []
    for result in results:
        if isinstance(result, SimThroughputResult):
            throughput_lines.extend(render_simthroughput(result))
            if result.path is not None:
                throughput_lines.append("artifact: %s" % result.path)
            continue
        if isinstance(result, RouterBenchResult):
            router_rows = []
            for record in result.strategies:
                downtime = record["downtime"]
                router_rows.append([
                    record["strategy"], record["migrations_ok"],
                    downtime["count"],
                    "%.4f" % downtime["p50"],
                    "%.4f" % downtime["p90"],
                    "%.4f" % downtime["p99"],
                    "%.4f" % downtime["max"],
                    record["stale_routes"], record["lost_requests"]])
            router_lines.append(format_table(
                ["strategy", "migrations", "blocked", "p50 [s]",
                 "p90 [s]", "p99 [s]", "max [s]", "stale",
                 "lost"],
                router_rows,
                title="router tier: per-request downtime over %d "
                      "migrations/strategy (seed=%d)"
                      % (result.migrations, result.seed)))
            for comparison in result.comparisons:
                router_lines.append(
                    "downtime p99: serial %.4f s -> %s %.4f s "
                    "(%.0f%% lower)"
                    % (comparison["serial_p99"],
                       comparison["candidate"],
                       comparison["candidate_p99"],
                       100.0 * comparison["p99_improvement"]))
            if result.path is not None:
                router_lines.append("artifact: %s" % result.path)
            continue
        for case in result.cases:
            label = case.scenario
            if case.mode is not None:
                label = "%s %s" % (case.mode, case.tenant)
            path = (case.strategy if case.strategy is not None
                    else "piped" if case.pipelined else "serial")
            rows.append([label, case.policy, case.size_mb, path,
                         case.wall_clock, case.phases["dump"],
                         case.phases["restore"],
                         case.phases["catch-up"], case.chunks,
                         case.group_commit["mean_group_size"]])
    lines = []
    if rows:
        lines.append(format_table(
            ["scenario", "policy", "size [MB]", "path", "wall [s]",
             "dump [s]", "restore [s]", "catchup [s]", "chunks",
             "group size"],
            rows,
            title="repro bench (profile=%s, seed=%d)"
                  % (profile.name, profile.seed)))
    for result in results:
        if isinstance(result, (SimThroughputResult, RouterBenchResult)):
            continue
        for comparison in result.comparisons:
            if "size_mb" in comparison:
                lines.append(
                    "pipeline @ %.0f MB: serial %.1f s -> pipelined "
                    "%.1f s (%.0f%% faster)"
                    % (comparison["size_mb"],
                       comparison["serial_wall_clock"],
                       comparison["pipelined_wall_clock"],
                       100.0 * comparison["improvement"]))
                if "watermark_wall_clock" in comparison:
                    lines.append(
                        "watermark @ %.0f MB: wall %.1f s (%.0f%% "
                        "faster than serial), catch-up %.2f s vs "
                        "pipelined %.2f s"
                        % (comparison["size_mb"],
                           comparison["watermark_wall_clock"],
                           100.0 * comparison["watermark_improvement"],
                           comparison["watermark_catchup"],
                           comparison["pipelined_catchup"]))
            else:
                lines.append(
                    "evacuation (%s): serialized %.1f s -> concurrent "
                    "%.1f s (%.0f%% faster, %d in flight, queue wait "
                    "%.1f s)"
                    % (comparison["policy"],
                       comparison["serialized_wall_clock"],
                       comparison["concurrent_wall_clock"],
                       100.0 * comparison["improvement"],
                       comparison["max_in_flight"],
                       comparison["total_queue_wait"]))
        if result.path is not None:
            lines.append("artifact: %s" % result.path)
    lines.extend(router_lines)
    lines.extend(throughput_lines)
    return "\n".join(lines)


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None,
        bench_dir: Optional[str] = None,
        scenarios: Optional[Sequence[str]] = None,
        paper_smoke: bool = False) -> Report:
    """Uniform entry point: run the bench, return the rendered table."""
    profile = seeded(profile or get_profile(), seed)
    results = run_benchmark(profile, scenarios=scenarios,
                            bench_dir=bench_dir, trace_dir=trace_dir,
                            paper_smoke=paper_smoke)
    artifacts = [r.path for r in results if r.path is not None]
    return Report(experiment="bench", profile=profile.name,
                  seed=profile.seed, text=report(results, profile),
                  data=results, artifacts=artifacts)


def main() -> None:
    """Run every scenario at the default profile and print the table."""
    print(run().text)


if __name__ == "__main__":
    main()
