"""Section 4.5.2: the analytic cost model of the LSIR (Equations 2-4).

The paper derives:

* ``C_madeus = N_total (C_r + N_w C_w) + N' C'_c + (N_total - N') C_c``
* ``C_ALL    = N_total (N_r C_r + N_w C_w + C_c)``
* ``C_ALL - C_madeus = N_total (N_r - 1) C_r + N' (C_c - C'_c)``

with ``N_r >= 1``, ``N' >= 0``, ``C_c > C'_c``, so Madeus's cost never
exceeds C_ALL, and the gap grows with the workload (``N_total``, ``N'``).

This module implements the closed forms and cross-checks them against
*measured* counters from a real propagation run: the number of replayed
operations and WAL flushes on the slave must satisfy the same
inequalities the algebra predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .common import Report, seeded
from .profiles import Profile, get_profile


@dataclass(frozen=True)
class CostParameters:
    """Inputs of Equations 2-4."""

    #: Cost of one read / write / commit operation (seconds).
    read_cost: float
    write_cost: float
    commit_cost: float
    #: Cost of one *group* commit (must be < commit_cost per member;
    #: this is the cost of the whole grouped flush).
    group_commit_cost: float
    #: Reads / writes per transaction.
    reads_per_txn: float
    writes_per_txn: float
    #: Total transactions and group-commit operations.
    total_txns: int
    group_commits: int

    def validate(self) -> None:
        """Check the preconditions the derivation assumes."""
        if self.reads_per_txn < 1:
            raise ValueError("N_r must be >= 1 (no blind writes: the "
                             "first operation is a read)")
        if self.group_commits < 0:
            raise ValueError("N' must be >= 0")
        if self.group_commits > self.total_txns:
            raise ValueError("N' cannot exceed N_total")
        if self.group_commit_cost >= self.commit_cost:
            raise ValueError("C'_c must be < C_c (a group commit is "
                             "cheaper than an individual one)")


def cost_madeus(params: CostParameters) -> float:
    """Equation 2: total propagation cost under Madeus."""
    params.validate()
    return (params.total_txns * (params.read_cost
                                 + params.writes_per_txn
                                 * params.write_cost)
            + params.group_commits * params.group_commit_cost
            + (params.total_txns - params.group_commits)
            * params.commit_cost)


def cost_all(params: CostParameters) -> float:
    """Equation 3: total propagation cost with no LSIR rules."""
    params.validate()
    return params.total_txns * (params.reads_per_txn * params.read_cost
                                + params.writes_per_txn
                                * params.write_cost
                                + params.commit_cost)


def cost_gap(params: CostParameters) -> float:
    """Equation 4: C_ALL - C_madeus (always >= 0)."""
    return (params.total_txns * (params.reads_per_txn - 1)
            * params.read_cost
            + params.group_commits * (params.commit_cost
                                      - params.group_commit_cost))


def gap_identity_holds(params: CostParameters,
                       tolerance: float = 1e-9) -> bool:
    """Check Eq. 4 == Eq. 3 - Eq. 2 (the paper's algebra), exactly."""
    direct = cost_all(params) - cost_madeus(params)
    return abs(direct - cost_gap(params)) <= tolerance * max(
        1.0, abs(direct))


def gap_is_monotone_in_load(params: CostParameters,
                            factor: float = 2.0) -> bool:
    """Heavier workload (larger N_total and N') widens the gap."""
    heavier = CostParameters(
        read_cost=params.read_cost, write_cost=params.write_cost,
        commit_cost=params.commit_cost,
        group_commit_cost=params.group_commit_cost,
        reads_per_txn=params.reads_per_txn,
        writes_per_txn=params.writes_per_txn,
        total_txns=int(params.total_txns * factor),
        group_commits=int(params.group_commits * factor))
    return cost_gap(heavier) >= cost_gap(params)


def parameters_from_run(total_txns: int, reads_per_txn: float,
                        writes_per_txn: float, flush_count: int,
                        fsync_latency: float, read_cost: float = 0.003,
                        write_cost: float = 0.004) -> CostParameters:
    """Build cost parameters from measured propagation counters.

    ``flush_count`` is the slave's WAL flush count during replay; the
    grouped commits are those that shared a flush with another commit.
    """
    group_commits = max(0, total_txns - flush_count)
    return CostParameters(
        read_cost=read_cost, write_cost=write_cost,
        commit_cost=fsync_latency,
        group_commit_cost=fsync_latency * 0.2,
        reads_per_txn=max(1.0, reads_per_txn),
        writes_per_txn=writes_per_txn,
        total_txns=total_txns, group_commits=group_commits)


def run(profile: Optional[Profile] = None, *,
        seed: Optional[int] = None,
        trace_dir: Optional[str] = None) -> Report:
    """Uniform entry point for the analytic cost model.

    The model is closed-form (no simulation), so ``seed`` only stamps
    the report and ``trace_dir`` is accepted for uniformity.
    """
    del trace_dir
    profile = seeded(profile or get_profile(), seed)
    params = CostParameters(
        read_cost=0.003, write_cost=0.004, commit_cost=0.004,
        group_commit_cost=0.0008, reads_per_txn=2.2, writes_per_txn=2.4,
        total_txns=4400, group_commits=3000)
    lines = [
        "Section 4.5.2 cost model (heavy workload, 800 MB run):",
        "  C_madeus = %.1f s" % cost_madeus(params),
        "  C_ALL    = %.1f s" % cost_all(params),
        "  gap (Eq 4) = %.1f s" % cost_gap(params),
        "  identity holds: %s" % gap_identity_holds(params),
        "  monotone in load: %s" % gap_is_monotone_in_load(params),
    ]
    return Report(experiment="costmodel", profile=profile.name,
                  seed=profile.seed, text="\n".join(lines), data=params)


def main() -> None:
    """Print the model for a representative heavy-workload run."""
    print(run().text)


if __name__ == "__main__":
    main()
