"""Cluster substrate: nodes hosting DBMS instances on a simulated LAN."""

from .cluster import Cluster
from .node import Node, NodeSpec

__all__ = ["Cluster", "Node", "NodeSpec"]
