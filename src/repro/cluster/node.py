"""Cluster nodes: one DBMS instance per node, shared process model.

Figure 1 of the paper: each node runs a single DBMS instance hosting
multiple tenant databases; Madeus runs on its own node and routes customer
operations to the node that owns their tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..engine.checkpoint import CheckpointSpec
from ..engine.disk import DiskSpec
from ..engine.instance import DbmsInstance, EngineCosts, Observer

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment


@dataclass
class NodeSpec:
    """Hardware/software configuration of one node.

    Defaults mirror the paper's testbed: one 4-core Xeon E3-1220 and one
    SATA HDD per machine.
    """

    cpu_cores: int = 4
    disk: DiskSpec = field(default_factory=DiskSpec)
    costs: EngineCosts = field(default_factory=EngineCosts)
    group_commit: bool = True
    checkpoint: Optional[CheckpointSpec] = None


class Node:
    """A physical machine running one shared-process DBMS instance."""

    def __init__(self, env: "Environment", name: str,
                 spec: Optional[NodeSpec] = None,
                 observer: Optional[Observer] = None):
        self.env = env
        self.name = name
        self.spec = spec or NodeSpec()
        self.instance = DbmsInstance(
            env, name,
            cpu_cores=self.spec.cpu_cores,
            disk_spec=self.spec.disk,
            costs=self.spec.costs,
            group_commit=self.spec.group_commit,
            checkpoint_spec=self.spec.checkpoint,
            observer=observer,
        )

    def tenants(self) -> Dict[str, object]:
        """The tenant databases hosted on this node."""
        return dict(self.instance.tenants)

    def hosts(self, tenant_name: str) -> bool:
        """Whether this node hosts ``tenant_name``."""
        return self.instance.has_tenant(tenant_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Node %s tenants=%s>" % (self.name,
                                         sorted(self.instance.tenants))
