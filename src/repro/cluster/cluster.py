"""Cluster assembly: nodes + network + tenant placement."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..errors import RoutingError
from ..net.network import Network, NetworkSpec
from .node import Node, NodeSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.instance import Observer
    from ..sim.core import Environment


class Cluster:
    """A set of nodes on one LAN, with tenant lookup helpers."""

    def __init__(self, env: "Environment",
                 network_spec: Optional[NetworkSpec] = None):
        self.env = env
        self.network = Network(env, network_spec)
        self.nodes: Dict[str, Node] = {}

    def add_node(self, name: str, spec: Optional[NodeSpec] = None,
                 observer: Optional["Observer"] = None) -> Node:
        """Provision a new node."""
        if name in self.nodes:
            raise RoutingError("node %r already exists" % name)
        node = Node(self.env, name, spec, observer=observer)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        node = self.nodes.get(name)
        if node is None:
            raise RoutingError("unknown node %r" % name)
        return node

    def node_of_tenant(self, tenant_name: str) -> Node:
        """The node currently hosting ``tenant_name``."""
        hosts: List[Node] = [n for n in self.nodes.values()
                             if n.hosts(tenant_name)]
        if not hosts:
            raise RoutingError("no node hosts tenant %r" % tenant_name)
        if len(hosts) > 1:
            # During migration both master and slave copies exist; routing
            # must go through the middleware's router, not this helper.
            raise RoutingError("tenant %r is hosted on %d nodes; use the "
                               "middleware router during migration"
                               % (tenant_name, len(hosts)))
        return hosts[0]

    def tenant_placement(self) -> Dict[str, str]:
        """tenant name -> node name for all singly-hosted tenants."""
        placement: Dict[str, str] = {}
        for node in self.nodes.values():
            for tenant_name in node.instance.tenants:
                placement.setdefault(tenant_name, node.name)
        return placement
