"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro list
    python -m repro fig5
    python -m repro fig6 --profile smoke
    python -m repro fig9 --profile quick
    python -m repro multitenant
    python -m repro costmodel
    python -m repro all --profile smoke
    python -m repro trace benchmarks/results/traces/trace_001_*.jsonl
    python -m repro chaos --scenario standby-crash --profile smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .experiments import get_profile
from .experiments import (
    chaos,
    costmodel,
    dbsize,
    migration_time,
    multitenant,
    performance,
    preliminary,
)


def _run_fig5(profile) -> None:
    points = preliminary.run_preliminary(profile)
    print(preliminary.report(points, profile))


def _run_fig6(profile) -> None:
    print(migration_time.report_table2())
    print()
    results = migration_time.run_figure6(profile)
    print(migration_time.report(results, profile))


def _run_fig7_8(profile) -> None:
    result = performance.run_timeline(profile)
    print(performance.report_fig7(result, profile))
    print()
    print(performance.report_fig8(result, profile))


def _run_fig9(profile) -> None:
    print(dbsize.report_table3(profile))
    print()
    results = dbsize.run_figure9(profile)
    print(dbsize.report_fig9(results, profile))


def _run_multitenant(profile) -> None:
    case1 = multitenant.run_case("B", profile)
    print(multitenant.report_case(case1, profile, "Figures 10-13"))
    print()
    case2 = multitenant.run_case("C", profile)
    print(multitenant.report_case(case2, profile, "Figures 14-19"))
    print()
    answer, reasons = multitenant.which_migration_is_better(case1, case2)
    print("Section 5.6: migrate the %s tenant" % answer)
    for reason in reasons:
        print("  - %s" % reason)


def _run_costmodel(profile) -> None:
    del profile
    costmodel.main()


COMMANDS: Dict[str, Callable] = {
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7_8,
    "fig8": _run_fig7_8,
    "fig9": _run_fig9,
    "table2": lambda profile: print(migration_time.report_table2()),
    "table3": lambda profile: print(dbsize.report_table3(profile)),
    "multitenant": _run_multitenant,
    "costmodel": _run_costmodel,
}

DESCRIPTIONS: Dict[str, str] = {
    "fig5": "response time vs EBs (the 2-second-rule banding)",
    "fig6": "migration time of all four middlewares + Table 2",
    "fig7": "response-time timeline during migration",
    "fig8": "throughput timeline during migration",
    "fig9": "migration time vs database size + Table 3",
    "table2": "the middleware feature matrix",
    "table3": "database size vs TPC-W scale parameters",
    "multitenant": "the hot-spot cases (Figures 10-19, Section 5.6)",
    "costmodel": "the analytic LSIR cost model (Section 4.5.2)",
}


def chaos_main(argv=None) -> int:
    """Entry point for ``python -m repro chaos``.

    Runs one (or all) fault-injection scenarios from
    :mod:`repro.experiments.chaos` and prints the outcome table.  With
    ``$REPRO_TRACE_DIR`` set, each scenario exports its trace as
    ``trace_chaos_<scenario>.jsonl`` for offline gating with
    ``scripts/check_trace.py``.
    """
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Run a TPC-W live migration under a seeded fault "
                    "plan (crashes, outages, degradation, disk stalls).")
    parser.add_argument("--scenario", default="all",
                        choices=sorted(chaos.SCENARIOS) + ["all"],
                        help="fault plan to run (default: all)")
    parser.add_argument("--profile", default=None,
                        choices=["paper", "quick", "smoke"],
                        help="experiment scale (default: $REPRO_PROFILE "
                             "or 'quick')")
    args = parser.parse_args(argv)
    profile = get_profile(args.profile)
    names = (sorted(chaos.SCENARIOS) if args.scenario == "all"
             else [args.scenario])
    outcomes = chaos.run_all(profile, names)
    print(chaos.report(outcomes, profile))
    for outcome in outcomes:
        if outcome.trace_path is not None:
            print("trace: %s" % outcome.trace_path)
    return 0


def trace_main(argv=None) -> int:
    """Entry point for ``python -m repro trace``.

    Parses one or more ``trace.jsonl`` files (the artifact every
    instrumented migration emits; see ``repro.obs``) and renders the
    phase timeline, the migration-phase table, the propagation-round
    summary, and every exported metric.
    """
    from .obs import check_phase_order, read_trace
    from .obs.timeline import render_report

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Render a structured trace.jsonl: phase timeline, "
                    "span summary, and metrics.")
    parser.add_argument("trace", nargs="+",
                        help="path(s) to trace.jsonl files emitted by "
                             "an instrumented run (Testbed.export_trace "
                             "or $REPRO_TRACE_DIR)")
    parser.add_argument("--check-phases", action="store_true",
                        help="exit nonzero unless every migration's "
                             "phase spans are finished and ordered "
                             "dump -> restore -> catch-up -> handover")
    args = parser.parse_args(argv)
    status = 0
    for index, path in enumerate(args.trace):
        if index:
            print()
        try:
            data = read_trace(path)
        except OSError as exc:
            print("repro trace: cannot read %s: %s" % (path, exc),
                  file=sys.stderr)
            return 2
        except (KeyError, TypeError, ValueError) as exc:
            print("repro trace: %s is not a valid trace.jsonl (%s: %s)"
                  % (path, type(exc).__name__, exc), file=sys.stderr)
            return 2
        print(render_report(data, source=path))
        if args.check_phases:
            problems = check_phase_order(data.spans)
            for problem in problems:
                print("phase-order problem: %s" % problem)
            if problems:
                status = 1
            else:
                print("phase order: ok")
    return status


def main(argv=None) -> int:
    """Entry point for ``python -m repro``."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Madeus (SIGMOD 2015) reproduction: run any paper "
                    "experiment, or inspect a trace with "
                    "'repro trace FILE'.")
    parser.add_argument("command",
                        choices=sorted(COMMANDS) + ["list", "all"],
                        help="experiment to run ('list' to enumerate, "
                             "'all' for everything; see also the "
                             "'trace' and 'chaos' subcommands)")
    parser.add_argument("--profile", default=None,
                        choices=["paper", "quick", "smoke"],
                        help="experiment scale (default: $REPRO_PROFILE "
                             "or 'quick')")
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(COMMANDS):
            print("%-12s %s" % (name, DESCRIPTIONS[name]))
        print("%-12s %s" % ("trace",
                            "render a trace.jsonl (phase timeline, "
                            "spans, metrics)"))
        print("%-12s %s" % ("chaos",
                            "migration under injected faults (crash, "
                            "outage, degradation, stall)"))
        return 0
    profile = get_profile(args.profile)
    if args.command == "all":
        for name in ("table2", "table3", "fig5", "fig6", "fig7", "fig9",
                     "multitenant", "costmodel"):
            print("=" * 72)
            print("== %s: %s" % (name, DESCRIPTIONS[name]))
            print("=" * 72)
            COMMANDS[name](profile)
            print()
        return 0
    COMMANDS[args.command](profile)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
