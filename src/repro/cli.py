"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro list
    python -m repro fig5
    python -m repro fig6 --profile smoke
    python -m repro fig9 --profile quick --trace-dir traces/
    python -m repro multitenant
    python -m repro costmodel
    python -m repro all --profile smoke
    python -m repro trace benchmarks/results/traces/trace_001_*.jsonl
    python -m repro chaos --scenario standby-crash --profile smoke
    python -m repro bench --profile quick --bench-dir bench/
    python -m repro bench --list-scenarios
    python -m repro rebalance --profile quick --bench-dir bench/
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from .experiments import get_profile
from .experiments import (
    bench,
    chaos,
    costmodel,
    dbsize,
    migration_time,
    multitenant,
    performance,
    preliminary,
    rebalance,
    simthroughput,
    soak,
)


def _print_run(module_run: Callable) -> Callable:
    """Adapt a module's uniform ``run()`` to a printing command."""
    def command(profile, trace_dir: Optional[str] = None,
                seed: Optional[int] = None) -> None:
        print(module_run(profile, seed=seed, trace_dir=trace_dir).text)
    return command


def _print_table2(profile, trace_dir=None, seed=None) -> None:
    del profile, trace_dir, seed
    print(migration_time.report_table2())


def _print_table3(profile, trace_dir=None, seed=None) -> None:
    del trace_dir, seed
    print(dbsize.report_table3(profile))


COMMANDS: Dict[str, Callable] = {
    "fig5": _print_run(preliminary.run),
    "fig6": _print_run(migration_time.run),
    "fig7": _print_run(performance.run),
    "fig8": _print_run(performance.run),
    "fig9": _print_run(dbsize.run),
    "table2": _print_table2,
    "table3": _print_table3,
    "multitenant": _print_run(multitenant.run),
    "costmodel": _print_run(costmodel.run),
}

DESCRIPTIONS: Dict[str, str] = {
    "fig5": "response time vs EBs (the 2-second-rule banding)",
    "fig6": "migration time of all four middlewares + Table 2",
    "fig7": "response-time timeline during migration",
    "fig8": "throughput timeline during migration",
    "fig9": "migration time vs database size + Table 3",
    "table2": "the middleware feature matrix",
    "table3": "database size vs TPC-W scale parameters",
    "multitenant": "the hot-spot cases (Figures 10-19, Section 5.6) "
                   "plus the parallel light-tenant evacuation",
    "costmodel": "the analytic LSIR cost model (Section 4.5.2)",
}


def bench_main(argv=None) -> int:
    """Entry point for ``python -m repro bench``.

    Runs the performance harness from :mod:`repro.experiments.bench`
    and writes one ``BENCH_<scenario>.json`` per scenario (validated in
    CI by ``scripts/check_bench.py``).
    """
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark the migration middleware: serial vs "
                    "pipelined vs watermark snapshot shipping, a "
                    "per-policy sweep, and serialized vs "
                    "scheduler-concurrent multi-tenant migration. "
                    "Writes BENCH_<scenario>.json artifacts.")
    parser.add_argument("--scenario", default="all",
                        choices=sorted(bench.SCENARIOS)
                        + sorted(bench.SCENARIO_ALIASES) + ["all"],
                        help="bench scenario to run (default: all)")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list the bench scenarios with their "
                             "one-line descriptions and exit")
    parser.add_argument("--profile", default=None,
                        choices=["paper", "quick", "smoke"],
                        help="experiment scale (default: $REPRO_PROFILE "
                             "or 'quick')")
    parser.add_argument("--bench-dir", default=None,
                        help="directory for BENCH_*.json (default: "
                             "$REPRO_BENCH_DIR or benchmarks/results/"
                             "bench)")
    parser.add_argument("--trace-dir", default=None,
                        help="also export per-migration traces here "
                             "(default: $REPRO_TRACE_DIR, or none)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the profile's root random seed")
    parser.add_argument("--paper-smoke", action="store_true",
                        help="simthroughput only: additionally time one "
                             "paper-profile migration and fail unless it "
                             "finishes within the CI budget (%.0f s)"
                             % simthroughput.PAPER_SMOKE_BUDGET_S)
    args = parser.parse_args(argv)
    if args.list_scenarios:
        for name in sorted(bench.SCENARIOS
                           + tuple(bench.SCENARIO_ALIASES)):
            print("%-22s %s" % (name,
                                bench.SCENARIO_DESCRIPTIONS[name]))
        return 0
    profile = get_profile(args.profile)
    scenarios = None if args.scenario == "all" else [args.scenario]
    if args.paper_smoke and "simthroughput" not in (scenarios
                                                    or bench.SCENARIOS):
        parser.error("--paper-smoke requires the simthroughput scenario")
    result = bench.run(profile, seed=args.seed,
                       trace_dir=args.trace_dir,
                       bench_dir=args.bench_dir, scenarios=scenarios,
                       paper_smoke=args.paper_smoke)
    print(result.text)
    for scenario_result in result.data:
        ok = getattr(scenario_result, "paper_smoke_ok", True)
        if not ok:
            print("FAIL: paper-profile migration exceeded the "
                  "%.0f s CI budget" % simthroughput.PAPER_SMOKE_BUDGET_S)
            return 1
    return 0


def chaos_main(argv=None) -> int:
    """Entry point for ``python -m repro chaos``.

    Runs one (or all) fault-injection scenarios from
    :mod:`repro.experiments.chaos` and prints the outcome table.  With
    ``$REPRO_TRACE_DIR`` set, each scenario exports its trace as
    ``trace_chaos_<scenario>.jsonl`` for offline gating with
    ``scripts/check_trace.py``.

    With ``--soak`` it instead runs the long-horizon chaos soak from
    :mod:`repro.experiments.soak`: a multi-tenant fleet migrating in
    waves for ``--hours`` simulated hours under a fault scenario drawn
    from a failure model, with restart-and-resume enabled.  The trace
    lands as ``trace_chaos_soak.jsonl`` and the deterministic JSON soak
    report in ``--soak-dir``.
    """
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Run a TPC-W live migration under a seeded fault "
                    "plan (crashes, outages, degradation, disk stalls), "
                    "or a long multi-tenant soak with --soak.")
    parser.add_argument("--scenario", default="all",
                        choices=sorted(chaos.SCENARIOS) + ["all"],
                        help="fault plan to run (default: all)")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list the fault scenarios with their "
                             "one-line descriptions and exit")
    parser.add_argument("--profile", default=None,
                        choices=["paper", "quick", "smoke"],
                        help="experiment scale (default: $REPRO_PROFILE "
                             "or 'quick')")
    parser.add_argument("--trace-dir", default=None,
                        help="export each scenario's trace here "
                             "(default: $REPRO_TRACE_DIR, or none)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the profile's root random seed")
    parser.add_argument("--soak", action="store_true",
                        help="run the failure-model chaos soak instead "
                             "of the single-migration scenarios")
    parser.add_argument("--hours", type=float, default=2.0,
                        help="soak horizon in simulated hours "
                             "(default: 2.0)")
    parser.add_argument("--tenants", type=int, default=3,
                        help="soak tenant count (default: 3)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="soak cluster size (default: 4)")
    parser.add_argument("--soak-dir", default=None,
                        help="write the deterministic SOAK_seed<N>.json "
                             "report here (soak only)")
    args = parser.parse_args(argv)
    if args.list_scenarios:
        for name in sorted(chaos.SCENARIOS):
            print("%-22s %s" % (name, chaos.DESCRIPTIONS[name]))
        return 0
    profile = get_profile(args.profile)
    if args.soak:
        result = soak.run_soak(profile, seed=args.seed,
                               hours=args.hours, tenants=args.tenants,
                               nodes=args.nodes,
                               trace_dir=args.trace_dir,
                               soak_dir=args.soak_dir)
        print(result.text)
        for path in result.artifacts:
            print("artifact: %s" % path)
        return 0 if result.data.ok else 1
    if args.seed is not None:
        from .experiments.common import seeded
        profile = seeded(profile, args.seed)
    names = (sorted(chaos.SCENARIOS) if args.scenario == "all"
             else [args.scenario])
    outcomes = chaos.run_all(profile, names, trace_dir=args.trace_dir)
    print(chaos.report(outcomes, profile))
    for outcome in outcomes:
        if outcome.trace_path is not None:
            print("trace: %s" % outcome.trace_path)
    return 0


def rebalance_main(argv=None) -> int:
    """Entry point for ``python -m repro rebalance``.

    Runs the continuous-rebalancer experiment from
    :mod:`repro.experiments.rebalance`: a 100-tenant kv fleet under a
    shifting-hotspot load schedule, kept balanced autonomously by the
    :class:`repro.control.Rebalancer`.  Writes the deterministic
    ``BENCH_rebalance.json`` (gated in CI by
    ``scripts/check_bench.py``) and, with a trace directory, the
    ``trace_rebalance.jsonl`` trace (gated by
    ``scripts/check_trace.py``).
    """
    parser = argparse.ArgumentParser(
        prog="repro rebalance",
        description="Continuous cluster rebalancing: a large kv fleet "
                    "under a shifting hotspot, balanced autonomously "
                    "by the cost-model-driven control plane.")
    parser.add_argument("--profile", default=None,
                        choices=["paper", "quick", "smoke"],
                        help="experiment scale (default: $REPRO_PROFILE "
                             "or 'quick')")
    parser.add_argument("--tenants", type=int, default=100,
                        help="fleet size (default: 100)")
    parser.add_argument("--nodes", type=int, default=8,
                        help="cluster size (default: 8)")
    parser.add_argument("--phases", type=int, default=3,
                        help="hotspot phases (default: 3)")
    parser.add_argument("--phase-seconds", type=float,
                        default=rebalance.PHASE_SECONDS,
                        help="simulated seconds per phase (default: "
                             "%.0f)" % rebalance.PHASE_SECONDS)
    parser.add_argument("--bench-dir", default=None,
                        help="write BENCH_rebalance.json here "
                             "(default: none)")
    parser.add_argument("--trace-dir", default=None,
                        help="export the run's trace here "
                             "(default: $REPRO_TRACE_DIR, or none)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the profile's root random seed")
    args = parser.parse_args(argv)
    profile = get_profile(args.profile)
    result = rebalance.run_rebalance(
        profile, seed=args.seed, tenants=args.tenants,
        nodes=args.nodes, phases=args.phases,
        phase_seconds=args.phase_seconds,
        trace_dir=args.trace_dir, bench_dir=args.bench_dir)
    print(result.text)
    for path in result.artifacts:
        print("artifact: %s" % path)
    return 0 if result.data.ok else 1


def trace_main(argv=None) -> int:
    """Entry point for ``python -m repro trace``.

    Parses one or more ``trace.jsonl`` files (the artifact every
    instrumented migration emits; see ``repro.obs``) and renders the
    phase timeline, the migration-phase table, the propagation-round
    summary, and every exported metric.
    """
    from .obs import check_phase_order, read_trace
    from .obs.timeline import render_report

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Render a structured trace.jsonl: phase timeline, "
                    "span summary, and metrics.")
    parser.add_argument("trace", nargs="+",
                        help="path(s) to trace.jsonl files emitted by "
                             "an instrumented run (Testbed.export_trace "
                             "or $REPRO_TRACE_DIR)")
    parser.add_argument("--check-phases", action="store_true",
                        help="exit nonzero unless every migration's "
                             "phase spans are finished and ordered "
                             "dump -> restore -> catch-up -> handover")
    args = parser.parse_args(argv)
    status = 0
    for index, path in enumerate(args.trace):
        if index:
            print()
        try:
            data = read_trace(path)
        except OSError as exc:
            print("repro trace: cannot read %s: %s" % (path, exc),
                  file=sys.stderr)
            return 2
        except (KeyError, TypeError, ValueError) as exc:
            print("repro trace: %s is not a valid trace.jsonl (%s: %s)"
                  % (path, type(exc).__name__, exc), file=sys.stderr)
            return 2
        print(render_report(data, source=path))
        if args.check_phases:
            problems = check_phase_order(data.spans)
            for problem in problems:
                print("phase-order problem: %s" % problem)
            if problems:
                status = 1
            else:
                print("phase order: ok")
    return status


def main(argv=None) -> int:
    """Entry point for ``python -m repro``."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "bench":
        return bench_main(argv[1:])
    if argv and argv[0] == "rebalance":
        return rebalance_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Madeus (SIGMOD 2015) reproduction: run any paper "
                    "experiment, or inspect a trace with "
                    "'repro trace FILE'.")
    parser.add_argument("command",
                        choices=sorted(COMMANDS) + ["list", "all"],
                        help="experiment to run ('list' to enumerate, "
                             "'all' for everything; see also the "
                             "'trace', 'chaos', 'bench', and "
                             "'rebalance' subcommands)")
    parser.add_argument("--profile", default=None,
                        choices=["paper", "quick", "smoke"],
                        help="experiment scale (default: $REPRO_PROFILE "
                             "or 'quick')")
    parser.add_argument("--trace-dir", default=None,
                        help="export per-migration traces here "
                             "(default: $REPRO_TRACE_DIR, or none)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the profile's root random seed")
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(COMMANDS):
            print("%-12s %s" % (name, DESCRIPTIONS[name]))
        print("%-12s %s" % ("trace",
                            "render a trace.jsonl (phase timeline, "
                            "spans, metrics)"))
        print("%-12s %s" % ("chaos",
                            "migration under injected faults (crash, "
                            "outage, degradation, stall); --soak runs "
                            "the failure-model soak"))
        print("%-12s %s" % ("bench",
                            "perf harness: serial vs pipelined vs "
                            "watermark snapshots, parallel "
                            "multi-tenant schedules, BENCH_*.json "
                            "artifacts"))
        print("%-12s %s" % ("rebalance",
                            "continuous control plane: 100-tenant "
                            "fleet under a shifting hotspot, balanced "
                            "autonomously by the cost-model planner"))
        return 0
    profile = get_profile(args.profile)
    if args.command == "all":
        for name in ("table2", "table3", "fig5", "fig6", "fig7", "fig9",
                     "multitenant", "costmodel"):
            print("=" * 72)
            print("== %s: %s" % (name, DESCRIPTIONS[name]))
            print("=" * 72)
            COMMANDS[name](profile, trace_dir=args.trace_dir,
                           seed=args.seed)
            print()
        return 0
    COMMANDS[args.command](profile, trace_dir=args.trace_dir,
                           seed=args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
