"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro list
    python -m repro fig5
    python -m repro fig6 --profile smoke
    python -m repro fig9 --profile quick
    python -m repro multitenant
    python -m repro costmodel
    python -m repro all --profile smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .experiments import get_profile
from .experiments import (costmodel, dbsize, migration_time, multitenant,
                          performance, preliminary)


def _run_fig5(profile) -> None:
    points = preliminary.run_preliminary(profile)
    print(preliminary.report(points, profile))


def _run_fig6(profile) -> None:
    print(migration_time.report_table2())
    print()
    results = migration_time.run_figure6(profile)
    print(migration_time.report(results, profile))


def _run_fig7_8(profile) -> None:
    result = performance.run_timeline(profile)
    print(performance.report_fig7(result, profile))
    print()
    print(performance.report_fig8(result, profile))


def _run_fig9(profile) -> None:
    print(dbsize.report_table3(profile))
    print()
    results = dbsize.run_figure9(profile)
    print(dbsize.report_fig9(results, profile))


def _run_multitenant(profile) -> None:
    case1 = multitenant.run_case("B", profile)
    print(multitenant.report_case(case1, profile, "Figures 10-13"))
    print()
    case2 = multitenant.run_case("C", profile)
    print(multitenant.report_case(case2, profile, "Figures 14-19"))
    print()
    answer, reasons = multitenant.which_migration_is_better(case1, case2)
    print("Section 5.6: migrate the %s tenant" % answer)
    for reason in reasons:
        print("  - %s" % reason)


def _run_costmodel(profile) -> None:
    del profile
    costmodel.main()


COMMANDS: Dict[str, Callable] = {
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7_8,
    "fig8": _run_fig7_8,
    "fig9": _run_fig9,
    "table2": lambda profile: print(migration_time.report_table2()),
    "table3": lambda profile: print(dbsize.report_table3(profile)),
    "multitenant": _run_multitenant,
    "costmodel": _run_costmodel,
}

DESCRIPTIONS: Dict[str, str] = {
    "fig5": "response time vs EBs (the 2-second-rule banding)",
    "fig6": "migration time of all four middlewares + Table 2",
    "fig7": "response-time timeline during migration",
    "fig8": "throughput timeline during migration",
    "fig9": "migration time vs database size + Table 3",
    "table2": "the middleware feature matrix",
    "table3": "database size vs TPC-W scale parameters",
    "multitenant": "the hot-spot cases (Figures 10-19, Section 5.6)",
    "costmodel": "the analytic LSIR cost model (Section 4.5.2)",
}


def main(argv=None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Madeus (SIGMOD 2015) reproduction: run any paper "
                    "experiment.")
    parser.add_argument("command",
                        choices=sorted(COMMANDS) + ["list", "all"],
                        help="experiment to run ('list' to enumerate, "
                             "'all' for everything)")
    parser.add_argument("--profile", default=None,
                        choices=["paper", "quick", "smoke"],
                        help="experiment scale (default: $REPRO_PROFILE "
                             "or 'quick')")
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(COMMANDS):
            print("%-12s %s" % (name, DESCRIPTIONS[name]))
        return 0
    profile = get_profile(args.profile)
    if args.command == "all":
        for name in ("table2", "table3", "fig5", "fig6", "fig7", "fig9",
                     "multitenant", "costmodel"):
            print("=" * 72)
            print("== %s: %s" % (name, DESCRIPTIONS[name]))
            print("=" * 72)
            COMMANDS[name](profile)
            print()
        return 0
    COMMANDS[args.command](profile)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
