"""Syncset propagation: the conductor and players (Algorithms 4 and 5).

Two propagation engines implement all four middlewares of Table 2:

* :class:`SerialReplayer` (B-ALL, B-MIN) replays linked SSBs one after
  another in master commit-completion order, one operation at a time.
* :class:`Conductor` (B-CON, Madeus) coordinates concurrent players in
  rounds keyed by the slave logical clock (SLC): all first reads sharing
  an STS propagate concurrently; writes stream FIFO per player; then the
  commits whose ETS falls before the next snapshot point propagate —
  concurrently under Madeus (CON-COM, enabling group commit on the
  slave), serially under B-CON with every player competing for the
  commit mutex.

Both engines report the same :class:`PropagationStats` and signal the
manager through ``caught_up`` events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Optional

from ..engine.session import Session
from ..engine.sqlmini import Begin, Commit
from ..errors import MigrationError, NetworkDown, NodeCrashed
from ..obs.trace import ROUND
from ..sim.events import Event
from ..sim.sync import CountdownLatch, Mutex
from .operations import Operation, OpKind
from .policy import PropagationPolicy
from .ssb import SyncsetBuffer, SyncsetList
from .theory import LsirValidator

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.instance import DbmsInstance
    from ..net.network import Network
    from ..obs.metrics import MetricsRegistry
    from ..obs.trace import Tracer
    from ..sim.core import Environment

_BEGIN = Begin()
_COMMIT = Commit()


@dataclass
class PropagationStats:
    """Counters shared by both propagation engines."""

    syncsets_replayed: int = 0
    operations_replayed: int = 0
    first_reads_replayed: int = 0
    writes_replayed: int = 0
    commits_replayed: int = 0
    rounds: int = 0
    max_concurrent_players: int = 0
    commit_mutex_waits: int = 0
    net_retries: int = 0


class _BasePropagator:
    """Shared plumbing: slave replay of single operations."""

    def __init__(self, env: "Environment", ssl: SyncsetList,
                 slave: "DbmsInstance", tenant_name: str,
                 network: "Network", policy: PropagationPolicy,
                 validator: Optional[LsirValidator] = None,
                 tracer: Optional["Tracer"] = None,
                 metrics: Optional["MetricsRegistry"] = None,
                 metrics_prefix: str = "propagation"):
        self.env = env
        self.ssl = ssl
        self.slave = slave
        self.tenant_name = tenant_name
        self.network = network
        self.policy = policy
        self.validator = validator
        self.tracer = tracer
        self.metrics = metrics
        self.metrics_prefix = metrics_prefix
        self.stats = PropagationStats()
        self._stop_requested = False
        self._link_signal: Optional[Event] = None
        self._open_signal: Optional[Event] = None
        self._caught_up_waiters: List[Event] = []
        self._drained_waiters: List[Event] = []
        self._failed_waiters: List[Event] = []
        #: Non-None once replay hit an unrecoverable fault (slave crash /
        #: link lost past the retry budget); holds the reason string.
        self.failed: Optional[str] = None
        self.process = None  # set by start()

    # ------------------------------------------------------------------
    # manager-facing API
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the propagation process."""
        self.process = self.env.process(self._run(),
                                        name="%s.propagator"
                                        % self.policy.name)

    def request_stop(self) -> None:
        """Ask the engine to exit once fully drained."""
        self._stop_requested = True
        self.notify_linked()

    def wait_caught_up(self) -> Event:
        """Event firing next time the backlog is momentarily empty."""
        event = Event(self.env)
        self._caught_up_waiters.append(event)
        # Nudge an idle engine so it re-evaluates its lag: an adopted
        # engine that drained while the migration was parked sits in
        # _wait_for_work(), and without a wake-up a waiter registered
        # by the resuming manager would only fire when fresh workload
        # happens to arrive.
        self.notify_linked()
        return event

    def wait_fully_drained(self) -> Event:
        """Event firing when backlog, in-flight, and open SSBs are gone."""
        event = Event(self.env)
        if self.failed is not None:
            # Nothing left to drain towards; release the waiter at once.
            event.succeed()
            return event
        self._drained_waiters.append(event)
        return event

    def wait_failed(self) -> Event:
        """Event firing when replay dies on a fault (see :attr:`failed`)."""
        event = Event(self.env)
        if self.failed is not None:
            event.succeed(self.failed)
            return event
        self._failed_waiters.append(event)
        return event

    # ------------------------------------------------------------------
    # worker-facing signals
    # ------------------------------------------------------------------
    def notify_linked(self) -> None:
        """Called by workers when an SSB is linked to the SSL."""
        if self._link_signal is not None and not self._link_signal.triggered:
            self._link_signal.succeed()

    def notify_open_changed(self) -> None:
        """Called by workers when an open SSB resolves (commit/abort)."""
        if self._open_signal is not None and not self._open_signal.triggered:
            self._open_signal.succeed()

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _publish_stats(self) -> None:
        """Mirror the cumulative stats into the metrics registry."""
        if self.metrics is not None:
            self.metrics.absorb(self.metrics_prefix, self.stats)

    def _fire_caught_up(self) -> None:
        self._publish_stats()
        waiters, self._caught_up_waiters = self._caught_up_waiters, []
        if waiters and self.tracer is not None:
            self.tracer.event("propagation.caught_up",
                              engine=self.policy.name,
                              backlog=self.ssl.pending_count())
        for event in waiters:
            event.succeed()

    def _fire_drained(self) -> None:
        self._publish_stats()
        waiters, self._drained_waiters = self._drained_waiters, []
        for event in waiters:
            event.succeed()

    def _fail(self, reason: str) -> None:
        """Mark replay dead and wake the manager; idempotent.

        Fires the failure *and* drain waiters (there will never be more
        progress to wait for) but never the caught-up waiters: a dead
        slave is not a caught-up slave.
        """
        if self.failed is not None:
            return
        self.failed = reason
        self._stop_requested = True
        if self.tracer is not None:
            self.tracer.event("propagation.failed",
                              engine=self.policy.name, reason=reason,
                              backlog=self.ssl.pending_count())
        self._on_fail()
        waiters, self._failed_waiters = self._failed_waiters, []
        for event in waiters:
            event.succeed(reason)
        self._fire_drained()

    def _on_fail(self) -> None:
        """Engine-specific cleanup hook run once on failure."""

    def _in_flight(self) -> int:
        raise NotImplementedError

    def _is_drained(self) -> bool:
        return (self.ssl.is_empty() and self._in_flight() == 0
                and self.ssl.open_count() == 0)

    def _wait_for_work(self) -> Generator:
        self._link_signal = Event(self.env)
        yield self._link_signal
        self._link_signal = None

    #: Resend budget for one operation across a transient link outage.
    NET_RETRY_LIMIT = 6
    NET_RETRY_BASE = 0.05
    NET_RETRY_CAP = 1.0

    def _replay_statement(self, session: Session,
                          operation: Operation) -> Generator:
        """Forward one operation to the slave and await its response.

        Transient :class:`NetworkDown` hops are resent with capped
        exponential backoff (replay is idempotent up to the statement:
        nothing reached the slave).  A crashed slave raises
        :class:`NodeCrashed` so the manager can discard or fail over.
        """
        attempt = 0
        while True:
            try:
                yield from self.network.round_trip()
                break
            except NetworkDown:
                attempt += 1
                if attempt > self.NET_RETRY_LIMIT:
                    raise
                self.stats.net_retries += 1
                yield self.env.timeout(
                    min(self.NET_RETRY_CAP,
                        self.NET_RETRY_BASE * (2 ** (attempt - 1))))
        result = yield from session.execute(operation.statement,
                                            cpu_cost=operation.cpu_cost)
        if not result.ok:
            if self.slave.crashed:
                raise NodeCrashed(self.slave.name,
                                  "crashed during syncset replay")
            raise MigrationError(
                "slave replay failed for %r: %s — the LSIR guarantees "
                "conflict-free replay, so this indicates a protocol bug"
                % (operation.sql, result.error))
        self.stats.operations_replayed += 1

    def _record(self, ssb: SyncsetBuffer, kind: str,
                write_index: int = -1) -> None:
        if self.validator is not None:
            ets = ssb.ets if ssb.ets is not None else -1
            self.validator.record(ssb.ssb_id, ssb.sts, ets, kind,
                                  self.env.now, write_index)

    def _run(self) -> Generator:  # pragma: no cover - abstract
        raise NotImplementedError
        yield


class SerialReplayer(_BasePropagator):
    """Serial propagation in master commit order (B-ALL and B-MIN).

    The SSL's linked order is commit-completion order on the master; the
    replayer drains it with a single slave session, one operation at a
    time — "each syncset is processed individually" as the paper puts it.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queue: List[SyncsetBuffer] = []
        self._busy = False

    def _in_flight(self) -> int:
        return (1 if self._busy else 0) + len(self._queue)

    def _run(self) -> Generator:
        session = Session(self.slave, self.tenant_name)
        while True:
            # Collect anything linked since the last look, preserving
            # master commit-completion order.
            self._queue.extend(self.ssl.take_all())
            self._queue.sort(key=lambda s: (s.linked_at or 0.0, s.ssb_id))
            if not self._queue:
                if self._stop_requested and self._is_drained():
                    self._fire_drained()
                    return
                self._fire_caught_up()
                yield from self._wait_for_work()
                continue
            ssb = self._queue.pop(0)
            self._busy = True
            try:
                yield from self._replay_serial(session, ssb)
            except (NodeCrashed, NetworkDown) as exc:
                session.reset()
                self._busy = False
                self._fail(str(exc))
                return
            self._busy = False

    def _replay_serial(self, session: Session,
                       ssb: SyncsetBuffer) -> Generator:
        self.stats.max_concurrent_players = max(
            self.stats.max_concurrent_players, 1)
        yield from self._replay_statement(
            session, Operation(OpKind.BEGIN, "BEGIN", _BEGIN))
        self.stats.operations_replayed -= 1  # BEGIN is bookkeeping
        write_index = 0
        for entry in ssb.entries:
            if entry.kind == OpKind.COMMIT:
                self._record(ssb, "commit")
                yield from self._replay_statement(
                    session, Operation(OpKind.COMMIT, "COMMIT", _COMMIT,
                                       entry.cpu_cost))
                self.stats.commits_replayed += 1
            elif entry.kind == OpKind.FIRST_READ:
                self._record(ssb, "first_read")
                yield from self._replay_statement(session, entry)
                self.stats.first_reads_replayed += 1
            elif entry.kind == OpKind.WRITE:
                self._record(ssb, "write", write_index)
                write_index += 1
                yield from self._replay_statement(session, entry)
                self.stats.writes_replayed += 1
            else:  # plain reads (B-ALL keeps them)
                yield from self._replay_statement(session, entry)
        if ssb.entries and ssb.entries[-1].kind != OpKind.COMMIT:
            # Read-only transaction replayed by B-ALL: close it.
            yield from self._replay_statement(
                session, Operation(OpKind.COMMIT, "COMMIT", _COMMIT))
            self.stats.operations_replayed -= 1
        ssb.propagated_at = self.env.now
        self.stats.syncsets_replayed += 1
        if self.stats.syncsets_replayed % 64 == 0:
            self._publish_stats()


class _PlayerHandle:
    """Conductor-side view of one player replaying one SSB."""

    __slots__ = ("ssb", "commit_order", "done")

    def __init__(self, env: "Environment", ssb: SyncsetBuffer):
        self.ssb = ssb
        self.commit_order = Event(env)
        self.done = Event(env)


class Conductor(_BasePropagator):
    """Round-based concurrent propagation (Algorithm 4).

    Each round: pick the smallest STS over linked *and open* SSBs; wait
    for open transactions at that snapshot point to resolve; propagate
    that STS group's first reads concurrently; then release the commits
    whose ETS precedes the next snapshot point — concurrently when the
    policy allows (Madeus), serially through the commit mutex otherwise
    (B-CON).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._awaiting: List[_PlayerHandle] = []
        self._active_players = 0
        self._commit_mutex = Mutex(
            self.env, name="commit-mutex",
            contention_penalty=self.policy.commit_mutex_penalty)

    def _in_flight(self) -> int:
        return self._active_players

    def _publish_players(self) -> None:
        """Track the live player count (and its high-water mark)."""
        if self.metrics is not None:
            self.metrics.gauge("%s.players"
                               % self.metrics_prefix).set(
                self._active_players)

    # ------------------------------------------------------------------
    #: The slave counts as "caught up" once the replay lag is this many
    #: syncsets or fewer.  Under heavy workload the pipe never hits a
    #: strictly empty instant (commits arrive every few milliseconds),
    #: so — like any practical migration controller — the manager moves
    #: to Step 4 at a small bounded lag and drains the remainder there.
    CATCHUP_THRESHOLD = 8

    def _on_fail(self) -> None:
        # Unpark players waiting for a commit order so their processes can
        # observe the dead slave and exit instead of hanging forever.
        parked, self._awaiting = self._awaiting, []
        for handle in parked:
            if not handle.commit_order.triggered:
                handle.commit_order.succeed()

    def _run(self) -> Generator:
        while True:
            if self.failed is not None:
                return
            # Lag = linked-but-unstarted syncsets plus players still
            # replaying writes.  Players parked awaiting a commit order
            # are NOT lag: the LSIR forbids releasing a commit while an
            # older-snapshot transaction is still running on the master
            # (rule 1-b), so that pool is the structural replication
            # window, ~master concurrency deep, and never drains under
            # load.  Step 4 suspends new transactions, the window
            # empties, and the strict drain below completes.
            in_writes = max(0, self._active_players - len(self._awaiting))
            if (self.ssl.pending_count() + in_writes
                    <= self.CATCHUP_THRESHOLD):
                self._fire_caught_up()
            smallest = self.ssl.smallest_sts()
            if smallest is None:
                if self._awaiting:
                    # No pending or open SSBs anywhere: every held-back
                    # commit may go out (any future first read will carry
                    # a strictly larger STS).
                    yield from self._release_commits(None)
                    continue
                if self._active_players == 0:
                    self._fire_caught_up()
                    if self._stop_requested and self._is_drained():
                        self._fire_drained()
                        return
                yield from self._wait_for_work()
                continue
            slc = smallest
            # Wait until no *running* transaction still has this snapshot
            # point: its syncset (if any) belongs in this round.
            while self.ssl.open_with_sts(slc) > 0:
                self._open_signal = Event(self.env)
                yield self._open_signal
                self._open_signal = None
            group = self.ssl.take_group(slc)
            if not group and not self._awaiting:
                continue
            self.stats.rounds += 1
            round_span = None
            if self.tracer is not None:
                round_span = self.tracer.start(
                    "round", kind=ROUND, slc=slc, group=len(group),
                    awaiting=len(self._awaiting))
            # Order the first operations of the whole STS group at once.
            latch = CountdownLatch(self.env, len(group))
            for ssb in group:
                handle = _PlayerHandle(self.env, ssb)
                self._awaiting.append(handle)
                self._active_players += 1
                self.stats.max_concurrent_players = max(
                    self.stats.max_concurrent_players, self._active_players)
                self.env.process(self._player(handle, latch),
                                 name="player.%d" % ssb.ssb_id)
            self._publish_players()
            yield latch.wait()
            # Next snapshot point bounds the commit batch (Equation 1):
            # commits with oldSLC <= ETS <= newSLC - 1 may go out now.
            next_sts = self.ssl.smallest_sts()
            upper = (next_sts - 1) if next_sts is not None else None
            yield from self._release_commits(upper)
            if round_span is not None:
                self.tracer.finish(round_span,
                                   players=self._active_players)
            self._publish_stats()

    def _release_commits(self, upper: Optional[int]) -> Generator:
        """Order the commits whose ETS is within the round's bound."""
        batch = [h for h in self._awaiting
                 if upper is None or (h.ssb.ets or 0) <= upper]
        if not batch:
            return
        selected = set(id(h) for h in batch)
        self._awaiting = [h for h in self._awaiting
                          if id(h) not in selected]
        batch.sort(key=lambda h: (h.ssb.ets or 0, h.ssb.ssb_id))
        if self.policy.concurrent_commits:
            for handle in batch:
                handle.commit_order.succeed()
            yield self.env.all_of([h.done for h in batch])
        else:
            # Serial commit propagation in master commit order; the
            # conductor waits for each commit before releasing the next
            # one (B-CON / Daudjee-Salem rule).
            for handle in batch:
                handle.commit_order.succeed()
                yield handle.done

    # ------------------------------------------------------------------
    def _player(self, handle: _PlayerHandle,
                latch: CountdownLatch) -> Generator:
        """Algorithm 5: first op, then writes FIFO, then ordered commit."""
        ssb = handle.ssb
        session = Session(self.slave, self.tenant_name)
        arrived = False
        holding_mutex = False
        try:
            yield from self._replay_statement(
                session, Operation(OpKind.BEGIN, "BEGIN", _BEGIN))
            self.stats.operations_replayed -= 1
            self._record(ssb, "first_read")
            yield from self._replay_statement(session, ssb.first_operation)
            self.stats.first_reads_replayed += 1
            arrived = True
            latch.arrive()
            for index, entry in enumerate(ssb.write_operations):
                self._record(ssb, "write", index)
                yield from self._replay_statement(session, entry)
                self.stats.writes_replayed += 1
            yield handle.commit_order
            if not self.policy.concurrent_commits:
                # Every player in the pool competes for the commit mutex at
                # every commit time (the B-CON overhead the paper calls
                # out); each hand-off costs a futex round per contender.
                self.stats.commit_mutex_waits += 1
                penalty = (self.policy.commit_mutex_penalty
                           * max(0, self.policy.player_pool - 1))
                if penalty > 0:
                    yield self.env.timeout(penalty)
                yield from self._commit_mutex.acquire()
                holding_mutex = True
            self._record(ssb, "commit")
            yield from self._replay_statement(
                session, Operation(OpKind.COMMIT, "COMMIT", _COMMIT,
                                   ssb.commit_operation.cpu_cost))
            self.stats.commits_replayed += 1
            if not self.policy.concurrent_commits:
                holding_mutex = False
                self._commit_mutex.release()
        except (NodeCrashed, NetworkDown) as exc:
            # The slave died (or the link to it did) under this player.
            # Unwind so the conductor and its siblings are not left
            # waiting on us, then flag the whole engine as failed.
            session.reset()
            if holding_mutex:
                self._commit_mutex.release()
            if not arrived:
                latch.arrive()
            try:
                self._awaiting.remove(handle)
            except ValueError:
                pass
            self._active_players -= 1
            self._publish_players()
            if not handle.done.triggered:
                handle.done.succeed()
            self._fail(str(exc))
            return
        ssb.propagated_at = self.env.now
        self.stats.syncsets_replayed += 1
        self._active_players -= 1
        self._publish_players()
        handle.done.succeed()


def make_propagator(env: "Environment", ssl: SyncsetList,
                    slave: "DbmsInstance", tenant_name: str,
                    network: "Network", policy: PropagationPolicy,
                    validator: Optional[LsirValidator] = None,
                    tracer: Optional["Tracer"] = None,
                    metrics: Optional["MetricsRegistry"] = None,
                    metrics_prefix: str = "propagation"
                    ) -> _BasePropagator:
    """Instantiate the propagation engine a policy calls for."""
    engine_cls = Conductor if policy.concurrent_first_writes \
        else SerialReplayer
    return engine_cls(env, ssl, slave, tenant_name, network, policy,
                      validator, tracer=tracer, metrics=metrics,
                      metrics_prefix=metrics_prefix)
