"""The worker critical region (Algorithm 1 lines 2-9 / 17-28).

The region's invariants are stated in the algorithm's comments: while a
first read is being executed "there is no commit operation executed", and
vice versa.  Two first reads may overlap (they only read the MLC), and two
commits may overlap (each atomically tags its ETS and increments the MLC),
which is what preserves group commit on the master.  We therefore model
the region as a *class-exclusion lock*: holders of the same class share
it, holders of different classes exclude each other — a read/write-lock
generalisation.  The manager's Step-1 snapshot (Algorithm 3 lines 1-5)
enters in the commit-excluding class so the MLC cannot change while the
MTS is captured.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, Optional, Tuple

from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment

#: Class identifier for snapshot-creating first reads (and the manager's
#: MTS capture, which must also exclude commits).
FIRST_READ_CLASS = "first_read"
#: Class identifier for commit operations.
COMMIT_CLASS = "commit"
#: Fully exclusive class (excludes everything, including itself).
EXCLUSIVE_CLASS = "exclusive"


class CriticalRegion:
    """Class-exclusion lock with FIFO fairness between classes.

    Waiters queue in arrival order; when the region drains, the longest
    waiting request and every immediately following request of the same
    class are admitted together (batch grant), so neither class starves.
    """

    def __init__(self, env: "Environment", name: str = "region"):
        self.env = env
        self.name = name
        self._active_class: Optional[str] = None
        self._active_count = 0
        self._waiters: Deque[Tuple[str, Event]] = deque()
        # statistics
        self.entries = 0
        self.contended_entries = 0
        self.total_wait = 0.0

    def enter(self, op_class: str) -> Generator[Event, None, None]:
        """Enter the region in ``op_class``; ``yield from`` this."""
        self.entries += 1
        compatible = (self._active_count == 0
                      or (self._active_class == op_class
                          and op_class != EXCLUSIVE_CLASS
                          and not self._waiters))
        if compatible:
            self._active_class = op_class
            self._active_count += 1
            return
        self.contended_entries += 1
        waiter = Event(self.env)
        enqueued = self.env.now
        self._waiters.append((op_class, waiter))
        yield waiter
        self.total_wait += self.env.now - enqueued

    def leave(self) -> None:
        """Leave the region; admits the next class batch if drained."""
        if self._active_count <= 0:
            raise RuntimeError("leave() on an empty critical region %r"
                               % self.name)
        self._active_count -= 1
        if self._active_count == 0:
            self._active_class = None
            self._admit_batch()

    def _admit_batch(self) -> None:
        if not self._waiters:
            return
        head_class, _head_event = self._waiters[0]
        if head_class == EXCLUSIVE_CLASS:
            _cls, event = self._waiters.popleft()
            self._active_class = EXCLUSIVE_CLASS
            self._active_count = 1
            event.succeed()
            return
        self._active_class = head_class
        while self._waiters and self._waiters[0][0] == head_class:
            _cls, event = self._waiters.popleft()
            self._active_count += 1
            event.succeed()

    @property
    def busy(self) -> bool:
        """Whether any holder is inside the region."""
        return self._active_count > 0
