"""The Madeus middleware: workers, router, and the migration manager.

This is the pure-middleware proxy of Figure 2.  Customers connect through
:meth:`Middleware.connect` and send statements through
:meth:`Middleware.submit`; a *worker* (Algorithm 1/2) executes inline on
the customer's connection, classifying each statement, forwarding it to
the tenant's master node, maintaining the master logical clock (MLC), and
building syncset buffers.  :meth:`Middleware.migrate` is the *manager*
(Algorithm 3), orchestrating the four migration steps with a conductor
and players (Algorithms 4/5) chosen by the propagation policy — Madeus or
any of the Table-2 baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..cluster.cluster import Cluster
from ..engine.dump import (
    SchemaSpec,
    SnapshotTruncated,
    TransferRates,
    create_from_schemas,
    dump,
    dump_stream,
    finalize_indexes,
    plan_chunks,
    restore,
    restore_duration,
    restore_stream,
    watermark_select,
)
from ..engine.session import Session, SessionResult
from ..engine.sqlmini import parse
from ..errors import (
    CatchUpTimeout,
    MigrationError,
    NetworkDown,
    NodeCrashed,
    RoutingError,
    SourceCrashed,
)
from ..obs.metrics import MetricsRegistry
from ..obs.trace import MIGRATION, Tracer
from ..sim.events import Event, Interrupt
from ..sim.sync import Channel, Gate
from .operations import Operation, OpKind, TxnTracker
from .pipeline import ChangeTap, ChunkFeed
from .policy import MADEUS, PropagationPolicy
from .propagation import make_propagator
from .watermark import ChangeStreamApplier, SnapshotStrategy
from .region import COMMIT_CLASS, FIRST_READ_CLASS, CriticalRegion
from .ssb import SyncsetBuffer, SyncsetList
from .theory import LsirValidator, states_equal

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment


@dataclass
class MiddlewareConfig:
    """Tunables of the middleware itself."""

    #: Propagation protocol (Madeus by default; see ``repro.core.policy``).
    policy: PropagationPolicy = MADEUS
    #: Record slave replay events for LSIR validation (tests; small runs).
    validate_lsir: bool = False
    #: Compare master/slave logical state at switch-over (Theorem 2).
    verify_consistency: bool = True
    #: Abort the migration if the slave has not caught up by this many
    #: simulated seconds after propagation starts (None = never).
    catchup_deadline: Optional[float] = None
    #: Drop the tenant from the source node after switch-over.
    drop_source_copy: bool = False
    #: Max resend attempts per node when the snapshot ship/restore hits a
    #: transient network outage (capped exponential backoff between them).
    ship_retry_limit: int = 5
    ship_retry_base: float = 0.1
    ship_retry_cap: float = 2.0
    #: Catch-up divergence watchdog (active only with a catchup_deadline):
    #: sample the backlog every ``divergence_interval`` seconds and abort
    #: early once it has grown strictly monotonically across
    #: ``divergence_window`` samples by at least ``divergence_min_growth``
    #: syncsets — a healthy catch-up never sustains that.
    divergence_interval: float = 5.0
    divergence_window: int = 6
    divergence_min_growth: int = 64
    #: Stream the snapshot (dump/ship/restore overlap) instead of the
    #: serial paper-faithful chain.  Per-migration override:
    #: :attr:`MigrationOptions.strategy`.
    pipeline_snapshot: bool = True
    #: Chunks the dump may run ahead of the slowest destination (also
    #: the per-destination in-flight channel capacity).
    pipeline_depth: int = 4
    #: Durable-write latency of the handover journal's ``ready`` record
    #: (the commit point of the two-step ownership switch).  The switch
    #: is only crash-atomic because this record hits stable storage
    #: before the routing entry flips, so the write costs real time.
    handover_journal_sync: float = 0.002
    #: Journal per-migration progress (frozen chunk plan, snapshot CSN,
    #: per-node installed chunks, catch-up low-water mark) so a source
    #: crash *suspends* the migration instead of aborting it, and
    #: :meth:`Middleware.resume_migration` can re-enter from the journal
    #: after the source recovers — without re-dumping what already
    #: landed.  Per-migration override: :attr:`MigrationOptions.resume`.
    resumable: bool = False


#: Retired :class:`MigrationOptions` field spellings and the unified
#: knob each maps to (shared with :class:`~repro.core.scheduler.
#: ScheduleOptions` and ``RebalanceOptions``).  Their one-release
#: DeprecationWarning shim cycle (README "Public API" policy) has
#: passed; constructing with any of them raises :class:`TypeError`.
_RETIRED_OPTION_FIELDS = (
    ("ship_retry_limit", "retry_limit"),
    ("ship_retry_base", "retry_base"),
    ("ship_retry_cap", "retry_cap"),
    ("resumable", "resume"),
)


@dataclass(frozen=True)
class MigrationOptions:
    """Per-migration knobs for :meth:`Middleware.migrate`.

    Every field defaults to ``None`` ("inherit"): :meth:`resolve` fills
    it from the :class:`MiddlewareConfig` (or the library default), so a
    bare ``MigrationOptions()`` reproduces the configured behaviour and
    callers override only what they mean to change.

    The retry/backoff/resume knobs share their names with
    :class:`~repro.core.scheduler.ScheduleOptions` and
    :class:`~repro.control.RebalanceOptions`: ``retry_limit`` /
    ``retry_base`` / ``retry_cap`` bound the capped-exponential retry
    loop at each layer (here: per-node snapshot ship/restore resends),
    ``resume`` opts into journalled restart-and-resume, and
    ``strategy`` picks the snapshot path
    (:class:`~repro.core.watermark.SnapshotStrategy`) uniformly at
    every layer.
    """

    #: Dump/restore throughput model (None -> library defaults).
    rates: Optional[TransferRates] = None
    #: Extra nodes fed the snapshot + syncset stream (Section 4.2).
    standbys: Optional[Sequence[str]] = None
    #: How the initial copy is produced — a
    #: :class:`~repro.core.watermark.SnapshotStrategy` (or its string
    #: value): ``SERIAL``, ``PIPELINED``, or ``WATERMARK``.  ``None``
    #: inherits :attr:`MiddlewareConfig.pipeline_snapshot`.
    strategy: Optional[SnapshotStrategy] = None
    #: Retired boolean spelling of :attr:`strategy`; its one-release
    #: DeprecationWarning shim cycle has passed, so any non-``None``
    #: value raises :class:`TypeError` naming ``SnapshotStrategy``.
    pipeline: Optional[bool] = None
    #: Bounded-buffer depth of the pipelined path (None -> config).
    pipeline_depth: Optional[int] = None
    #: Chunk size for the streamed dump (None -> ``rates.chunk_mb``).
    chunk_mb: Optional[float] = None
    #: Snapshot ship/restore retry policy: resend attempts per node and
    #: the capped exponential backoff between them (None -> config).
    retry_limit: Optional[int] = None
    retry_base: Optional[float] = None
    retry_cap: Optional[float] = None
    # divergence-watchdog thresholds (None -> config)
    divergence_interval: Optional[float] = None
    divergence_window: Optional[int] = None
    divergence_min_growth: Optional[int] = None
    #: Journal progress for restart-and-resume (None -> config).
    resume: Optional[bool] = None
    # -- retired spellings (shim cycle over; TypeError on use) ---------
    ship_retry_limit: Optional[int] = None
    ship_retry_base: Optional[float] = None
    ship_retry_cap: Optional[float] = None
    resumable: Optional[bool] = None

    def __post_init__(self) -> None:
        for old, new in _RETIRED_OPTION_FIELDS:
            if getattr(self, old) is not None:
                raise TypeError(
                    "MigrationOptions(%s=...) was removed after its "
                    "deprecation cycle; use the unified knob name %r "
                    "(shared with ScheduleOptions and RebalanceOptions)"
                    % (old, new))
        object.__setattr__(self, "strategy",
                           SnapshotStrategy.coerce(self.strategy))
        if self.pipeline is not None:
            raise TypeError(
                "MigrationOptions(pipeline=...) was removed after its "
                "deprecation cycle; use strategy=SnapshotStrategy.%s "
                "instead"
                % ("PIPELINED" if self.pipeline else "SERIAL"))

    def resolve(self, config: MiddlewareConfig) -> "MigrationOptions":
        """Fill every ``None`` from ``config`` / library defaults."""

        def pick(value: Any, fallback: Any) -> Any:
            return fallback if value is None else value

        return replace(
            self,
            rates=self.rates if self.rates is not None else TransferRates(),
            standbys=tuple(self.standbys or ()),
            strategy=pick(self.strategy,
                          SnapshotStrategy.PIPELINED
                          if config.pipeline_snapshot
                          else SnapshotStrategy.SERIAL),
            pipeline_depth=pick(self.pipeline_depth, config.pipeline_depth),
            retry_limit=pick(self.retry_limit, config.ship_retry_limit),
            retry_base=pick(self.retry_base, config.ship_retry_base),
            retry_cap=pick(self.retry_cap, config.ship_retry_cap),
            divergence_interval=pick(self.divergence_interval,
                                     config.divergence_interval),
            divergence_window=pick(self.divergence_window,
                                   config.divergence_window),
            divergence_min_growth=pick(self.divergence_min_growth,
                                       config.divergence_min_growth),
            resume=pick(self.resume, config.resumable),
        )


@dataclass
class TenantState:
    """Per-tenant middleware state (MLC, critical region, SSL, gate)."""

    name: str
    mlc: int = 0
    migrating: bool = False
    region: CriticalRegion = None  # type: ignore[assignment]
    ssl: SyncsetList = field(default_factory=SyncsetList)
    gate: Gate = None  # type: ignore[assignment]
    active_txns: int = 0
    drain_waiters: List[Event] = field(default_factory=list)
    propagator: Any = None
    #: Row-image change stream of a live watermark migration (commit
    #: post-images in CSN order, with lo/hi markers); ``None`` outside
    #: :data:`~repro.core.watermark.SnapshotStrategy.WATERMARK` runs.
    change_tap: Optional[ChangeTap] = None
    #: Additional slaves fed during a multi-slave migration
    #: (Section 4.2: "Madeus can propagate syncsets to multiple slaves
    #: at the same time"); node name -> (SyncsetList, propagator).
    standby_ssls: Dict[str, SyncsetList] = field(default_factory=dict)
    standby_propagators: Dict[str, Any] = field(default_factory=dict)
    failed_standbys: List[str] = field(default_factory=list)
    # statistics
    operations_seen: int = 0
    commits_seen: int = 0
    read_only_commits: int = 0
    aborts_seen: int = 0

    def all_ssls(self) -> List[SyncsetList]:
        """The primary SSL plus one per standby slave."""
        return [self.ssl] + list(self.standby_ssls.values())

    def all_propagators(self) -> List[Any]:
        """Every live propagation engine."""
        engines = [self.propagator] if self.propagator is not None else []
        engines.extend(self.standby_propagators.values())
        return engines


@dataclass
class MigrationReport:
    """Everything the experiments need to know about one migration."""

    tenant: str
    source: str
    destination: str
    policy: str
    started_at: float
    snapshot_at: float = 0.0
    restored_at: float = 0.0
    caught_up_at: float = 0.0
    switched_at: float = 0.0
    ended_at: float = 0.0
    mts: int = 0
    snapshot_size_mb: float = 0.0
    syncsets_propagated: int = 0
    operations_propagated: int = 0
    max_concurrent_players: int = 0
    rounds: int = 0
    slave_commit_count: int = 0
    slave_flush_count: int = 0
    slave_mean_group_size: float = 0.0
    consistent: Optional[bool] = None
    inconsistencies: List[str] = field(default_factory=list)
    lsir_violations: List[str] = field(default_factory=list)
    #: Multi-slave migration: per-standby-node consistency verdicts for
    #: the standbys that survived to switch-over.
    standby_consistency: Dict[str, bool] = field(default_factory=dict)
    #: Standby nodes dropped mid-migration (injected failures).
    failed_standbys: List[str] = field(default_factory=list)
    #: "ok", "aborted", or "suspended" (resumable migration parked by a
    #: source crash); non-ok migrations are reported too.
    outcome: str = "ok"
    #: Times a crashed destination was replaced by a promoted standby.
    failovers: int = 0
    #: Snapshot ship/restore resends across transient outages.
    ship_retries: int = 0
    #: Whether the snapshot was streamed (dump/ship/restore overlapped).
    pipelined: bool = False
    #: Snapshot strategy used: "serial", "pipelined", or "watermark".
    strategy: str = "serial"
    #: Chunks the streamed dump emitted (0 on the serial path).
    chunks: int = 0
    #: The master (source) node crashed at some point mid-migration.
    source_crashed: bool = False
    #: Node owning the tenant when the migration ended — the (possibly
    #: failed-over) destination on success, the source on any abort.
    owner: str = ""
    #: This report covers a journalled re-entry of an interrupted
    #: migration (see :meth:`Middleware.resume_migration`).
    resumed: bool = False
    #: Chunks the journal let this attempt skip because every
    #: destination had already installed them (0 on a fresh migration).
    chunks_skipped: int = 0

    @property
    def migration_time(self) -> float:
        """End-to-end migration duration (Figure 6's metric)."""
        return self.ended_at - self.started_at

    @property
    def dump_time(self) -> float:
        """Step 1 duration."""
        return self.snapshot_at - self.started_at

    @property
    def restore_time(self) -> float:
        """Step 2 duration."""
        return self.restored_at - self.snapshot_at

    @property
    def catchup_time(self) -> float:
        """Step 3 duration (first catch-up)."""
        return self.caught_up_at - self.restored_at

    @property
    def switch_time(self) -> float:
        """Step 4 duration (suspend, drain, switch-over, resume)."""
        return self.ended_at - self.caught_up_at


#: HandoverRecord lifecycle states.
HANDOVER_PREPARED = "prepared"
HANDOVER_READY = "ready"
HANDOVER_COMMITTED = "committed"
HANDOVER_ROLLED_BACK = "rolled-back"


@dataclass
class HandoverRecord:
    """Journal entry for the two-step atomic ownership switch (Step 4).

    The routing flip at the end of the handover phase is the only moment
    ownership changes, so a crash racing it must resolve to exactly one
    owner — never zero, never two.  The manager journals the switch:

    * ``prepared`` — handover entered; the source still owns the tenant.
    * ``ready`` — every active transaction and every propagator drained;
      the destination holds all remotely-committed state (commits link
      their SSBs into the SSL at commit time, and the drain delivered
      them), so from here the switch can only *roll forward*.
    * ``committed`` / ``rolled-back`` — resolved: routing points at the
      destination / source respectively and the record is inert.

    :meth:`Middleware.recover_routing` applies the recovery rule to an
    in-doubt record; :meth:`Middleware.owners` reads the same rule
    without mutating anything.
    """

    tenant: str
    source: str
    destination: str
    prepared_at: float
    state: str = HANDOVER_PREPARED
    resolved_at: Optional[float] = None


#: MigrationJournal lifecycle states.
JOURNAL_ACTIVE = "active"
JOURNAL_SUSPENDED = "suspended"
JOURNAL_COMPLETED = "completed"
JOURNAL_ABANDONED = "abandoned"


@dataclass
class MigrationJournal:
    """Durable per-migration progress record (the resume journal).

    Extends the two-step handover journal idea to the whole migration:
    everything :meth:`Middleware.resume_migration` needs to re-enter an
    interrupted migration without re-dumping is recorded as it happens —
    the chunk plan and snapshot CSN frozen at dump start (Step 1),
    per-node installed-chunk high-water marks (Step 2), and the catch-up
    low-water mark (syncsets replayed by stopped engines; the SSL itself
    *is* the remaining backlog).  In a real deployment this record lives
    in the middleware's stable storage next to the handover journal;
    here it is the in-memory stand-in, exactly like
    :class:`HandoverRecord`.
    """

    tenant: str
    source: str
    destination: str
    mts: int
    snapshot_csn: int
    #: Chunk plan frozen at dump start: the tenant keeps growing under
    #: load, so a resumed dump must not re-derive it — under MVCC the
    #: versions visible at ``snapshot_csn`` survive the source's
    #: crash-and-recovery, so the frozen slices stay byte-identical.
    size_mb: float
    total_chunks: int
    pipelined: bool
    #: Snapshot strategy of the journalled attempt; a resume re-enters
    #: with the same strategy regardless of the options it was given.
    strategy: str = "pipelined"
    #: Watermark resume state: the ``(table, key)`` cursor after the
    #: last fully installed chunk (``None`` = walk not started, or
    #: exhausted once ``watermark_chunks > 0``) and the installed-chunk
    #: count.  The interrupted chunk itself is deliberately absent — a
    #: re-entry re-selects it from live data under a fresh watermark
    #: bracket.
    watermark_cursor: Optional[Tuple[str, Any]] = None
    watermark_chunks: int = 0
    schemas: List[SchemaSpec] = field(default_factory=list)
    state: str = JOURNAL_ACTIVE
    #: Current phase: "dump", "catch-up", "handover", or "done".
    phase: str = "dump"
    #: Per-node installed-chunk high-water marks (counts, not indexes).
    chunks_restored: Dict[str, int] = field(default_factory=dict)
    #: Per-node install log of absolute chunk indexes — the audit trail
    #: tests use to prove a resume never double-ships a chunk.  (A ship
    #: *retry* inside one attempt may legitimately repeat an index;
    #: keyed re-installs are value-idempotent.)
    chunk_log: Dict[str, List[int]] = field(default_factory=dict)
    #: Syncsets replayed by engines retired at quiesce time — the
    #: catch-up low-water mark.  An SSB is taken off the SSL when an
    #: engine claims it, so a successor engine starts strictly after
    #: these and never replays one twice.
    replayed_syncsets: int = 0
    suspended_at: Optional[float] = None
    suspend_phase: Optional[str] = None
    resumes: int = 0
    #: Live dump/ship/restore processes of the current attempt; a
    #: re-entry after a manager death interrupts any still alive so an
    #: orphaned stream cannot keep mutating the destination.
    snapshot_procs: List[Any] = field(default_factory=list)
    #: The manager process of the current attempt (None when parked).
    manager: Any = None


@dataclass
class _MigrationRun:
    """Mutable context threaded through the migration phase helpers.

    :meth:`Middleware.migrate` and :meth:`Middleware.resume_migration`
    build one and hand it through :meth:`Middleware._snapshot_phase` ->
    :meth:`Middleware._catchup_phase` ->
    :meth:`Middleware._handover_phase`; a destination failover mutates
    ``destination`` / ``dest_instance`` in place.
    """

    tenant: str
    state: TenantState
    opts: MigrationOptions
    report: MigrationReport
    migration_span: Any
    source_instance: Any
    dest_instance: Any
    destination: str
    standby_instances: Dict[str, Any]
    source_down: Event
    snapshot_csn: int
    journal: Optional[MigrationJournal] = None
    resume: bool = False
    #: Per-slave WAL baselines captured at catch-up start.
    wal_before: Dict[str, Any] = field(default_factory=dict)


class Connection:
    """One customer connection proxied by the middleware."""

    def __init__(self, middleware: "Middleware", tenant: str):
        self.middleware = middleware
        self.tenant = tenant
        self.tracker = TxnTracker()
        self.ssb: Optional[SyncsetBuffer] = None
        self.in_active_txn = False
        self._node_name: Optional[str] = None
        self._session: Optional[Session] = None
        # statistics
        self.statements = 0
        self.errors = 0

    def session(self) -> Session:
        """The master-side session, re-bound after switch-over."""
        node_name = self.middleware.route(self.tenant)
        if self._session is None or self._node_name != node_name:
            instance = self.middleware.cluster.node(node_name).instance
            self._session = Session(instance, self.tenant)
            self._node_name = node_name
        return self._session


class Middleware:
    """A pure-middleware database proxy with live migration."""

    def __init__(self, env: "Environment", cluster: Cluster,
                 config: Optional[MiddlewareConfig] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.env = env
        self.cluster = cluster
        self.config = config or MiddlewareConfig()
        #: Span/event recorder on the simulated clock; every migration
        #: emits phase spans (dump -> restore -> catch-up -> handover).
        self.tracer = tracer if tracer is not None else Tracer(env)
        #: Structured counters/gauges/histograms for the whole stack.
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry())
        self.cluster.network.bind_obs(self.metrics)
        self._tenants: Dict[str, TenantState] = {}
        self._routes: Dict[str, str] = {}
        #: Two-step ownership-switch journal, one record per tenant for
        #: the most recent handover (see :class:`HandoverRecord`).
        self._handovers: Dict[str, HandoverRecord] = {}
        #: Per-migration resume journal, one record per tenant for the
        #: most recent resumable migration (see :class:`MigrationJournal`).
        self._journals: Dict[str, MigrationJournal] = {}
        self.validator: Optional[LsirValidator] = (
            LsirValidator() if self.config.validate_lsir else None)
        self.reports: List[MigrationReport] = []

    # ------------------------------------------------------------------
    # tenant management / routing
    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str, node_name: str) -> TenantState:
        """Register a tenant hosted on ``node_name``."""
        if tenant in self._tenants:
            raise RoutingError("tenant %r already registered" % tenant)
        self.cluster.node(node_name)  # validate
        state = TenantState(tenant)
        state.region = CriticalRegion(self.env, "region.%s" % tenant)
        state.gate = Gate(self.env, is_open=True)
        self._tenants[tenant] = state
        self._routes[tenant] = node_name
        return state

    def route(self, tenant: str) -> str:
        """Current master node of a tenant."""
        node = self._routes.get(tenant)
        if node is None:
            raise RoutingError("tenant %r is not registered" % tenant)
        return node

    def tenants(self) -> List[str]:
        """Every registered tenant name, sorted."""
        return sorted(self._tenants)

    def publish_load_gauges(self, since: float = 0.0) -> None:
        """Mirror per-tenant and per-link load into the registry.

        The worker path keeps its counters as plain attributes on
        :class:`TenantState` (the hot path must not pay a registry
        lookup per statement); this publishes them as
        ``tenant.<name>.operations`` / ``.commits`` / ``.aborts``
        gauges, plus ``net.link.<port>.utilisation`` (the busy fraction
        of every materialised :class:`~repro.net.network.LinkPort`
        since ``since``), so the control plane and library users read
        load exclusively through the stable
        :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` /
        ``gauge_value`` API.  Sampling loops (the LoadWatcher) call
        this once per tick, off the hot path.
        """
        for name in sorted(self._tenants):
            state = self._tenants[name]
            prefix = "tenant.%s" % name
            self.metrics.gauge("%s.operations" % prefix).set(
                state.operations_seen)
            self.metrics.gauge("%s.commits" % prefix).set(
                state.commits_seen)
            self.metrics.gauge("%s.aborts" % prefix).set(
                state.aborts_seen)
        network = self.cluster.network
        for port_name, port in sorted(network.link_ports().items()):
            self.metrics.gauge("net.link.%s.utilisation"
                               % port_name).set(
                port.utilisation(since=since))

    def owners(self, tenant: str) -> List[str]:
        """The node(s) that own ``tenant`` — by design exactly one.

        Outside a handover (or once the journal record resolved) this is
        the routing entry.  With an in-doubt :class:`HandoverRecord` the
        recovery rule applies without mutating anything: ``prepared``
        rolls back (source owns), ``ready`` rolls forward (destination
        owns — it already holds every remotely-committed transaction).
        A list so tests can assert ``len(owners(t)) == 1`` as the
        exactly-one-owner invariant rather than trusting the type.
        """
        route = self.route(tenant)
        record = self._handovers.get(tenant)
        if record is None or record.state in (HANDOVER_COMMITTED,
                                              HANDOVER_ROLLED_BACK):
            return [route]
        if record.state == HANDOVER_READY:
            return [record.destination]
        return [record.source]

    def recover_routing(self, tenant: str) -> str:
        """Resolve an in-doubt handover after a crash; return the owner.

        Applies the :class:`HandoverRecord` recovery rule *with* side
        effects: a ``ready`` record commits (the destination drained
        every remotely-committed transaction before the record was
        marked ready, so rolling forward loses nothing), a ``prepared``
        record rolls back to the source.  Either way the tenant's
        migration scaffolding is torn down and the gate reopens, so the
        single surviving owner serves reads and writes again.
        """
        state = self.tenant_state(tenant)
        record = self._handovers.get(tenant)
        if record is not None and record.state == HANDOVER_READY:
            self._commit_handover(record, recovered=True)
        elif record is not None and record.state == HANDOVER_PREPARED:
            self._rollback_handover(record, reason="crash_recovery")
        journal = self._journals.get(tenant)
        if journal is not None and journal.state in (JOURNAL_ACTIVE,
                                                     JOURNAL_SUSPENDED):
            # Recovery forfeits the resume: a rolled-forward handover
            # completes the journal, anything else abandons it.  Orphan
            # dump/restore streams are silenced either way.
            if self.route(tenant) == journal.destination:
                journal.state = JOURNAL_COMPLETED
                journal.phase = "done"
            else:
                journal.state = JOURNAL_ABANDONED
            journal.manager = None
            for proc in journal.snapshot_procs:
                if proc.is_alive:
                    proc.interrupt("routing recovered")
            journal.snapshot_procs = []
        if state.migrating or state.propagator is not None:
            state.migrating = False
            if state.propagator is not None:
                state.propagator.request_stop()
                state.propagator = None
            state.ssl.take_all()
            for name in sorted(state.standby_propagators):
                self._drop_standby(state, name, phase="recovery",
                                   reason="handover recovery")
        if state.change_tap is not None:
            state.change_tap.cancel_pending_markers()
            state.change_tap = None
        if not state.gate.is_open:
            state.gate.open()
        return self.owners(tenant)[0]

    def migration_journal(self, tenant: str) -> Optional[MigrationJournal]:
        """The most recent resume journal of ``tenant`` (or ``None``)."""
        return self._journals.get(tenant)

    def tenant_state(self, tenant: str) -> TenantState:
        """Middleware-side state of a tenant."""
        state = self._tenants.get(tenant)
        if state is None:
            raise RoutingError("tenant %r is not registered" % tenant)
        return state

    def connect(self, tenant: str) -> Connection:
        """Open a customer connection to a tenant."""
        self.tenant_state(tenant)  # validate
        return Connection(self, tenant)

    def disconnect(self, conn: Connection) -> None:
        """Abandon a connection whose customer side went away.

        The server-side unwind a real DBMS performs when it loses the
        client socket: any in-flight transaction is rolled back and the
        gate slot it held is released, so an abandoned connection (a
        router shard crashing mid-transaction, a client process dying)
        can never wedge a handover drain.  Idempotent.
        """
        state = self.tenant_state(conn.tenant)
        self._connection_lost(conn, state)

    def draining(self, tenant: str) -> bool:
        """Whether ``tenant``'s gate is closed (handover in progress).

        The router tier consults this before admitting a new
        transaction: a draining tenant's BEGINs are parked router-side
        in a bounded queue instead of piling onto the middleware gate.
        """
        return not self.tenant_state(tenant).gate.is_open

    # ------------------------------------------------------------------
    # the worker (Algorithms 1 and 2), inline on the customer connection
    # ------------------------------------------------------------------
    def submit(self, conn: Connection, sql: str,
               cpu_cost: Optional[float] = None
               ) -> Generator[Any, Any, SessionResult]:
        """Proxy one customer statement to the tenant's master.

        The customer -> middleware and middleware -> master hops each pay
        one network round trip; the worker logic itself is free (the
        paper measured the middleware node as ~100% idle).
        """
        state = self.tenant_state(conn.tenant)
        was_update = conn.tracker.is_update
        operation = conn.tracker.classify(parse(sql), sql, cpu_cost)
        conn.statements += 1
        state.operations_seen += 1
        # customer -> middleware hop
        try:
            yield from self.cluster.network.round_trip()
        except NetworkDown as exc:
            conn.errors += 1
            self._connection_lost(conn, state)
            return SessionResult(kind="error", error=str(exc))
        if operation.kind == OpKind.BEGIN:
            # Suspended during switch-over: new transactions wait at the
            # gate; running ones drain (Algorithm 3 lines 14-17).
            yield state.gate.wait()
            state.active_txns += 1
            conn.in_active_txn = True
            result = yield from self._forward(conn, operation)
            if not result.ok:
                # The master refused/never saw the BEGIN (crash, outage):
                # release the gate slot instead of leaking active_txns.
                self._transaction_ended(conn, state, aborted=True)
            return result
        if operation.kind == OpKind.FIRST_READ:
            result = yield from self._first_read(conn, state, operation)
        elif operation.kind == OpKind.WRITE:
            result = yield from self._write(conn, state, operation)
        elif operation.kind == OpKind.COMMIT:
            result = yield from self._commit(conn, state, operation,
                                             was_update)
        elif operation.kind == OpKind.ABORT:
            result = yield from self._abort(conn, state, operation)
        else:  # plain read
            result = yield from self._read(conn, state, operation)
        if not result.ok:
            conn.errors += 1
        return result

    def _forward(self, conn: Connection, operation: Operation
                 ) -> Generator[Any, Any, SessionResult]:
        """middleware -> master round trip plus execution.

        A link outage surfaces as an error result, like a proxy
        returning 503; the master-side transaction (which never saw the
        statement) is rolled back, as a real server does when it loses
        the client connection.
        """
        try:
            yield from self.cluster.network.round_trip()
        except NetworkDown as exc:
            session = conn._session
            if session is not None and session.in_transaction:
                session.reset()
            return SessionResult(kind="error", error=str(exc))
        result = yield from conn.session().execute(operation.statement,
                                                   cpu_cost=operation.cpu_cost)
        return result

    def _first_read(self, conn: Connection, state: TenantState,
                    operation: Operation
                    ) -> Generator[Any, Any, SessionResult]:
        """Algorithm 1 lines 1-10: execute, tag STS, allocate the SSB."""
        yield from state.region.enter(FIRST_READ_CLASS)
        try:
            result = yield from self._forward(conn, operation)
            if result.ok:
                ssb = SyncsetBuffer(sts=state.mlc,
                                    txn_label=operation.txn_label)
                ssb.save(operation)
                conn.ssb = ssb
                for ssl in state.all_ssls():
                    ssl.register_open(ssb)
            else:
                self._transaction_ended(conn, state, aborted=True)
        finally:
            state.region.leave()
        return result

    def _write(self, conn: Connection, state: TenantState,
               operation: Operation
               ) -> Generator[Any, Any, SessionResult]:
        """Algorithm 1 lines 11-15: execute, then save to the SSB."""
        result = yield from self._forward(conn, operation)
        if result.ok:
            if conn.ssb is not None:
                conn.ssb.save(operation)
        else:
            # Engine-initiated abort (first-updater-wins): the master
            # already rolled the transaction back; discard the SSB.
            self._transaction_ended(conn, state, aborted=True)
        return result

    def _read(self, conn: Connection, state: TenantState,
              operation: Operation
              ) -> Generator[Any, Any, SessionResult]:
        """Algorithm 1 lines 30-33 / Algorithm 2: forward, maybe save.

        The minimum-set policies discard non-first reads; B-ALL keeps
        them so the slave can replay entire transactions.
        """
        result = yield from self._forward(conn, operation)
        if result.ok:
            if not self.config.policy.minimum_set and conn.ssb is not None:
                conn.ssb.save(operation)
        else:
            self._transaction_ended(conn, state, aborted=True)
        return result

    def _commit(self, conn: Connection, state: TenantState,
                operation: Operation, was_update: bool
                ) -> Generator[Any, Any, SessionResult]:
        """Algorithm 1 lines 16-29: execute, tag ETS, bump MLC, link."""
        if not was_update:
            # Read-only commit: no snapshot state changes, no MLC bump,
            # no critical region (Algorithm 2), and nothing to replay —
            # the mapping function maps it to the empty set under every
            # policy (a read-only transaction changes no data).
            result = yield from self._forward(conn, operation)
            if result.ok:
                state.commits_seen += 1
                state.read_only_commits += 1
            self._transaction_ended(conn, state,
                                    aborted=not result.ok)
            return result
        yield from state.region.enter(COMMIT_CLASS)
        # Capture the row post-images *before* forwarding: the session
        # drops its Transaction the instant the engine commit returns.
        session = conn._session
        txn = session.txn if session is not None else None
        try:
            result = yield from self._forward(conn, operation)
            if result.ok:
                state.commits_seen += 1
                if (state.migrating and state.change_tap is not None
                        and txn is not None and txn.write_order):
                    state.change_tap.append_txn(
                        [(table_name, key,
                          dict(txn.writes[(table_name, key)])
                          if txn.writes[(table_name, key)] is not None
                          else None)
                         for table_name, key in txn.write_order])
                ssb = conn.ssb
                if ssb is not None:
                    ssb.ets = state.mlc
                    ssb.save(operation)
                state.mlc += 1
                if ssb is not None:
                    conn.ssb = None
                    for ssl in state.all_ssls():
                        ssl.resolve_open(ssb)
                        # Under a watermark migration the change tap is
                        # the replication stream; linking SSBs too would
                        # leak an undrained SSL backlog.
                        if state.migrating and state.change_tap is None:
                            ssl.link(ssb, self.env.now)
                    for propagator in state.all_propagators():
                        if state.migrating:
                            propagator.notify_linked()
                        propagator.notify_open_changed()
                self._transaction_closed(conn, state)
            else:
                self._transaction_ended(conn, state, aborted=True)
        finally:
            state.region.leave()
        return result

    def _abort(self, conn: Connection, state: TenantState,
               operation: Operation
               ) -> Generator[Any, Any, SessionResult]:
        """Client rollback: forward and discard the SSB."""
        result = yield from self._forward(conn, operation)
        self._transaction_ended(conn, state, aborted=True)
        return result

    # ------------------------------------------------------------------
    def _transaction_ended(self, conn: Connection, state: TenantState,
                           aborted: bool) -> None:
        """Discard the SSB (mapping function: aborted/failed -> empty)."""
        if conn.ssb is not None:
            for ssl in state.all_ssls():
                ssl.resolve_open(conn.ssb)
            conn.ssb = None
            for propagator in state.all_propagators():
                propagator.notify_open_changed()
        if aborted:
            state.aborts_seen += 1
            # the engine already rolled back; re-sync the tracker
            if conn.tracker.in_txn:
                conn.tracker.reset()
        self._transaction_closed(conn, state)

    def _connection_lost(self, conn: Connection,
                         state: TenantState) -> None:
        """Unwind one connection whose customer hop hit an outage."""
        session = conn._session
        if session is not None and session.in_transaction:
            session.reset()
        self._transaction_ended(conn, state, aborted=True)

    def _transaction_closed(self, conn: Connection,
                            state: TenantState) -> None:
        if not conn.in_active_txn:
            return
        conn.in_active_txn = False
        if state.active_txns > 0:
            state.active_txns -= 1
        if state.active_txns == 0 and not state.gate.is_open:
            waiters, state.drain_waiters = state.drain_waiters, []
            for event in waiters:
                event.succeed()

    # ------------------------------------------------------------------
    # the manager (Algorithm 3): four-step live migration
    # ------------------------------------------------------------------
    def migrate(self, tenant: str, destination: str,
                options: Optional[MigrationOptions] = None
                ) -> Generator[Any, Any, MigrationReport]:
        """Live-migrate ``tenant`` to node ``destination``.

        Steps: (1) snapshot the master inside the critical region so the
        MTS is a clean commit boundary; (2) ship + restore on the
        destination — streamed in overlapping chunks by default, or the
        serial paper-faithful chain with
        ``MigrationOptions(strategy=SnapshotStrategy.SERIAL)``; (3)
        propagate syncsets
        under the configured policy until caught up; (4) suspend new
        transactions, drain, switch over, resume.

        All per-migration knobs live on :class:`MigrationOptions`;
        ``options.standbys`` names additional nodes that receive the
        snapshot and the same syncset stream concurrently (Section 4.2)
        — they end up as consistent warm replicas, and a standby that
        fails mid-migration is dropped without stopping the migration.

        .. versionchanged::
           The deprecated positional-``TransferRates`` and ``rates=`` /
           ``standbys=`` call shapes were removed after one release
           cycle; :class:`MigrationOptions` is the only way to pass
           per-migration knobs.
        """
        if options is not None and not isinstance(options,
                                                  MigrationOptions):
            raise TypeError(
                "migrate() takes a MigrationOptions instance, got %r; "
                "the old rates/standbys call shapes were removed"
                % (type(options).__name__,))
        opts = (options or MigrationOptions()).resolve(self.config)
        rates = opts.rates
        standbys = list(opts.standbys)
        state = self.tenant_state(tenant)
        if state.migrating:
            raise MigrationError("tenant %r is already migrating" % tenant)
        source = self.route(tenant)
        for node_name in [destination] + standbys:
            if source == node_name:
                raise MigrationError("tenant %r is already on %s"
                                     % (tenant, node_name))
        if destination in standbys:
            raise MigrationError("destination cannot also be a standby")
        source_instance = self.cluster.node(source).instance
        dest_instance = self.cluster.node(destination).instance
        standby_instances = {name: self.cluster.node(name).instance
                             for name in standbys}
        # Supervise the master for the whole migration: a source crash
        # must abort (Section 4.2) even in phases where nothing else
        # would notice — the middleware buffers the syncsets, so replay
        # could quietly finish against a dead master.
        source_down = source_instance.wait_crashed()
        overlapped = opts.strategy is not SnapshotStrategy.SERIAL
        report = MigrationReport(tenant, source, destination,
                                 self.config.policy.name,
                                 started_at=self.env.now,
                                 pipelined=(opts.strategy
                                            is SnapshotStrategy.PIPELINED),
                                 strategy=opts.strategy.value)
        migration_span = self.tracer.start(
            "migration", kind=MIGRATION, tenant=tenant, source=source,
            destination=destination, policy=self.config.policy.name,
            standbys=len(standbys), pipelined=overlapped,
            strategy=opts.strategy.value)
        # --- Step 1: snapshot at a commit boundary --------------------
        phase_span = self.tracer.phase("dump", parent=migration_span,
                                       pipelined=overlapped,
                                       strategy=opts.strategy.value)
        yield from state.region.enter(FIRST_READ_CLASS)
        report.mts = state.mlc
        snapshot_csn = source_instance.current_csn()
        state.migrating = True  # commits from here on link their SSBs
        if opts.strategy is SnapshotStrategy.WATERMARK:
            # From the very next commit every row post-image flows into
            # the change tap instead of the SSL — created inside the
            # critical region so no commit slips between the two.
            state.change_tap = ChangeTap(self.env, name=tenant)
        state.region.leave()
        del rates  # phases read opts.rates
        run = _MigrationRun(
            tenant=tenant, state=state, opts=opts, report=report,
            migration_span=migration_span,
            source_instance=source_instance, dest_instance=dest_instance,
            destination=destination, standby_instances=standby_instances,
            source_down=source_down, snapshot_csn=snapshot_csn)
        if opts.resume:
            run.journal = self._open_journal(run)
        yield from self._snapshot_phase(run, phase_span)
        yield from self._catchup_phase(run)
        return (yield from self._handover_phase(run))

    def _open_journal(self, run: _MigrationRun) -> MigrationJournal:
        """Journal a fresh migration's immutable facts and chunk plan."""
        opts = run.opts
        tenant_db = run.source_instance.tenant(run.tenant)
        size_mb = tenant_db.size_mb()
        chunk_cap = (opts.chunk_mb if opts.chunk_mb is not None
                     else opts.rates.chunk_mb)
        specs = []
        for table_name in tenant_db.catalog.table_names():
            table = tenant_db.table(table_name)
            specs.append(SchemaSpec(table_name, table.schema.columns,
                                    dict(table.schema.indexes)))
        journal = MigrationJournal(
            tenant=run.tenant, source=run.report.source,
            destination=run.destination, mts=run.report.mts,
            snapshot_csn=run.snapshot_csn, size_mb=size_mb,
            total_chunks=plan_chunks(size_mb, chunk_cap),
            pipelined=(opts.strategy is SnapshotStrategy.PIPELINED),
            strategy=opts.strategy.value, schemas=specs)
        journal.manager = self.env.active_process
        self._journals[run.tenant] = journal
        return journal

    # ------------------------------------------------------------------
    # migration phases (shared by migrate() and resume_migration())
    # ------------------------------------------------------------------
    def _snapshot_phase(self, run: _MigrationRun,
                        phase_span: Any) -> Generator[Any, Any, None]:
        """Steps 1 (dump) + 2 (restore) against every destination node.

        ``phase_span`` is the already-open ``dump`` span.  On return the
        (possibly failed-over) destination holds the full snapshot and
        ``report.restored_at`` is stamped; a source crash raises
        :class:`SourceCrashed` (suspending first when journalled).
        """
        state, opts, report = run.state, run.opts, run.report
        tenant = run.tenant
        rates = opts.rates
        restore_errors: Dict[str, Optional[str]] = {}

        def retry_backoff(node_name: str, attempt: int) -> Generator:
            delay = min(opts.retry_cap,
                        opts.retry_base * (2 ** (attempt - 1)))
            report.ship_retries += 1
            self.metrics.counter("migration.retries").inc()
            self.tracer.event("migration.retry", tenant=tenant,
                              node=node_name, attempt=attempt,
                              delay=delay)
            yield self.env.timeout(delay)

        if opts.strategy is SnapshotStrategy.WATERMARK:
            phase_span = yield from self._watermark_snapshot(
                run, phase_span, restore_errors, retry_backoff)
        elif (opts.strategy is SnapshotStrategy.PIPELINED
                or run.resume):
            dump_error, phase_span = yield from self._pipelined_snapshot(
                run, phase_span, restore_errors, retry_backoff)
            if isinstance(dump_error, NodeCrashed):
                # The *source* died mid-dump: nothing useful restored
                # anywhere; abort and keep source ownership.
                self._abort_source_crash(state, run.dest_instance,
                                         tenant, report,
                                         run.migration_span, phase_span,
                                         phase="dump")
        else:
            try:
                snapshot = yield from dump(run.source_instance, tenant,
                                           run.snapshot_csn, rates)
            except NodeCrashed:
                self._abort_source_crash(state, run.dest_instance,
                                         tenant, report,
                                         run.migration_span, phase_span,
                                         phase="dump")
            report.snapshot_at = self.env.now
            report.snapshot_size_mb = snapshot.size_mb
            self.tracer.finish(phase_span, mts=report.mts,
                               size_mb=snapshot.size_mb)
            # --- Step 2: create the slave(s) ---------------------------
            phase_span = self.tracer.phase("restore",
                                           parent=run.migration_span,
                                           size_mb=snapshot.size_mb)

            def ship_and_restore(node_name: str,
                                 instance: Any) -> Generator:
                """Ship + restore one node; resend across outages.

                Never raises: per-node outcomes land in
                ``restore_errors`` so one dead node cannot fail the
                whole fan-out (``all_of`` fails fast on a sub-event
                failure).
                """
                attempt = 0
                while True:
                    try:
                        yield from self.cluster.network.message(
                            snapshot.size_mb)
                        yield from restore(instance, snapshot, rates,
                                           tenant_name=tenant)
                        restore_errors[node_name] = None
                        if run.journal is not None:
                            # The serial restore lands whole: journal
                            # the entire chunk plan as installed.
                            run.journal.chunks_restored[node_name] = (
                                run.journal.total_chunks)
                        return
                    except NetworkDown as exc:
                        attempt += 1
                        if instance.has_tenant(tenant):
                            # Discard the partial copy before resending.
                            instance.drop_tenant(tenant)
                        if run.journal is not None:
                            run.journal.chunks_restored[node_name] = 0
                        if attempt > opts.retry_limit:
                            restore_errors[node_name] = str(exc)
                            return
                        yield from retry_backoff(node_name, attempt)
                    except NodeCrashed as exc:
                        restore_errors[node_name] = str(exc)
                        return
                    except Interrupt:
                        # Quiesced by a journalled re-entry.
                        restore_errors[node_name] = "interrupted"
                        return

            restores = [self.env.process(
                ship_and_restore(run.destination, run.dest_instance))]
            restores += [self.env.process(ship_and_restore(name, instance))
                         for name, instance
                         in run.standby_instances.items()]
            if run.journal is not None:
                run.journal.snapshot_procs = list(restores)
            yield self.env.all_of(restores)
        if run.source_instance.crashed:
            # The master died while the slaves restored (the serial path
            # restores from an already-materialised snapshot, so nothing
            # in the pipeline notices).  Whatever landed is abandoned.
            self._abort_source_crash(state, run.dest_instance, tenant,
                                     report, run.migration_span,
                                     phase_span, phase="restore")
        # A standby that failed to restore is discarded (Section 4.2); a
        # dead destination promotes a restored standby or aborts.
        for name in sorted(run.standby_instances):
            error = restore_errors.get(name)
            if error is not None:
                run.standby_instances.pop(name)
                self._drop_standby(state, name, phase="restore",
                                   reason=error)
        dest_error = restore_errors.get(run.destination)
        if dest_error is not None:
            survivors = sorted(run.standby_instances)
            if not survivors:
                self._abort_migration(state, run.dest_instance, tenant)
                self.tracer.finish(phase_span, outcome="failed")
                self.tracer.finish(run.migration_span, outcome="aborted",
                                   reason="restore_failed",
                                   owner=report.source)
                self._finalize_abort(state, report)
                raise MigrationError(
                    "restore on destination %s failed (%s) and no "
                    "standby survives to take over"
                    % (run.destination, dest_error))
            run.destination, run.dest_instance = self._promote_standby(
                state, run.standby_instances, report, tenant,
                failed=run.destination, phase="restore",
                reason=dest_error)
            if run.journal is not None:
                run.journal.destination = run.destination
        if run.journal is not None:
            run.journal.snapshot_procs = []
        report.restored_at = self.env.now
        self.tracer.finish(phase_span, retries=report.ship_retries)

    @staticmethod
    def _replication_backlog(state: TenantState) -> int:
        """Pending replication units: tap records under a watermark
        migration (the SSL stays empty there), linked SSBs otherwise."""
        if state.change_tap is not None:
            return state.change_tap.pending_count()
        return state.ssl.pending_count()

    def _catchup_phase(self, run: _MigrationRun
                       ) -> Generator[Any, Any, None]:
        """Step 3: concurrent syncset propagation until caught up."""
        state, opts, report = run.state, run.opts, run.report
        tenant = run.tenant
        if run.journal is not None:
            run.journal.phase = "catch-up"
        phase_span = self.tracer.phase(
            "catch-up", parent=run.migration_span,
            backlog=self._replication_backlog(state))
        adopted = state.propagator is not None
        if adopted:
            # Keep an engine that is already replaying toward the
            # destination rather than racing a successor against its
            # claimed work: the watermark applier spun up during the
            # snapshot walk, and a resumed migration's parked engine
            # kept draining while the journal was suspended.
            propagator = state.propagator
        else:
            propagator = make_propagator(self.env, state.ssl,
                                         run.dest_instance, tenant,
                                         self.cluster.network,
                                         self.config.policy,
                                         self.validator,
                                         tracer=self.tracer,
                                         metrics=self.metrics)
            state.propagator = propagator
        for name, instance in run.standby_instances.items():
            if name in state.standby_propagators:
                # Watermark standby appliers were adopted during the
                # snapshot walk; they keep consuming their tap cursors.
                continue
            standby_ssl = SyncsetList()
            standby_ssl.adopt_opens(state.ssl)
            standby_ssl.adopt_backlog(state.ssl)
            standby_prop = make_propagator(
                self.env, standby_ssl, instance, tenant,
                self.cluster.network, self.config.policy,
                metrics=self.metrics,
                metrics_prefix="propagation.standby.%s" % name)
            state.standby_ssls[name] = standby_ssl
            state.standby_propagators[name] = standby_prop
            standby_prop.start()
        # Per-slave WAL baselines, recorded up front so a standby
        # promoted mid-catch-up still reports correct deltas.
        run.wal_before = {
            run.destination: (run.dest_instance.wal.flush_count,
                              run.dest_instance.wal.commit_count)}
        for name, instance in run.standby_instances.items():
            run.wal_before[name] = (instance.wal.flush_count,
                                    instance.wal.commit_count)
        if not adopted:
            propagator.start()
        deadline_event = None
        diverging: Optional[Event] = None
        watchdog_control = {"stop": False}
        if self.config.catchup_deadline is not None:
            deadline_event = self.env.timeout(self.config.catchup_deadline)
            diverging = Event(self.env)
            self.env.process(
                self._divergence_watchdog(state, diverging,
                                          watchdog_control, opts),
                name="catchup.watchdog.%s" % tenant)
        # Supervision loop: wait for catch-up while reacting to slave
        # faults.  A dead standby is discarded and propagation continues
        # (Section 4.2); a dead destination promotes a surviving standby
        # or aborts; the deadline / divergence watchdog abort early.
        while True:
            caught_up = state.propagator.wait_caught_up()
            primary_failed = state.propagator.wait_failed()
            standby_failed = {
                name: prop.wait_failed()
                for name, prop in state.standby_propagators.items()}
            waits = [caught_up, run.source_down, primary_failed]
            waits.extend(standby_failed.values())
            if deadline_event is not None:
                waits.append(deadline_event)
            if diverging is not None:
                waits.append(diverging)
            fired = yield self.env.any_of(waits)
            if fired is caught_up:
                break
            if fired is run.source_down:
                watchdog_control["stop"] = True
                self._abort_source_crash(state, run.dest_instance,
                                         tenant, report,
                                         run.migration_span, phase_span,
                                         phase="catch-up")
            dropped = None
            for name, event in standby_failed.items():
                if fired is event:
                    dropped = name
                    break
            if dropped is not None:
                reason = (state.standby_propagators[dropped].failed
                          or "replay failed")
                self._drop_standby(state, dropped, phase="catch-up",
                                   reason=reason)
                run.standby_instances.pop(dropped, None)
                continue
            if fired is primary_failed:
                reason = state.propagator.failed or "replay failed"
                if run.standby_instances:
                    run.destination, run.dest_instance = (
                        self._promote_standby(
                            state, run.standby_instances, report, tenant,
                            failed=run.destination, phase="catch-up",
                            reason=reason))
                    if run.journal is not None:
                        run.journal.destination = run.destination
                    continue
                abort_reason = "destination_failed"
            elif diverging is not None and fired is diverging:
                abort_reason = "diverging"
            else:
                abort_reason = "timeout"
            # --- abort: tear down, report, raise -----------------------
            watchdog_control["stop"] = True
            backlog = self._replication_backlog(state)
            elapsed = self.env.now - report.restored_at
            self._abort_migration(state, run.dest_instance, tenant)
            self.tracer.finish(phase_span, outcome=abort_reason,
                               backlog_at_timeout=backlog)
            self.tracer.finish(run.migration_span, outcome="aborted",
                               reason=abort_reason, owner=report.source)
            self._finalize_abort(state, report)
            if abort_reason == "destination_failed":
                raise MigrationError(
                    "destination %s failed during catch-up (%s) and no "
                    "standby survives to take over"
                    % (run.destination, reason))
            if abort_reason == "diverging":
                raise CatchUpTimeout(
                    "%s: slave backlog is diverging (%d syncsets and "
                    "strictly growing); aborting ahead of the %.0f s "
                    "deadline"
                    % (self.config.policy.name, backlog,
                       self.config.catchup_deadline),
                    backlog=backlog, elapsed=elapsed, reason="diverging")
            raise CatchUpTimeout(
                "%s: slave could not catch up with the master within "
                "%.0f s (backlog: %d syncsets)"
                % (self.config.policy.name,
                   self.config.catchup_deadline, backlog),
                backlog=backlog, elapsed=elapsed)
        watchdog_control["stop"] = True
        report.caught_up_at = self.env.now
        self.tracer.finish(
            phase_span, rounds=state.propagator.stats.rounds,
            syncsets=state.propagator.stats.syncsets_replayed)

    def _handover_phase(self, run: _MigrationRun
                        ) -> Generator[Any, Any, MigrationReport]:
        """Step 4: suspend, drain, switch over, resume.

        The ownership switch is journalled as a two-step prepare /
        commit (see :class:`HandoverRecord`): a crash racing this phase
        — the source dying mid-drain, or the manager itself dying
        before the routing flip — always recovers to exactly one owner.
        Once the record is ``ready`` the destination holds every
        remotely-committed transaction, so even a source crash from
        here on rolls *forward* instead of aborting.
        """
        state, report = run.state, run.report
        tenant = run.tenant
        if run.journal is not None:
            run.journal.phase = "handover"
        phase_span = self.tracer.phase("handover",
                                       parent=run.migration_span)
        record = self._prepare_handover(tenant, report.source,
                                        run.destination)
        state.gate.close()
        if state.active_txns > 0:
            drained = Event(self.env)
            state.drain_waiters.append(drained)
            yield drained
        drain_events = []
        for engine in state.all_propagators():
            engine.request_stop()
            drain_events.append(engine.wait_fully_drained())
        yield self.env.all_of(drain_events)
        self._mark_handover_ready(record)
        # Persist the ready record before flipping the route: this is
        # the commit point, and the window it opens (a crash here rolls
        # *forward*) is exactly what the recovery rule resolves.
        yield self.env.timeout(self.config.handover_journal_sync)
        report.switched_at = self.env.now
        self.tracer.event("migration.switched", tenant=tenant,
                          destination=run.destination)
        if self.config.verify_consistency:
            equal, differences = states_equal(
                run.source_instance.tenant(tenant),
                run.dest_instance.tenant(tenant))
            report.consistent = equal
            report.inconsistencies = differences
            for name in list(state.standby_propagators):
                standby_equal, _diffs = states_equal(
                    run.source_instance.tenant(tenant),
                    run.standby_instances[name].tenant(tenant))
                report.standby_consistency[name] = standby_equal
        self._commit_handover(record)
        state.migrating = False
        propagator = state.propagator
        state.propagator = None
        state.change_tap = None
        state.standby_ssls.clear()
        state.standby_propagators.clear()
        if self.config.drop_source_copy:
            run.source_instance.drop_tenant(tenant)
        state.gate.open()
        report.ended_at = self.env.now
        stats = propagator.stats
        report.syncsets_propagated = stats.syncsets_replayed
        report.operations_propagated = stats.operations_replayed
        report.max_concurrent_players = stats.max_concurrent_players
        report.rounds = stats.rounds
        flushes_before, commits_before = run.wal_before[run.destination]
        report.slave_commit_count = (run.dest_instance.wal.commit_count
                                     - commits_before)
        report.slave_flush_count = (run.dest_instance.wal.flush_count
                                    - flushes_before)
        if report.slave_flush_count:
            report.slave_mean_group_size = (report.slave_commit_count
                                            / report.slave_flush_count)
        if self.validator is not None:
            report.lsir_violations = self.validator.violations()
        report.failed_standbys = list(state.failed_standbys)
        state.failed_standbys.clear()
        report.owner = run.destination
        report.source_crashed = run.source_instance.crashed
        if run.journal is not None:
            run.journal.state = JOURNAL_COMPLETED
            run.journal.phase = "done"
            run.journal.manager = None
        self.tracer.finish(phase_span)
        self.tracer.finish(
            run.migration_span, outcome="ok", owner=run.destination,
            source_crashed=report.source_crashed,
            rounds=report.rounds,
            max_concurrent_players=report.max_concurrent_players,
            syncsets=report.syncsets_propagated,
            slave_commit_count=report.slave_commit_count,
            slave_flush_count=report.slave_flush_count,
            consistent=report.consistent,
            failovers=report.failovers,
            standby_dropped=len(report.failed_standbys),
            resumed=report.resumed)
        self._publish_report_metrics(report, stats)
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # suspend / resume (journalled re-entry after a source crash)
    # ------------------------------------------------------------------
    def _suspend_migration(self, state: TenantState,
                           journal: MigrationJournal,
                           report: MigrationReport, phase: str) -> None:
        """Park a journalled migration instead of aborting it.

        The destination keeps its partial copy and the SSL keeps the
        backlog — ``state.migrating`` stays True so commits on the
        recovered source keep linking their SSBs, which is exactly what
        lets :meth:`resume_migration` catch up instead of re-dumping.
        The primary propagation engine is deliberately left attached
        and running: the *source* crashed, not the middleware, so the
        engine keeps draining the backlog toward the destination while
        the migration is parked, and the resume adopts it.  (Standbys
        are discarded — the resumed attempt re-runs without them.)
        """
        journal.state = JOURNAL_SUSPENDED
        journal.suspend_phase = phase
        journal.suspended_at = self.env.now
        journal.manager = None
        for proc in journal.snapshot_procs:
            if proc.is_alive:
                proc.interrupt("migration suspended")
        journal.snapshot_procs = []
        for name in sorted(state.standby_propagators):
            self._drop_standby(state, name, phase=phase,
                               reason="migration suspended")
        record = self._handovers.get(state.name)
        if record is not None and record.state == HANDOVER_PREPARED:
            self._rollback_handover(record, reason="migration suspended")
        if not state.gate.is_open:
            state.gate.open()
        report.outcome = "suspended"
        report.ended_at = self.env.now
        report.owner = report.source
        report.failed_standbys = list(state.failed_standbys)
        state.failed_standbys.clear()
        self.metrics.counter("migration.suspended").inc()
        self.tracer.event("migration.suspended", tenant=state.name,
                          phase=phase, resumes=journal.resumes,
                          chunks_restored=dict(journal.chunks_restored))
        self.reports.append(report)

    def _quiesce_for_resume(self, state: TenantState,
                            journal: MigrationJournal
                            ) -> Generator[Any, Any, None]:
        """Silence every leftover of the interrupted attempt.

        Idempotent from any journal offset: orphan dump/restore streams
        are interrupted and leftover standbys are dropped.  A healthy
        primary engine is *kept* — it holds SSBs it already claimed off
        the SSL, so the safe continuations are exactly two: adopt it
        (catch-up reuses it) or wait out its drain.  An engine caught
        mid-stop (the previous attempt died inside the handover drain)
        is drained here and retired into the journal's catch-up
        low-water mark; a *failed* engine makes the journal unsafe —
        its claimed SSBs died unreplayed, so the destination is
        incomplete in a way no journal offset records — and the resume
        abandons instead.
        """
        for proc in journal.snapshot_procs:
            if proc.is_alive:
                proc.interrupt("migration resumed")
        journal.snapshot_procs = []
        for name in sorted(state.standby_propagators):
            self._drop_standby(state, name, phase="resume",
                               reason="migration resumed")
        tap = state.change_tap
        if tap is not None:
            # Unpark an applier left waiting at a watermark of the
            # interrupted attempt: its marker is still at the tap
            # cursor, so cancelling fires the pending ``proceed`` and
            # the resumed walk brackets the re-selected chunk afresh.
            cancelled = tap.cancel_pending_markers()
            if cancelled:
                self.tracer.event("watermark.markers_cancelled",
                                  tenant=state.name, count=cancelled)
        elif journal.strategy == "watermark" and journal.phase == "dump":
            journal.state = JOURNAL_ABANDONED
            journal.manager = None
            state.migrating = False
            if not state.gate.is_open:
                state.gate.open()
            raise MigrationError(
                "cannot resume tenant %r: the watermark change tap was "
                "torn down mid-walk, so commit images since the last "
                "watermark are unrecoverable — re-migrate from scratch"
                % (state.name,))
        engine = state.propagator
        if engine is not None:
            if engine.failed is not None:
                journal.state = JOURNAL_ABANDONED
                journal.manager = None
                state.propagator = None
                state.migrating = False
                if state.change_tap is not None:
                    state.change_tap.cancel_pending_markers()
                    state.change_tap = None
                state.ssl.take_all()
                if not state.gate.is_open:
                    state.gate.open()
                raise MigrationError(
                    "cannot resume tenant %r: propagation failed while "
                    "the migration was parked (%s); the destination "
                    "copy is unrecoverable — re-migrate from scratch"
                    % (state.name, engine.failed))
            if engine._stop_requested:
                # The previous attempt died inside the handover drain.
                # Wait the drain out (the gate is still closed, so the
                # backlog is bounded) and retire the engine.
                if engine.process is not None and engine.process.is_alive:
                    yield engine.wait_fully_drained()
                journal.replayed_syncsets += (
                    engine.stats.syncsets_replayed)
                state.propagator = None
            # else: healthy and running — catch-up adopts it.
        if not state.gate.is_open:
            state.gate.open()
        state.migrating = True

    def resume_migration(self, tenant: str,
                         options: Optional[MigrationOptions] = None
                         ) -> Generator[Any, Any, MigrationReport]:
        """Re-enter an interrupted migration from its journal.

        The counterpart of :meth:`recover_routing` for whole
        migrations: where recovery resolves the in-doubt *handover* and
        keeps the surviving owner, resume picks the journalled
        migration back up after the crashed master recovered — skipping
        every chunk all destinations already installed and replaying
        only the SSL backlog that accumulated since, instead of
        re-dumping from scratch.

        Invariants (asserted by the race sweep in
        ``tests/test_resume_race.py``): exactly one owner at every
        re-entry offset, no remotely-committed transaction lost, and no
        chunk double-shipped.  Raises :class:`MigrationError` when
        there is nothing to resume and :class:`SourceCrashed` when the
        journalled source is still down.
        """
        state = self.tenant_state(tenant)
        journal = self._journals.get(tenant)
        if journal is None:
            raise MigrationError(
                "tenant %r has no migration journal to resume" % tenant)
        if journal.state in (JOURNAL_COMPLETED, JOURNAL_ABANDONED):
            raise MigrationError(
                "migration journal for tenant %r is %s; nothing to "
                "resume" % (tenant, journal.state))
        if (journal.state == JOURNAL_ACTIVE
                and journal.manager is not None
                and journal.manager.is_alive):
            raise MigrationError(
                "tenant %r migration is still being managed" % tenant)
        record = self._handovers.get(tenant)
        if record is not None and record.state == HANDOVER_READY:
            # The interrupted attempt got past the point of no return:
            # roll forward exactly as recover_routing() would.
            self._commit_handover(record, recovered=True)
        if self.route(tenant) == journal.destination:
            return self._settle_resumed_handover(state, journal)
        if record is not None and record.state == HANDOVER_PREPARED:
            self._rollback_handover(record, reason="resume")
        source_instance = self.cluster.node(journal.source).instance
        if source_instance.crashed:
            raise SourceCrashed(journal.source, "resume")
        opts = (options or MigrationOptions()).resolve(self.config)
        # A resume continues the journalled attempt; its snapshot
        # strategy is a fact of the journal, not a per-call choice.
        opts = replace(opts, strategy=SnapshotStrategy(journal.strategy))
        watermark = opts.strategy is SnapshotStrategy.WATERMARK
        journal.state = JOURNAL_ACTIVE
        journal.resumes += 1
        journal.manager = self.env.active_process
        dest_instance = self.cluster.node(journal.destination).instance
        report = MigrationReport(tenant, journal.source,
                                 journal.destination,
                                 self.config.policy.name,
                                 started_at=self.env.now,
                                 pipelined=journal.pipelined,
                                 strategy=journal.strategy)
        report.mts = journal.mts
        report.resumed = True
        self.metrics.counter("migration.resumed").inc()
        self.tracer.event(
            "migration.resumed", tenant=tenant,
            phase=journal.suspend_phase or journal.phase,
            resumes=journal.resumes,
            chunks_restored=dict(journal.chunks_restored),
            total_chunks=journal.total_chunks,
            backlog=state.ssl.pending_count())
        migration_span = self.tracer.start(
            "migration", kind=MIGRATION, tenant=tenant,
            source=journal.source, destination=journal.destination,
            policy=self.config.policy.name, standbys=0,
            pipelined=True,  # resumed snapshots always stream
            strategy=journal.strategy,
            resumed=True, resumes=journal.resumes)
        run = _MigrationRun(
            tenant=tenant, state=state, opts=opts, report=report,
            migration_span=migration_span,
            source_instance=source_instance,
            dest_instance=dest_instance,
            destination=journal.destination, standby_instances={},
            source_down=source_instance.wait_crashed(),
            snapshot_csn=journal.snapshot_csn, journal=journal,
            resume=True)
        try:
            yield from self._quiesce_for_resume(state, journal)
        except MigrationError:
            self.tracer.finish(migration_span, outcome="abandoned",
                               reason="unresumable",
                               owner=journal.source)
            raise
        restored = journal.chunks_restored.get(run.destination, 0)
        if (watermark and restored
                and not run.dest_instance.has_tenant(tenant)):
            # A watermark copy lost while parked restarts the key walk
            # from scratch: every change record already drained into
            # the lost copy is re-covered by the live re-selects (the
            # current row state *includes* those changes), so unlike
            # the frozen-plan stream below nothing is unrecoverable.
            journal.watermark_cursor = None
            journal.watermark_chunks = 0
            journal.chunks_restored[run.destination] = 0
            journal.chunk_log.pop(run.destination, None)
            journal.phase = "dump"
            restored = 0
            self.tracer.event("watermark.walk_restarted", tenant=tenant,
                              destination=run.destination)
        elif restored and not run.dest_instance.has_tenant(tenant):
            # The destination lost its partial copy while the journal
            # was parked.  Chunks can be re-shipped from the frozen
            # plan, but a syncset already replayed into the lost copy
            # is gone for good — only a dump-phase journal (no replay
            # yet) may start the ship over.
            if (state.propagator is not None or journal.replayed_syncsets
                    or journal.phase != "dump"):
                journal.state = JOURNAL_ABANDONED
                journal.manager = None
                if state.propagator is not None:
                    state.propagator.request_stop()
                    state.propagator = None
                state.migrating = False
                state.ssl.take_all()
                self.tracer.finish(migration_span, outcome="abandoned",
                                   reason="destination_lost_copy",
                                   owner=journal.source)
                raise MigrationError(
                    "cannot resume tenant %r: destination %s lost its "
                    "copy after catch-up began — re-migrate from "
                    "scratch" % (tenant, run.destination))
            journal.chunks_restored[run.destination] = 0
            journal.chunk_log.pop(run.destination, None)
            restored = 0
        if watermark:
            # The key walk has no frozen chunk plan; the journal phase
            # says whether it finished before the interruption.
            snapshot_done = journal.phase != "dump"
        else:
            snapshot_done = restored >= journal.total_chunks
        if snapshot_done:
            # Snapshot fully installed before the interruption: skip
            # straight to catch-up.
            report.snapshot_at = self.env.now
            report.restored_at = self.env.now
            report.snapshot_size_mb = journal.size_mb
            report.chunks_skipped = (journal.watermark_chunks if watermark
                                     else journal.total_chunks)
        else:
            journal.phase = "dump"
            phase_span = self.tracer.phase(
                "dump", parent=migration_span, pipelined=True,
                resumed=True,
                **({"strategy": "watermark"} if watermark else {}))
            yield from self._snapshot_phase(run, phase_span)
        yield from self._catchup_phase(run)
        return (yield from self._handover_phase(run))

    def _settle_resumed_handover(self, state: TenantState,
                                 journal: MigrationJournal
                                 ) -> MigrationReport:
        """Finish a resume whose handover already rolled forward.

        The interrupted attempt crashed after its ready record (or even
        after the routing flip): the destination owns the tenant and
        holds every remotely-committed transaction, so the only work
        left is tearing down the source-side migration scaffolding and
        reporting the migration as complete.
        """
        tenant = state.name
        for proc in journal.snapshot_procs:
            if proc.is_alive:
                proc.interrupt("handover rolled forward")
        journal.snapshot_procs = []
        state.migrating = False
        if state.propagator is not None:
            state.propagator.request_stop()
            state.propagator = None
        if state.change_tap is not None:
            state.change_tap.cancel_pending_markers()
            state.change_tap = None
        state.ssl.take_all()
        for name in sorted(state.standby_propagators):
            self._drop_standby(state, name, phase="resume",
                               reason="handover rolled forward")
        if not state.gate.is_open:
            state.gate.open()
        journal.state = JOURNAL_COMPLETED
        journal.phase = "done"
        journal.resumes += 1
        journal.manager = None
        report = MigrationReport(tenant, journal.source,
                                 journal.destination,
                                 self.config.policy.name,
                                 started_at=self.env.now,
                                 pipelined=journal.pipelined,
                                 strategy=journal.strategy)
        report.mts = journal.mts
        report.resumed = True
        report.snapshot_at = self.env.now
        report.restored_at = self.env.now
        report.caught_up_at = self.env.now
        report.switched_at = self.env.now
        report.ended_at = self.env.now
        report.snapshot_size_mb = journal.size_mb
        report.chunks_skipped = journal.total_chunks
        report.owner = journal.destination
        report.failed_standbys = list(state.failed_standbys)
        state.failed_standbys.clear()
        self.metrics.counter("migration.resumed").inc()
        self.metrics.counter("migration.completed").inc()
        self.tracer.event("migration.resumed", tenant=tenant,
                          phase="handover", resumes=journal.resumes,
                          settled=True)
        span = self.tracer.start(
            "migration", kind=MIGRATION, tenant=tenant,
            source=journal.source, destination=journal.destination,
            policy=self.config.policy.name, standbys=0,
            pipelined=journal.pipelined, strategy=journal.strategy,
            resumed=True, settled=True)
        self.tracer.finish(span, outcome="ok",
                           owner=journal.destination, resumed=True,
                           settled=True)
        self.reports.append(report)
        return report

    def _pipelined_snapshot(self, run: _MigrationRun, dump_span: Any,
                            restore_errors: Dict[str, Optional[str]],
                            retry_backoff: Any) -> Generator:
        """Steps 1+2, streamed: dump, ship, and restore overlap.

        One producer process runs :func:`dump_stream` into a
        :class:`ChunkFeed`; per destination node, a network pump and a
        :func:`restore_stream` consume it through a bounded channel.
        Back-pressure flows the whole way: slow destination disk ->
        full channel -> idle pump -> stalled feed reader -> paused dump.

        Per-node failure semantics match the serial path: transient
        outages rewind the reader and resend from the feed base (the
        feed retains emitted chunks exactly as the serial path retains
        its materialised snapshot), crashes mark the node failed.

        On a resumed run the journal's frozen chunk plan governs the
        stream: the producer re-slices from the lowest chunk any node
        still needs and each node's restore re-enters at its own
        journalled offset.  Returns ``(dump_error, restore_span)`` with
        the restore span left open — the caller owns standby discard /
        failover and closes it.
        """
        tenant, opts, report = run.tenant, run.opts, run.report
        journal = run.journal
        rates = opts.rates
        nodes = [run.destination, *run.standby_instances]
        if run.resume:
            assert journal is not None
            size_mb = journal.size_mb
            total: Optional[int] = journal.total_chunks
            offsets = {name: min(journal.chunks_restored.get(name, 0),
                                 journal.total_chunks)
                       for name in nodes}
            base = min(offsets.values())
        else:
            size_mb = run.source_instance.tenant(tenant).size_mb()
            total = None
            offsets = {name: 0 for name in nodes}
            base = 0
        report.snapshot_size_mb = size_mb
        report.chunks_skipped = base
        started = self.env.now
        feed = ChunkFeed(self.env, depth=opts.pipeline_depth,
                         name="feed.%s" % tenant)
        readers = {name: feed.reader(name, start=offsets[name] - base)
                   for name in nodes}
        dump_result: Dict[str, Any] = {}

        def journal_progress(node_name: str) -> Any:
            def on_chunk(chunk: Any) -> None:
                done = journal.chunks_restored.get(node_name, 0)
                journal.chunks_restored[node_name] = max(
                    done, chunk.index + 1)
                journal.chunk_log.setdefault(node_name,
                                             []).append(chunk.index)
            return on_chunk

        def producer() -> Generator:
            try:
                chunks = yield from dump_stream(
                    run.source_instance, tenant, run.snapshot_csn,
                    rates, feed, chunk_mb=opts.chunk_mb,
                    start_index=base, total_chunks=total,
                    total_size_mb=size_mb if run.resume else None)
            except NodeCrashed as exc:
                dump_result["error"] = exc
                feed.fail(exc)
                self.tracer.finish(dump_span, outcome="failed")
            except RuntimeError as exc:
                # Every reader failed permanently; the per-node errors
                # in ``restore_errors`` tell the real story.
                dump_result["error"] = exc
                self.tracer.finish(dump_span, outcome="abandoned")
            except Interrupt:
                # Quiesced by a journalled re-entry; the resume's own
                # producer takes over from the journalled offsets.
                return
            else:
                report.chunks = chunks
                report.snapshot_at = self.env.now
                self.tracer.finish(dump_span, mts=report.mts,
                                   size_mb=size_mb, chunks=chunks,
                                   chunks_skipped=base)

        producer_proc = self.env.process(producer(),
                                         name="dump.%s" % tenant)
        restore_span = self.tracer.phase("restore",
                                         parent=run.migration_span,
                                         size_mb=size_mb, pipelined=True)

        def node_stream(node_name: str, instance: Any) -> Generator:
            """Pump + streaming restore for one node; never raises."""
            reader = readers[node_name]
            resume_from = offsets[node_name]
            attempt = 0
            while True:
                channel = Channel(self.env,
                                  capacity=opts.pipeline_depth,
                                  name="ship.%s.%s" % (tenant, node_name))
                pump = self.env.process(
                    self.cluster.network.pump_chunks(
                        reader, channel,
                        route=(report.source, node_name)),
                    name="pump.%s.%s" % (tenant, node_name))
                try:
                    yield from restore_stream(
                        instance, channel, rates, tenant_name=tenant,
                        resume_from=resume_from,
                        schemas=(journal.schemas if journal is not None
                                 else None),
                        expected_total=total,
                        on_chunk=(journal_progress(node_name)
                                  if journal is not None else None))
                    restore_errors[node_name] = None
                    return
                except NetworkDown as exc:
                    attempt += 1
                    if pump.is_alive:
                        pump.interrupt("ship retry")
                    if base > 0:
                        # Chunks below the feed base can never be
                        # re-shipped on this stream; keep the copy and
                        # re-enter at the base after the retry.
                        resume_from = base
                    else:
                        if instance.has_tenant(tenant):
                            # Discard the partial copy before resending.
                            instance.drop_tenant(tenant)
                        resume_from = 0
                        if journal is not None:
                            journal.chunks_restored[node_name] = 0
                            journal.chunk_log.pop(node_name, None)
                    if attempt > opts.retry_limit:
                        restore_errors[node_name] = str(exc)
                        reader.close()
                        return
                    yield from retry_backoff(node_name, attempt)
                    reader.rewind()
                except (NodeCrashed, SnapshotTruncated) as exc:
                    if pump.is_alive:
                        pump.interrupt("restore failed")
                    restore_errors[node_name] = str(exc)
                    reader.close()
                    return
                except Interrupt:
                    # Quiesced by a journalled re-entry.
                    if pump.is_alive:
                        pump.interrupt("migration suspended")
                    restore_errors[node_name] = "interrupted"
                    return

        runners = [self.env.process(
            node_stream(run.destination, run.dest_instance),
            name="restore.%s.%s" % (tenant, run.destination))]
        runners += [self.env.process(
            node_stream(name, instance),
            name="restore.%s.%s" % (tenant, name))
            for name, instance in run.standby_instances.items()]
        if journal is not None:
            journal.snapshot_procs = [producer_proc] + list(runners)
        yield self.env.all_of(runners)
        yield producer_proc  # the dump span is closed either way
        window = self.env.now - started
        dump_elapsed = report.snapshot_at - started
        if size_mb > 0 and dump_elapsed > 0:
            self.metrics.gauge("pipeline.dump_mb_s").set(
                size_mb / dump_elapsed)
        if size_mb > 0 and window > 0:
            self.metrics.gauge("pipeline.restore_mb_s").set(
                size_mb / window)
        self.metrics.gauge("pipeline.chunks").set(report.chunks)
        self.metrics.gauge("pipeline.backpressure_wait_s").set(
            feed.producer_wait_time)
        return dump_result.get("error"), restore_span

    def _watermark_snapshot(self, run: _MigrationRun, dump_span: Any,
                            restore_errors: Dict[str, Optional[str]],
                            retry_backoff: Any) -> Generator:
        """Steps 1+2, virtual-cut style: chunked selects under live load.

        The DBLog watermark algorithm: every committed transaction's
        row post-images flow through the tenant's :class:`ChangeTap`
        and are replayed on the destination by a
        :class:`ChangeStreamApplier` while this manager walks the key
        space in chunks.  Each chunk select is bracketed by ``lo`` /
        ``hi`` markers injected into the change stream; once the
        applier has consumed everything before ``hi`` it parks, chunk
        rows whose keys changed inside the window are dropped (the
        stream already delivered a newer image), the survivors ship
        over the shared prioritised bulk stream and install, and the
        applier proceeds.  Installs therefore land strictly between the
        in-window records and anything newer, so the copy is
        snapshot-equivalent without ever freezing a CSN — and the
        post-walk catch-up is bounded by chunk size, not dump duration.

        Returns the still-open ``restore`` span (the caller's shared
        tail stamps ``restored_at`` and closes it); destination
        failures land in ``restore_errors`` like the other arms, and a
        source crash raises through :meth:`_abort_source_crash`
        (suspending first when journalled — ``journal.watermark_cursor``
        / ``watermark_chunks`` let the resume re-enter the key walk at
        the last fully installed chunk).
        """
        state, opts, report = run.state, run.opts, run.report
        tenant = run.tenant
        rates = opts.rates
        journal = run.journal
        tap = state.change_tap
        assert tap is not None, "watermark migration without a change tap"
        source_db = run.source_instance.tenant(tenant)
        size_mb = source_db.size_mb()
        total_rows = source_db.row_count()
        mb_per_row = size_mb / total_rows if total_rows else 0.0
        chunk_cap = (opts.chunk_mb if opts.chunk_mb is not None
                     else rates.chunk_mb)
        rows_per_chunk = (max(1, int(chunk_cap / mb_per_row))
                          if mb_per_row > 0 else 1)
        report.snapshot_size_mb = size_mb
        cursor: Any = None
        chunk_index = 0
        if journal is not None:
            cursor = journal.watermark_cursor
            chunk_index = journal.watermark_chunks
            report.chunks_skipped = journal.watermark_chunks
        if journal is not None and journal.schemas:
            specs = journal.schemas
        else:
            specs = []
            for table_name in source_db.catalog.table_names():
                table = source_db.table(table_name)
                specs.append(SchemaSpec(table_name, table.schema.columns,
                                        dict(table.schema.indexes)))
        if not run.dest_instance.has_tenant(tenant):
            create_from_schemas(run.dest_instance, tenant, specs,
                                source_db.fixed_overhead_mb,
                                source_db.size_multiplier)
        applier = state.propagator
        if applier is None:
            applier = ChangeStreamApplier(
                self.env, tap.consumer("dest"), report.source, state.ssl,
                run.dest_instance, tenant, self.cluster.network,
                self.config.policy, tracer=self.tracer,
                metrics=self.metrics)
            state.propagator = applier
            applier.start()
        # Standby fan-out off the same broadcast tap: each standby gets
        # its own named cursor (one feed, N consumers — no per-reader
        # re-read of the source) and replays the identical stream; the
        # chunk walk below ships every deduplicated chunk to standbys
        # too, so a surviving standby is exactly as complete as the
        # destination at every point past the walk.
        for name, instance in run.standby_instances.items():
            if name in state.standby_propagators:
                continue  # adopted across a resume
            if not instance.has_tenant(tenant):
                create_from_schemas(instance, tenant, specs,
                                    source_db.fixed_overhead_mb,
                                    source_db.size_multiplier)
            standby_applier = ChangeStreamApplier(
                self.env, tap.consumer("standby:%s" % name),
                report.source, state.ssl, instance, tenant,
                self.cluster.network, self.config.policy,
                tracer=self.tracer, metrics=self.metrics,
                metrics_prefix="propagation.standby.%s" % name)
            state.standby_propagators[name] = standby_applier
            standby_applier.start()
        restore_span = self.tracer.phase(
            "restore", parent=run.migration_span, size_mb=size_mb,
            pipelined=True, strategy="watermark")
        dest_tenant = run.dest_instance.tenant(tenant)

        def fail_destination(reason: str) -> None:
            restore_errors[run.destination] = reason
            # A mid-walk standby holds chunks only up to the point of
            # failure, so there is nothing complete to promote: discard
            # the lot and let the shared tail abort.
            for name in sorted(run.standby_instances):
                run.standby_instances.pop(name)
                self._drop_standby(state, name, phase="watermark",
                                   reason="primary walk failed: %s"
                                   % reason)
            self.tracer.finish(dump_span, outcome="failed")

        while True:
            lo = tap.marker("lo", chunk_index)
            self.tracer.event("watermark.lo", tenant=tenant,
                              chunk=chunk_index)
            applier.notify_linked()
            try:
                rows, next_cursor = yield from watermark_select(
                    run.source_instance, tenant, cursor, rows_per_chunk,
                    mb_per_row, rates)
            except NodeCrashed:
                self.tracer.finish(restore_span,
                                   outcome="source_crashed")
                self._abort_source_crash(state, run.dest_instance,
                                         tenant, report,
                                         run.migration_span, dump_span,
                                         phase="dump")
            hi = tap.marker("hi", chunk_index)
            applier.notify_linked()
            for prop in state.standby_propagators.values():
                prop.notify_linked()
            while not hi.reached.triggered:
                standby_failed = {
                    name: prop.wait_failed()
                    for name, prop in state.standby_propagators.items()}
                waits = [hi.reached, applier.wait_failed(),
                         run.source_down]
                waits.extend(standby_failed.values())
                fired = yield self.env.any_of(waits)
                if fired is run.source_down:
                    self.tracer.finish(restore_span,
                                       outcome="source_crashed")
                    self._abort_source_crash(state, run.dest_instance,
                                             tenant, report,
                                             run.migration_span,
                                             dump_span, phase="dump")
                if hi.reached.triggered:
                    break
                dropped = None
                for name, event in standby_failed.items():
                    if fired is event:
                        dropped = name
                        break
                if dropped is not None:
                    # Section 4.2 applied to the broadcast: discard the
                    # dead consumer's cursor (which may be the one the
                    # ``hi`` marker is still waiting on) and walk on.
                    reason = (state.standby_propagators[dropped].failed
                              or "replay failed")
                    run.standby_instances.pop(dropped, None)
                    self._drop_standby(state, dropped, phase="watermark",
                                       reason=reason)
                    continue
                # The destination applier died replaying the stream;
                # the shared tail aborts.
                fail_destination(applier.failed or "replay failed")
                return restore_span
            window = tap.window_keys(lo, hi)
            fresh = [(table_name, key, row)
                     for table_name, key, row in rows
                     if (table_name, key) not in window]
            chunk_mb = mb_per_row * len(fresh)
            attempt = 0
            while True:
                try:
                    if chunk_mb > 0:
                        yield from self.cluster.network.bulk_transfer(
                            report.source, run.destination, chunk_mb)
                    break
                except NetworkDown as exc:
                    attempt += 1
                    if attempt > opts.retry_limit:
                        fail_destination(str(exc))
                        return restore_span
                    yield from retry_backoff(run.destination, attempt)
            if chunk_mb > 0:
                yield from run.dest_instance.disk.write(chunk_mb)
                spec = run.dest_instance.disk.spec
                io_time = (spec.seek_latency
                           + chunk_mb / spec.write_bandwidth_mb_s)
                pace = restore_duration(chunk_mb, rates) - io_time
                if pace > 0:
                    yield self.env.timeout(pace)
            if run.dest_instance.crashed:
                fail_destination("%s crashed during watermark install"
                                 % run.destination)
                return restore_span
            csn = run.dest_instance.next_csn()
            for table_name, key, row in fresh:
                dest_tenant.table(table_name).install(key, csn, row)
            # Fan the deduplicated chunk out to the standbys before any
            # consumer resumes past ``hi``: installs must land strictly
            # between the in-window records and anything newer on every
            # copy, or the standby loses snapshot-equivalence.  A
            # standby that cannot take the chunk is discarded; it never
            # stalls the primary walk.
            for name in sorted(run.standby_instances):
                instance = run.standby_instances[name]
                standby_error: Optional[str] = None
                attempt = 0
                try:
                    while True:
                        try:
                            if chunk_mb > 0:
                                yield from (
                                    self.cluster.network.bulk_transfer(
                                        report.source, name, chunk_mb))
                            break
                        except NetworkDown as exc:
                            attempt += 1
                            if attempt > opts.retry_limit:
                                standby_error = str(exc)
                                break
                            yield from retry_backoff(name, attempt)
                    if standby_error is None and chunk_mb > 0:
                        yield from instance.disk.write(chunk_mb)
                except NodeCrashed as exc:
                    standby_error = str(exc)
                if standby_error is None and instance.crashed:
                    standby_error = ("%s crashed during watermark "
                                     "install" % name)
                if standby_error is not None:
                    run.standby_instances.pop(name)
                    self._drop_standby(state, name, phase="watermark",
                                       reason=standby_error)
                    continue
                standby_csn = instance.next_csn()
                standby_tenant = instance.tenant(tenant)
                for table_name, key, row in fresh:
                    standby_tenant.table(table_name).install(
                        key, standby_csn, row)
            if not hi.proceed.triggered:
                hi.proceed.succeed()
            self.tracer.event("watermark.hi", tenant=tenant,
                              chunk=chunk_index, rows=len(rows),
                              deduped=len(rows) - len(fresh),
                              window=len(window))
            chunk_index += 1
            report.chunks += 1
            if journal is not None:
                journal.watermark_chunks = chunk_index
                journal.watermark_cursor = next_cursor
                journal.chunks_restored[run.destination] = chunk_index
                journal.chunk_log.setdefault(
                    run.destination, []).append(chunk_index - 1)
                for name in run.standby_instances:
                    journal.chunks_restored[name] = chunk_index
                    journal.chunk_log.setdefault(
                        name, []).append(chunk_index - 1)
            if next_cursor is None:
                break
            cursor = next_cursor
        finalize_indexes(dest_tenant, specs)
        for name, instance in run.standby_instances.items():
            finalize_indexes(instance.tenant(tenant), specs)
        report.snapshot_at = self.env.now
        self.metrics.gauge("watermark.chunks").set(report.chunks)
        self.metrics.gauge("watermark.backlog_at_walk_end").set(
            tap.pending_count())
        self.tracer.finish(dump_span, mts=report.mts, size_mb=size_mb,
                           chunks=report.chunks,
                           chunks_skipped=report.chunks_skipped)
        return restore_span

    def _publish_report_metrics(self, report: MigrationReport,
                                stats: Any) -> None:
        """Mirror one finished migration into the metrics registry."""
        self.metrics.counter("migration.completed").inc()
        self.metrics.absorb("propagation", stats)
        self.metrics.absorb("migration.last", {
            "migration_time": report.migration_time,
            "dump_time": report.dump_time,
            "restore_time": report.restore_time,
            "catchup_time": report.catchup_time,
            "switch_time": report.switch_time,
            "snapshot_size_mb": report.snapshot_size_mb,
            "slave_commit_count": report.slave_commit_count,
            "slave_flush_count": report.slave_flush_count,
            "slave_mean_group_size": report.slave_mean_group_size,
            "failovers": report.failovers,
            "ship_retries": report.ship_retries,
            "chunks": report.chunks,
        })

    def fail_standby(self, tenant: str, node_name: str) -> None:
        """Drop a failed standby slave and continue the migration.

        Section 4.2: "If a slave fails, Madeus discards the slave and
        continues to propagate the remaining syncsets to the others."
        The standby's backlog is discarded and its propagator told to
        wind down; the primary slave (and other standbys) are
        unaffected.  (This manual hook shares its teardown with the
        automatic crash-detection path in :meth:`migrate`.)
        """
        state = self.tenant_state(tenant)
        if node_name not in state.standby_propagators:
            raise MigrationError("no standby %r for tenant %r"
                                 % (node_name, tenant))
        self._drop_standby(state, node_name, phase="manual",
                           reason="failed by operator")

    def _drop_standby(self, state: TenantState, node_name: str,
                      phase: str, reason: str) -> None:
        """Discard one standby: stop its engine, drop its backlog."""
        propagator = state.standby_propagators.pop(node_name, None)
        ssl = state.standby_ssls.pop(node_name, None)
        if ssl is not None:
            ssl.take_all()
        if propagator is not None:
            propagator.request_stop()
        if state.change_tap is not None:
            # Broadcast stream: forget this consumer's cursor so pending
            # watermark markers stop waiting on a dead reader.
            state.change_tap.discard_consumer("standby:%s" % node_name)
        state.failed_standbys.append(node_name)
        self.metrics.counter("migration.standby_dropped").inc()
        self.tracer.event("migration.standby_dropped", tenant=state.name,
                          node=node_name, phase=phase, reason=reason)

    def _promote_standby(self, state: TenantState,
                         standby_instances: Dict[str, Any],
                         report: MigrationReport, tenant: str,
                         failed: str, phase: str, reason: str):
        """Fail over: the first surviving standby becomes destination.

        During catch-up the standby's SSL and propagator simply take
        over the primary role — the standby replayed the same syncset
        stream, so it is exactly as caught up as its own backlog says.
        Under a watermark migration the standby consumed its own cursor
        of the shared broadcast tap, so only the engine swaps: the dead
        primary's cursor is discarded and the tap keeps feeding the
        survivor.  Survivor choice is sorted-order for determinism.
        """
        promoted = sorted(standby_instances)[0]
        instance = standby_instances.pop(promoted)
        standby_prop = state.standby_propagators.pop(promoted, None)
        standby_ssl = state.standby_ssls.pop(promoted, None)
        if standby_prop is not None:
            if standby_ssl is not None:
                old_ssl = state.ssl
                state.ssl = standby_ssl
                old_ssl.take_all()  # the dead destination's backlog
            state.propagator = standby_prop
        if state.change_tap is not None:
            # The dead primary's cursor must not hold up future markers;
            # the promoted applier keeps reading its own named cursor.
            state.change_tap.discard_consumer("dest")
        report.destination = promoted
        report.failovers += 1
        self.metrics.counter("migration.failover").inc()
        self.tracer.event("migration.failover", tenant=tenant,
                          failed=failed, promoted=promoted, phase=phase,
                          reason=reason)
        return promoted, instance

    # ------------------------------------------------------------------
    # two-step ownership switch (handover journal)
    # ------------------------------------------------------------------
    def _prepare_handover(self, tenant: str, source: str,
                          destination: str) -> HandoverRecord:
        """Journal the intent to switch ownership (step one of two)."""
        record = HandoverRecord(tenant, source, destination,
                                prepared_at=self.env.now)
        self._handovers[tenant] = record
        self.metrics.counter("migration.handover_prepared").inc()
        self.tracer.event("handover.prepare", tenant=tenant,
                          source=source, destination=destination)
        return record

    def _mark_handover_ready(self, record: HandoverRecord) -> None:
        """Point of no return: drains done, destination is complete."""
        record.state = HANDOVER_READY
        self.tracer.event("handover.ready", tenant=record.tenant,
                          destination=record.destination)

    def _commit_handover(self, record: HandoverRecord,
                         recovered: bool = False) -> None:
        """Step two: flip the routing entry to the destination."""
        record.state = HANDOVER_COMMITTED
        record.resolved_at = self.env.now
        self._routes[record.tenant] = record.destination
        self.metrics.counter("migration.handover_committed").inc()
        self.tracer.event("handover.commit", tenant=record.tenant,
                          owner=record.destination, recovered=recovered)

    def _rollback_handover(self, record: HandoverRecord,
                           reason: str) -> None:
        """Resolve an unfinished switch back to the source."""
        record.state = HANDOVER_ROLLED_BACK
        record.resolved_at = self.env.now
        self._routes[record.tenant] = record.source
        self.metrics.counter("migration.handover_rolled_back").inc()
        self.tracer.event("handover.rollback", tenant=record.tenant,
                          owner=record.source, reason=reason)

    def _abort_source_crash(self, state: TenantState, dest_instance: Any,
                            tenant: str, report: MigrationReport,
                            migration_span: Any, phase_span: Any,
                            phase: str) -> None:
        """Abort because the master crashed; raises :class:`SourceCrashed`.

        Section 4.2: "if the master fails, Madeus aborts the migration."
        The tenant keeps routing to the source, and nothing committed
        remotely is lost — the commit protocol installs versions only
        after the WAL flush, so every transaction the customer saw
        commit survives the crash and WAL-replay recovery on the source.

        Under a journalled (``resumable=True``) migration the abort is
        *suspension* instead: progress stays in the journal so
        :meth:`resume_migration` can re-enter after the master recovers.
        Either way :class:`SourceCrashed` propagates to the caller.
        """
        report.source_crashed = True
        self.metrics.counter("migration.source_crashed").inc()
        self.tracer.event("migration.source_crashed", tenant=tenant,
                          source=report.source, phase=phase)
        journal = self._journals.get(tenant)
        if journal is not None and journal.state == JOURNAL_ACTIVE:
            self._suspend_migration(state, journal, report, phase)
            self.tracer.finish(phase_span, outcome="source_crashed")
            self.tracer.finish(migration_span, outcome="suspended",
                               reason="source_crashed",
                               owner=report.source)
            raise SourceCrashed(report.source, phase)
        self._abort_migration(state, dest_instance, tenant)
        self.tracer.finish(phase_span, outcome="source_crashed")
        self.tracer.finish(migration_span, outcome="aborted",
                           reason="source_crashed", owner=report.source)
        self._finalize_abort(state, report)
        raise SourceCrashed(report.source, phase)

    def _finalize_abort(self, state: TenantState,
                        report: MigrationReport) -> None:
        """Stamp and record a report for a migration that aborted.

        Aborted migrations are reported too: ``ended_at`` is set (so
        ``migration_time`` is meaningful), ``outcome`` says why it is
        not "ok", and the report joins :attr:`reports` and the metrics
        registry like any completed migration.  The source keeps (or
        recovers) ownership, and any handover record left in doubt by
        the abort rolls back so the journal resolves to one owner.
        """
        report.outcome = "aborted"
        report.ended_at = self.env.now
        report.owner = report.source
        report.failed_standbys = list(state.failed_standbys)
        state.failed_standbys.clear()
        record = self._handovers.get(report.tenant)
        if record is not None and record.state in (HANDOVER_PREPARED,
                                                   HANDOVER_READY):
            self._rollback_handover(record, reason="migration aborted")
        journal = self._journals.get(report.tenant)
        if journal is not None and journal.state == JOURNAL_ACTIVE:
            journal.state = JOURNAL_ABANDONED
            journal.manager = None
        self.metrics.counter("migration.aborted").inc()
        self.metrics.absorb("migration.last", {
            "migration_time": report.migration_time,
            "dump_time": report.dump_time,
            "snapshot_size_mb": report.snapshot_size_mb,
            "failovers": report.failovers,
            "ship_retries": report.ship_retries,
        })
        self.reports.append(report)

    def _divergence_watchdog(self, state: TenantState, fired: Event,
                             control: Dict[str, bool],
                             opts: MigrationOptions) -> Generator:
        """Abort-early detector over the primary replay backlog.

        Samples the replication backlog each interval (the SSL — read
        live, so a promoted standby's SSL is followed automatically —
        or the change tap under a watermark migration) and fires
        once the backlog has grown *strictly monotonically* across the
        whole window by at least the configured floor.  A healthy
        catch-up oscillates toward zero and never sustains that, so a
        positive signal means replay throughput is provably below the
        master's commit rate — the situation the paper reports as "N/A".
        """
        samples: List[int] = []
        while not control["stop"]:
            yield self.env.timeout(opts.divergence_interval)
            if control["stop"]:
                return
            samples.append(self._replication_backlog(state))
            if len(samples) > opts.divergence_window:
                samples.pop(0)
            if (len(samples) == opts.divergence_window
                    and all(later > earlier for earlier, later
                            in zip(samples, samples[1:]))
                    and (samples[-1] - samples[0]
                         >= opts.divergence_min_growth)):
                self.tracer.event("migration.diverging",
                                  tenant=state.name,
                                  samples=list(samples))
                if not fired.triggered:
                    fired.succeed()
                return

    def _abort_migration(self, state: TenantState,
                         dest_instance: Any, tenant: str) -> None:
        """Tear down a failed migration: stop linking and drop backlog.

        The orphaned slave copy is intentionally left in place: in-flight
        players may still be replaying against it, and the destination is
        abandoned by the caller anyway (the paper reports this outcome as
        "N/A" for B-CON under heavy workload).
        """
        del dest_instance, tenant
        state.migrating = False
        if state.propagator is not None:
            state.propagator.request_stop()
            state.propagator = None
        # A watermark tap dies with the migration: unpark any applier
        # waiting at a marker so its engine can wind down, then stop
        # capturing commit images.
        if state.change_tap is not None:
            state.change_tap.cancel_pending_markers()
            state.change_tap = None
        # Unlink any backlog so the SSL does not leak into a retry.
        state.ssl.take_all()
        # Standby engines must wind down too, or their propagators and
        # SSLs would leak into (and corrupt) a retry of the migration.
        for name in sorted(state.standby_propagators):
            self._drop_standby(state, name, phase="abort",
                               reason="migration aborted")
