"""Parallel multi-tenant migration scheduling.

The paper's Section 5.5 experiment migrates tenants one at a time; a
consolidation or evacuation event in a real fleet rarely has that
luxury.  :class:`MigrationScheduler` runs N tenant migrations as
concurrent sim-clock players over one :class:`Middleware`:

* each submitted job is a full four-step :meth:`Middleware.migrate`;
* jobs admitted together contend honestly for the network — their
  snapshot streams split per-link bandwidth via the shared-link model
  (:meth:`~repro.net.Network.bulk_transfer`) instead of each seeing the
  full rate;
* restores interleave chunk-by-chunk on a shared destination: order
  within one tenant stays sequential (the restore stream), but
  independent tenants overlap, bounded by the admission cap;
* the admission order is a policy knob — ``fifo`` (submission order),
  ``round-robin`` (interleave by source node, spreading load across
  egress links), or ``smallest-first`` (shortest-job-first on tenant
  size, minimising mean wait).

All knobs live on :class:`ScheduleOptions`, which mirrors the
:class:`MigrationOptions` shape: every field defaults to ``None`` =
"use the default", and :meth:`ScheduleOptions.resolve` fills them in.

One failed job never stops the schedule: per-job errors are captured on
the :class:`JobOutcome` and the remaining jobs keep running — mirroring
how the fault-tolerant single-migration path degrades (drop a standby,
keep going) rather than cancelling everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import (
    CatchUpTimeout,
    MigrationError,
    NetworkDown,
    NodeCrashed,
)
from ..obs.trace import SPAN
from ..sim.sync import Semaphore
from .middleware import Middleware, MigrationOptions, MigrationReport

#: Admission-order policies understood by :class:`ScheduleOptions`.
SCHEDULE_POLICIES = ("fifo", "round-robin", "smallest-first")


@dataclass(frozen=True)
class ScheduleOptions:
    """Per-schedule knobs for :class:`MigrationScheduler`.

    Mirrors :class:`MigrationOptions`: every field defaults to ``None``
    meaning "use the default", so callers only name what they change::

        ScheduleOptions(policy="smallest-first", max_concurrent=2)
    """

    #: Admission order: one of :data:`SCHEDULE_POLICIES` (default fifo).
    policy: Optional[str] = None
    #: Cap on migrations in flight at once; ``0`` means unlimited.
    max_concurrent: Optional[int] = None
    #: Default per-job knobs; a job's own options override this.
    migration: Optional[MigrationOptions] = None

    def resolve(self) -> "ScheduleOptions":
        """A copy with every ``None`` replaced by its default."""
        policy = self.policy if self.policy is not None else "fifo"
        if policy not in SCHEDULE_POLICIES:
            raise ValueError("unknown schedule policy %r; expected one "
                             "of %s" % (policy,
                                        ", ".join(SCHEDULE_POLICIES)))
        max_concurrent = (self.max_concurrent
                          if self.max_concurrent is not None else 0)
        if max_concurrent < 0:
            raise ValueError("max_concurrent must be >= 0")
        return replace(self, policy=policy,
                       max_concurrent=max_concurrent,
                       migration=self.migration or MigrationOptions())


@dataclass
class JobOutcome:
    """What happened to one submitted migration."""

    tenant: str
    source: str
    destination: str
    submitted_at: float
    started_at: float = 0.0
    ended_at: float = 0.0
    #: "ok", "aborted" (clean abort, tenant stays on source), or
    #: "failed" (rejected or torn down by an unrecovered fault).
    outcome: str = "pending"
    error: Optional[str] = None
    report: Optional[MigrationReport] = None

    @property
    def queue_wait(self) -> float:
        """Sim time spent waiting for admission."""
        return self.started_at - self.submitted_at

    @property
    def duration(self) -> float:
        """Sim time from admission to completion."""
        return self.ended_at - self.started_at


@dataclass
class ScheduleReport:
    """Everything one scheduler run reports."""

    policy: str
    max_concurrent: int
    started_at: float = 0.0
    ended_at: float = 0.0
    #: Jobs in admission order (the order the policy chose).
    jobs: List[JobOutcome] = field(default_factory=list)
    #: High-water mark of migrations in flight at once.
    max_in_flight: int = 0
    #: Per-port busy fraction over the schedule window, keyed by port
    #: name (``node0.egress`` ...); only ports that carried bytes.
    link_utilisation: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_clock(self) -> float:
        """Sim time from first admission to last completion."""
        return self.ended_at - self.started_at

    @property
    def ok_count(self) -> int:
        """Jobs that finished with outcome ``ok``."""
        return sum(1 for job in self.jobs if job.outcome == "ok")

    @property
    def total_queue_wait(self) -> float:
        """Summed admission wait across all jobs."""
        return sum(job.queue_wait for job in self.jobs)

    def job(self, tenant: str) -> JobOutcome:
        """The outcome for ``tenant``'s migration."""
        for outcome in self.jobs:
            if outcome.tenant == tenant:
                return outcome
        raise KeyError("no job for tenant %r" % tenant)


class MigrationScheduler:
    """Run several tenant migrations concurrently over one middleware.

    Usage is submit-then-run::

        scheduler = MigrationScheduler(mw, ScheduleOptions(
            policy="smallest-first", max_concurrent=2))
        scheduler.submit("A", "node1")
        scheduler.submit("B", "node1")
        report = yield from scheduler.run()      # inside a process
        # or: proc = scheduler.start(); env.run(); proc.value

    ``run`` admits jobs in the order the policy dictates, bounded by
    ``max_concurrent``, and returns a :class:`ScheduleReport` once every
    job has finished one way or another.
    """

    def __init__(self, middleware: Middleware,
                 options: Optional[ScheduleOptions] = None):
        self.middleware = middleware
        self.env = middleware.env
        self.options = (options or ScheduleOptions()).resolve()
        self._pending: List[Tuple[str, str,
                                  Optional[MigrationOptions]]] = []
        self._running = False

    # ------------------------------------------------------------------
    def submit(self, tenant: str, destination: str,
               options: Optional[MigrationOptions] = None) -> None:
        """Queue one migration; runs when :meth:`run` admits it."""
        if self._running:
            raise MigrationError(
                "cannot submit to a schedule that is already running")
        if options is not None and not isinstance(options,
                                                  MigrationOptions):
            raise TypeError("submit() takes a MigrationOptions "
                            "instance, got %r"
                            % (type(options).__name__,))
        self._pending.append((tenant, destination, options))

    # ------------------------------------------------------------------
    def _ordered_jobs(self) -> List[Tuple[str, str,
                                          Optional[MigrationOptions]]]:
        """Pending jobs in the admission order the policy dictates."""
        jobs = list(self._pending)
        policy = self.options.policy
        if policy == "fifo":
            return jobs
        if policy == "smallest-first":
            def tenant_size(job: Tuple) -> float:
                tenant = job[0]
                source = self.middleware.route(tenant)
                instance = self.middleware.cluster.node(source).instance
                return instance.tenant(tenant).size_mb()
            return sorted(jobs, key=tenant_size)
        # round-robin: one job per source node per cycle, so concurrent
        # admissions spread across egress links instead of piling onto
        # one node's port.
        buckets: Dict[str, List[Tuple]] = {}
        for job in jobs:
            buckets.setdefault(self.middleware.route(job[0]),
                               []).append(job)
        ordered: List[Tuple] = []
        queues = list(buckets.values())
        while queues:
            queues = [queue for queue in queues if queue]
            for queue in queues:
                if queue:
                    ordered.append(queue.pop(0))
        return ordered

    def run(self) -> Generator[Any, Any, ScheduleReport]:
        """Process body: admit, migrate, collect, report."""
        if self._running:
            raise MigrationError("schedule is already running")
        self._running = True
        opts = self.options
        metrics = self.middleware.metrics
        tracer = self.middleware.tracer
        report = ScheduleReport(policy=opts.policy,
                                max_concurrent=opts.max_concurrent,
                                started_at=self.env.now)
        schedule_span = tracer.start(
            "schedule", kind=SPAN, policy=opts.policy,
            max_concurrent=opts.max_concurrent,
            jobs=len(self._pending))
        gate: Optional[Semaphore] = None
        if opts.max_concurrent > 0:
            gate = Semaphore(self.env, value=opts.max_concurrent)
        in_flight = [0]
        concurrent_gauge = metrics.gauge("scheduler.concurrent")

        def job_player(outcome: JobOutcome,
                       options: Optional[MigrationOptions]
                       ) -> Generator:
            if gate is not None:
                yield from gate.acquire()
            outcome.started_at = self.env.now
            metrics.histogram("scheduler.queue_wait").observe(
                outcome.queue_wait)
            in_flight[0] += 1
            report.max_in_flight = max(report.max_in_flight,
                                       in_flight[0])
            concurrent_gauge.set(in_flight[0])
            job_span = tracer.start(
                "schedule.job", kind=SPAN, parent=schedule_span,
                tenant=outcome.tenant, destination=outcome.destination,
                queue_wait=outcome.queue_wait)
            try:
                outcome.report = yield from self.middleware.migrate(
                    outcome.tenant, outcome.destination,
                    options or opts.migration)
                outcome.outcome = "ok"
            except CatchUpTimeout as exc:
                outcome.outcome = "aborted"
                outcome.error = str(exc)
            except (MigrationError, NetworkDown, NodeCrashed) as exc:
                outcome.outcome = "failed"
                outcome.error = str(exc)
            finally:
                outcome.ended_at = self.env.now
                in_flight[0] -= 1
                concurrent_gauge.set(in_flight[0])
                tracer.finish(job_span, outcome=outcome.outcome)
                metrics.counter("scheduler.jobs_%s"
                                % outcome.outcome).inc()
                if gate is not None:
                    gate.release()

        players = []
        for tenant, destination, options in self._ordered_jobs():
            outcome = JobOutcome(tenant=tenant,
                                 source=self.middleware.route(tenant),
                                 destination=destination,
                                 submitted_at=self.env.now)
            report.jobs.append(outcome)
            players.append(self.env.process(
                job_player(outcome, options),
                name="schedule.%s" % tenant))
        if players:
            yield self.env.all_of(players)
        report.ended_at = self.env.now
        network = self.middleware.cluster.network
        for name, port in sorted(network.link_ports().items()):
            if port.bytes_mb <= 0:
                continue
            utilisation = port.utilisation(since=report.started_at)
            report.link_utilisation[name] = utilisation
            metrics.gauge("scheduler.link.%s.utilisation"
                          % name).set(utilisation)
        tracer.finish(schedule_span, ok=report.ok_count,
                      max_in_flight=report.max_in_flight,
                      wall_clock=report.wall_clock)
        self._running = False
        self._pending = []
        return report

    def start(self, name: str = "scheduler") -> Any:
        """Spawn :meth:`run` as a process; its ``value`` is the report."""
        return self.env.process(self.run(), name=name)
