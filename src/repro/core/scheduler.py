"""Parallel multi-tenant migration scheduling.

The paper's Section 5.5 experiment migrates tenants one at a time; a
consolidation or evacuation event in a real fleet rarely has that
luxury.  :class:`MigrationScheduler` runs N tenant migrations as
concurrent sim-clock players over one :class:`Middleware`:

* each submitted job is a full four-step :meth:`Middleware.migrate`;
* jobs admitted together contend honestly for the network — their
  snapshot streams split per-link bandwidth via the shared-link model
  (:meth:`~repro.net.Network.bulk_transfer`) instead of each seeing the
  full rate;
* restores interleave chunk-by-chunk on a shared destination: order
  within one tenant stays sequential (the restore stream), but
  independent tenants overlap, bounded by the admission cap;
* the admission order is a policy knob — ``fifo`` (submission order),
  ``round-robin`` (interleave by source node, spreading load across
  egress links), or ``smallest-first`` (shortest-job-first on tenant
  size, minimising mean wait).

All knobs live on :class:`ScheduleOptions`, which mirrors the
:class:`MigrationOptions` shape: every field defaults to ``None`` =
"use the default", and :meth:`ScheduleOptions.resolve` fills them in.

One failed job never stops the schedule: per-job errors are captured on
the :class:`JobOutcome` and the remaining jobs keep running — mirroring
how the fault-tolerant single-migration path degrades (drop a standby,
keep going) rather than cancelling everything.

Scheduler-level recovery: with ``retry_limit > 0`` a failed or aborted
job requeues with capped exponential backoff instead of giving up.  The
scheduler remembers destinations that died under the job
(*excluded-destination memory*) and retries into the next alternate
named at :meth:`MigrationScheduler.submit` time, so one faulted
migration neither wedges the schedule nor keeps retrying into the same
dead node.  A :class:`~repro.errors.SourceCrashed` abort is final by
default — the tenant's master must recover first, and the paper's rule
is to abort and keep serving from the source.  With
``ScheduleOptions(resume=True)`` and a journalled
(:attr:`MigrationOptions.resumable`) migration, the scheduler instead
waits for the crashed master's recovery
(:meth:`~repro.engine.instance.DbmsInstance.wait_recovered`) and
re-enters the parked migration via
:meth:`Middleware.resume_migration` — skipping every chunk the
destination already installed instead of re-dumping from scratch.
Non-ok outcomes are stamped with the fault windows that overlapped the
job (:attr:`JobOutcome.fault_events`), so an injected-fault abort is
distinguishable from a logic error straight from the report.

Besides the batch submit-then-run shape, the scheduler has a *service
mode* for long-running control planes (the continuous rebalancer):
:meth:`MigrationScheduler.start_service` opens a persistent schedule,
:meth:`MigrationScheduler.submit` then admits each job immediately
(still bounded by ``max_concurrent`` and returning the job's player
process so the caller can wait on it), and
:meth:`MigrationScheduler.stop_service` drains the in-flight jobs and
returns the accumulated :class:`ScheduleReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..errors import (
    CatchUpTimeout,
    MigrationError,
    NetworkDown,
    NodeCrashed,
    SourceCrashed,
)
from ..obs.trace import FAULT, SPAN
from ..sim.sync import Semaphore
from .middleware import (
    JOURNAL_SUSPENDED,
    Middleware,
    MigrationOptions,
    MigrationReport,
)
from .watermark import SnapshotStrategy

#: Admission-order policies understood by :class:`ScheduleOptions`.
SCHEDULE_POLICIES = ("fifo", "round-robin", "smallest-first")


@dataclass(frozen=True)
class ScheduleOptions:
    """Per-schedule knobs for :class:`MigrationScheduler`.

    Mirrors :class:`MigrationOptions`: every field defaults to ``None``
    meaning "use the default", so callers only name what they change::

        ScheduleOptions(policy="smallest-first", max_concurrent=2)
    """

    #: Admission order: one of :data:`SCHEDULE_POLICIES` (default fifo).
    policy: Optional[str] = None
    #: Cap on migrations in flight at once; ``0`` means unlimited.
    max_concurrent: Optional[int] = None
    #: Snapshot strategy applied to every job whose own
    #: :class:`MigrationOptions` does not name one — the same
    #: :class:`~repro.core.watermark.SnapshotStrategy` knob as
    #: ``MigrationOptions.strategy`` / ``RebalanceOptions.strategy``.
    strategy: Optional["SnapshotStrategy"] = None
    #: Default per-job knobs; a job's own options override this.
    migration: Optional[MigrationOptions] = None
    #: Re-attempts per job after a failed/aborted migration (default 0 =
    #: give up immediately, the pre-retry behaviour).
    retry_limit: Optional[int] = None
    #: Capped exponential backoff between attempts, in sim seconds:
    #: ``min(retry_cap, retry_base * 2**(attempt-1))``.
    retry_base: Optional[float] = None
    retry_cap: Optional[float] = None
    #: Treat a ``SourceCrashed`` suspension as retriable: wait for the
    #: crashed master to recover, then re-enter the parked migration
    #: with :meth:`Middleware.resume_migration` instead of giving up.
    #: Resumes consume retry attempts like any other retry, so this
    #: needs ``retry_limit >= 1`` to have any effect (default False).
    resume: Optional[bool] = None

    def resolve(self) -> "ScheduleOptions":
        """A copy with every ``None`` replaced by its default."""
        policy = self.policy if self.policy is not None else "fifo"
        if policy not in SCHEDULE_POLICIES:
            raise ValueError("unknown schedule policy %r; expected one "
                             "of %s" % (policy,
                                        ", ".join(SCHEDULE_POLICIES)))
        max_concurrent = (self.max_concurrent
                          if self.max_concurrent is not None else 0)
        if max_concurrent < 0:
            raise ValueError("max_concurrent must be >= 0")
        retry_limit = (self.retry_limit
                       if self.retry_limit is not None else 0)
        if retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        retry_base = (self.retry_base
                      if self.retry_base is not None else 0.5)
        retry_cap = (self.retry_cap
                     if self.retry_cap is not None else 5.0)
        if retry_base < 0 or retry_cap < 0:
            raise ValueError("retry backoff must be >= 0")
        strategy = SnapshotStrategy.coerce(self.strategy)
        migration = self.migration or MigrationOptions()
        if strategy is not None and migration.strategy is None:
            migration = replace(migration, strategy=strategy)
        return replace(self, policy=policy,
                       max_concurrent=max_concurrent,
                       strategy=strategy,
                       migration=migration,
                       retry_limit=retry_limit, retry_base=retry_base,
                       retry_cap=retry_cap,
                       resume=bool(self.resume))


@dataclass
class JobOutcome:
    """What happened to one submitted migration."""

    tenant: str
    source: str
    destination: str
    submitted_at: float
    started_at: float = 0.0
    ended_at: float = 0.0
    #: "ok", "aborted" (clean abort, tenant stays on source),
    #: "suspended" (journalled migration parked by a source crash and
    #: not resumed within the retry budget), or "failed" (rejected or
    #: torn down by an unrecovered fault).
    outcome: str = "pending"
    error: Optional[str] = None
    report: Optional[MigrationReport] = None
    #: Migration attempts made (1 = no retry was needed).
    attempts: int = 0
    #: Attempts that re-entered a parked migration from its journal
    #: (``ScheduleOptions(resume=True)``) rather than starting over.
    resumes: int = 0
    #: Destinations this job gave up on (the node died under the
    #: attempt); retries skip them.
    excluded_destinations: List[str] = field(default_factory=list)
    #: Fault windows (``fault``-kind trace spans) overlapping the job,
    #: stamped on every non-ok outcome: ``{"fault", "kind", "target",
    #: "start", "end"}`` records, ``end`` ``None`` while unrecovered.
    #: Empty on a non-ok outcome means no injected fault overlapped —
    #: the failure is the migration's own doing.
    fault_events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def queue_wait(self) -> float:
        """Sim time spent waiting for admission."""
        return self.started_at - self.submitted_at

    @property
    def duration(self) -> float:
        """Sim time from admission to completion."""
        return self.ended_at - self.started_at


@dataclass
class ScheduleReport:
    """Everything one scheduler run reports."""

    policy: str
    max_concurrent: int
    started_at: float = 0.0
    ended_at: float = 0.0
    #: Jobs in admission order (the order the policy chose).
    jobs: List[JobOutcome] = field(default_factory=list)
    #: High-water mark of migrations in flight at once.
    max_in_flight: int = 0
    #: Per-port busy fraction over the schedule window, keyed by port
    #: name (``node0.egress`` ...); only ports that carried bytes.
    link_utilisation: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_clock(self) -> float:
        """Sim time from first admission to last completion."""
        return self.ended_at - self.started_at

    @property
    def ok_count(self) -> int:
        """Jobs that finished with outcome ``ok``."""
        return sum(1 for job in self.jobs if job.outcome == "ok")

    @property
    def retry_count(self) -> int:
        """Total re-attempts across all jobs."""
        return sum(max(0, job.attempts - 1) for job in self.jobs)

    @property
    def total_queue_wait(self) -> float:
        """Summed admission wait across all jobs."""
        return sum(job.queue_wait for job in self.jobs)

    def job(self, tenant: str) -> JobOutcome:
        """The outcome for ``tenant``'s migration."""
        for outcome in self.jobs:
            if outcome.tenant == tenant:
                return outcome
        raise KeyError("no job for tenant %r" % tenant)


@dataclass
class _ScheduleSession:
    """Mutable state shared by the jobs of one open schedule."""

    report: ScheduleReport
    span: Any
    gate: Optional[Semaphore]
    concurrent_gauge: Any
    service: bool = False
    in_flight: int = 0
    players: List[Any] = field(default_factory=list)


class MigrationScheduler:
    """Run several tenant migrations concurrently over one middleware.

    Usage is submit-then-run::

        scheduler = MigrationScheduler(mw, ScheduleOptions(
            policy="smallest-first", max_concurrent=2))
        scheduler.submit("A", "node1")
        scheduler.submit("B", "node1")
        report = yield from scheduler.run()      # inside a process
        # or: proc = scheduler.start(); env.run(); proc.value

    ``run`` admits jobs in the order the policy dictates, bounded by
    ``max_concurrent``, and returns a :class:`ScheduleReport` once every
    job has finished one way or another.

    For a long-running control plane the batch shape inverts into
    *service mode*::

        scheduler.start_service()
        proc = scheduler.submit("A", "node1")    # admitted immediately
        yield proc                               # wait for that one job
        report = yield from scheduler.stop_service()

    A service-mode :meth:`submit` returns the job's player process (its
    ``value`` is the :class:`JobOutcome`), still bounded by
    ``max_concurrent`` and covered by the same retry/resume policy.
    """

    def __init__(self, middleware: Middleware,
                 options: Optional[ScheduleOptions] = None,
                 router: Optional[Any] = None):
        self.middleware = middleware
        self.env = middleware.env
        self.options = (options or ScheduleOptions()).resolve()
        #: Optional router tier (:class:`~repro.router.RouterFleet`):
        #: each completed job pushes a route invalidation for its
        #: tenant, so shard caches stop bouncing off the old master
        #: instead of waiting for the stale-route detection path.
        self.router = router
        self._pending: List[Tuple[str, str, Optional[MigrationOptions],
                                  Tuple[str, ...]]] = []
        self._session: Optional[_ScheduleSession] = None

    @property
    def _running(self) -> bool:
        return self._session is not None

    # ------------------------------------------------------------------
    def submit(self, tenant: str, destination: str,
               options: Optional[MigrationOptions] = None,
               alternates: Sequence[str] = ()) -> Optional[Any]:
        """Queue one migration; runs when :meth:`run` admits it.

        ``alternates`` names fallback destinations for the retry policy:
        when an attempt's destination dies, the excluded-destination
        memory skips it and the next alternate is tried instead.  With
        ``retry_limit == 0`` (the default) they are never consulted.

        While a service session is open (:meth:`start_service`) the job
        is instead admitted immediately and the player process is
        returned, so the caller can ``yield`` it to await that one job.
        """
        if options is not None and not isinstance(options,
                                                  MigrationOptions):
            raise TypeError("submit() takes a MigrationOptions "
                            "instance, got %r"
                            % (type(options).__name__,))
        session = self._session
        if session is not None:
            if not session.service:
                raise MigrationError(
                    "cannot submit to a schedule that is already "
                    "running")
            return self._spawn_job(session, tenant, destination,
                                   options, tuple(alternates))
        self._pending.append((tenant, destination, options,
                              tuple(alternates)))
        return None

    # ------------------------------------------------------------------
    def _ordered_jobs(self) -> List[Tuple[str, str,
                                          Optional[MigrationOptions],
                                          Tuple[str, ...]]]:
        """Pending jobs in the admission order the policy dictates."""
        jobs = list(self._pending)
        policy = self.options.policy
        if policy == "fifo":
            return jobs
        if policy == "smallest-first":
            def tenant_size(job: Tuple) -> float:
                tenant = job[0]
                source = self.middleware.route(tenant)
                instance = self.middleware.cluster.node(source).instance
                return instance.tenant(tenant).size_mb()
            return sorted(jobs, key=tenant_size)
        # round-robin: one job per source node per cycle, so concurrent
        # admissions spread across egress links instead of piling onto
        # one node's port.
        buckets: Dict[str, List[Tuple]] = {}
        for job in jobs:
            buckets.setdefault(self.middleware.route(job[0]),
                               []).append(job)
        ordered: List[Tuple] = []
        queues = list(buckets.values())
        while queues:
            queues = [queue for queue in queues if queue]
            for queue in queues:
                if queue:
                    ordered.append(queue.pop(0))
        return ordered

    # -- session plumbing ----------------------------------------------
    def _open_session(self, service: bool,
                      jobs_hint: int) -> _ScheduleSession:
        """Start a schedule span and the shared admission state."""
        if self._session is not None:
            raise MigrationError("schedule is already running")
        opts = self.options
        report = ScheduleReport(policy=opts.policy,
                                max_concurrent=opts.max_concurrent,
                                started_at=self.env.now)
        schedule_span = self.middleware.tracer.start(
            "schedule", kind=SPAN, policy=opts.policy,
            max_concurrent=opts.max_concurrent,
            jobs=jobs_hint)
        gate: Optional[Semaphore] = None
        if opts.max_concurrent > 0:
            gate = Semaphore(self.env, value=opts.max_concurrent)
        session = _ScheduleSession(
            report=report, span=schedule_span, gate=gate,
            concurrent_gauge=self.middleware.metrics.gauge(
                "scheduler.concurrent"),
            service=service)
        self._session = session
        return session

    def _close_session(self, session: _ScheduleSession) -> ScheduleReport:
        """Stamp the report, finish the span, and reset the scheduler."""
        report = session.report
        report.ended_at = self.env.now
        network = self.middleware.cluster.network
        for name, port in sorted(network.link_ports().items()):
            if port.bytes_mb <= 0:
                continue
            utilisation = port.utilisation(since=report.started_at)
            report.link_utilisation[name] = utilisation
            self.middleware.metrics.gauge(
                "scheduler.link.%s.utilisation" % name).set(utilisation)
        self.middleware.tracer.finish(
            session.span, ok=report.ok_count,
            max_in_flight=report.max_in_flight,
            wall_clock=report.wall_clock)
        self._session = None
        self._pending = []
        return report

    def _spawn_job(self, session: _ScheduleSession, tenant: str,
                   destination: str,
                   options: Optional[MigrationOptions],
                   alternates: Tuple[str, ...]) -> Any:
        """Admit one job into the open session; returns its player."""
        outcome = JobOutcome(tenant=tenant,
                             source=self.middleware.route(tenant),
                             destination=destination,
                             submitted_at=self.env.now)
        session.report.jobs.append(outcome)
        player = self.env.process(
            self._job_player(session, outcome, options, alternates),
            name="schedule.%s" % tenant)
        session.players.append(player)
        return player

    # -- per-job helpers -----------------------------------------------
    @staticmethod
    def _next_destination(outcome: JobOutcome,
                          candidates: List[str]) -> Optional[str]:
        """First candidate not yet excluded by a dead-node retry."""
        for name in candidates:
            if name not in outcome.excluded_destinations:
                return name
        return None

    def _clear_orphan_copy(self, outcome: JobOutcome,
                           destination: str) -> None:
        """Drop a partial tenant copy an aborted attempt left behind.

        Aborts intentionally leave the slave copy in place (players
        may still be draining against it); a retry into the same
        live node must clear it or the restore would collide.
        """
        instance = self.middleware.cluster.node(destination).instance
        if (not instance.crashed
                and self.middleware.route(outcome.tenant)
                != destination
                and instance.has_tenant(outcome.tenant)):
            instance.drop_tenant(outcome.tenant)

    def _stamp_fault_events(self, outcome: JobOutcome) -> None:
        """Record fault windows overlapping the job on its outcome.

        Aborted/failed jobs become auditable from the report alone:
        an empty list on a non-ok outcome means no injected fault
        overlapped the job, i.e. the failure was the migration's
        own doing rather than chaos.
        """
        for span in self.middleware.tracer.find(kind=FAULT):
            if span.start > outcome.ended_at:
                continue
            if (span.end is not None
                    and span.end < outcome.submitted_at):
                continue
            outcome.fault_events.append({
                "fault": span.name,
                "kind": span.attrs.get("fault_kind"),
                "target": span.attrs.get("target"),
                "start": span.start,
                "end": span.end,
            })

    def _job_player(self, session: _ScheduleSession, outcome: JobOutcome,
                    options: Optional[MigrationOptions],
                    alternates: Tuple[str, ...]) -> Generator:
        opts = self.options
        metrics = self.middleware.metrics
        tracer = self.middleware.tracer
        report = session.report
        if session.gate is not None:
            yield from session.gate.acquire()
        outcome.started_at = self.env.now
        metrics.histogram("scheduler.queue_wait").observe(
            outcome.queue_wait)
        session.in_flight += 1
        report.max_in_flight = max(report.max_in_flight,
                                   session.in_flight)
        session.concurrent_gauge.set(session.in_flight)
        job_span = tracer.start(
            "schedule.job", kind=SPAN, parent=session.span,
            tenant=outcome.tenant, destination=outcome.destination,
            queue_wait=outcome.queue_wait)
        candidates = [outcome.destination] + [
            name for name in alternates
            if name != outcome.destination]
        resume_next = False
        try:
            while True:
                if resume_next:
                    destination = outcome.destination
                else:
                    destination = self._next_destination(outcome,
                                                         candidates)
                    if destination is None:
                        # Every candidate died under an attempt; the
                        # last error already describes the failure.
                        break
                    outcome.destination = destination
                outcome.attempts += 1
                retriable = False
                try:
                    if resume_next:
                        resume_next = False
                        outcome.resumes += 1
                        outcome.report = yield from \
                            self.middleware.resume_migration(
                                outcome.tenant,
                                options or opts.migration)
                    else:
                        outcome.report = \
                            yield from self.middleware.migrate(
                                outcome.tenant, destination,
                                options or opts.migration)
                    outcome.outcome = "ok"
                    if self.router is not None:
                        self.router.invalidate(outcome.tenant)
                    break
                except SourceCrashed as exc:
                    journal = self.middleware.migration_journal(
                        outcome.tenant)
                    suspended = (journal is not None
                                 and journal.state
                                 == JOURNAL_SUSPENDED)
                    if (not opts.resume or not suspended
                            or outcome.attempts > opts.retry_limit):
                        # Final by design without the resume policy:
                        # the master must recover, and the paper's
                        # rule is abort + keep the source.
                        outcome.outcome = ("suspended" if suspended
                                           else "aborted")
                        outcome.error = str(exc)
                        break
                    outcome.outcome = "suspended"
                    outcome.error = str(exc)
                    outcome.destination = journal.destination
                    source_instance = self.middleware.cluster.node(
                        journal.source).instance
                    yield source_instance.wait_recovered()
                    delay = min(opts.retry_cap,
                                opts.retry_base
                                * (2 ** (outcome.attempts - 1)))
                    metrics.counter("scheduler.resumes").inc()
                    tracer.event("schedule.resume",
                                 tenant=outcome.tenant,
                                 attempt=outcome.attempts,
                                 delay=delay,
                                 phase=journal.suspend_phase)
                    yield self.env.timeout(delay)
                    resume_next = True
                    continue
                except CatchUpTimeout as exc:
                    outcome.outcome = "aborted"
                    outcome.error = str(exc)
                    retriable = True
                except (MigrationError, NetworkDown,
                        NodeCrashed) as exc:
                    outcome.outcome = "failed"
                    outcome.error = str(exc)
                    retriable = True
                if (not retriable
                        or outcome.attempts > opts.retry_limit):
                    break
                dest_instance = self.middleware.cluster.node(
                    destination).instance
                if dest_instance.crashed:
                    # Excluded-destination memory: never retry into
                    # the node that just died under this job.
                    outcome.excluded_destinations.append(destination)
                if self._next_destination(outcome, candidates) is None:
                    break
                delay = min(opts.retry_cap,
                            opts.retry_base
                            * (2 ** (outcome.attempts - 1)))
                metrics.counter("scheduler.retries").inc()
                tracer.event("schedule.retry", tenant=outcome.tenant,
                             attempt=outcome.attempts, delay=delay,
                             excluded=list(
                                 outcome.excluded_destinations))
                yield self.env.timeout(delay)
                retry_into = self._next_destination(outcome, candidates)
                if retry_into is not None:
                    self._clear_orphan_copy(outcome, retry_into)
        finally:
            outcome.ended_at = self.env.now
            if outcome.outcome != "ok":
                self._stamp_fault_events(outcome)
            session.in_flight -= 1
            session.concurrent_gauge.set(session.in_flight)
            tracer.finish(job_span, outcome=outcome.outcome,
                          attempts=outcome.attempts,
                          resumes=outcome.resumes,
                          destination=outcome.destination)
            metrics.counter("scheduler.jobs_%s"
                            % outcome.outcome).inc()
            if session.gate is not None:
                session.gate.release()
        # The player's value: service-mode callers yield the process
        # returned by submit() and read the outcome straight off it.
        return outcome

    # -- batch mode ----------------------------------------------------
    def run(self) -> Generator[Any, Any, ScheduleReport]:
        """Process body: admit, migrate, collect, report."""
        session = self._open_session(service=False,
                                     jobs_hint=len(self._pending))
        for tenant, destination, options, alternates in \
                self._ordered_jobs():
            self._spawn_job(session, tenant, destination, options,
                            alternates)
        if session.players:
            yield self.env.all_of(session.players)
        return self._close_session(session)

    def start(self, name: str = "scheduler") -> Any:
        """Spawn :meth:`run` as a process; its ``value`` is the report."""
        return self.env.process(self.run(), name=name)

    # -- service mode --------------------------------------------------
    def start_service(self) -> None:
        """Open a persistent schedule that admits jobs as they arrive.

        While the service is open, :meth:`submit` spawns the job
        immediately (bounded by ``max_concurrent``) and returns its
        player process.  Close with :meth:`stop_service`.  Jobs queued
        before the service opened are rejected — service mode is for
        control planes that decide as they go, not for batches.
        """
        if self._pending:
            raise MigrationError(
                "cannot open a service over %d batch-queued jobs; "
                "run() them first" % len(self._pending))
        self._open_session(service=True, jobs_hint=0)

    @property
    def service_open(self) -> bool:
        """Whether a service session is accepting live submissions."""
        session = self._session
        return session is not None and session.service

    def drain(self) -> Generator[Any, Any, None]:
        """Process body: wait until every admitted job has finished.

        New jobs may be submitted while draining; they are waited on
        too.  The service stays open afterwards.
        """
        session = self._session
        if session is None or not session.service:
            raise MigrationError("no service session to drain")
        while True:
            live = [player for player in session.players
                    if not player.triggered]
            if not live:
                return
            yield self.env.all_of(live)

    def stop_service(self) -> Generator[Any, Any, ScheduleReport]:
        """Process body: drain every job, then close and report."""
        session = self._session
        if session is None or not session.service:
            raise MigrationError("no service session to stop")
        yield from self.drain()
        return self._close_session(session)
