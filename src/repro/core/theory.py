"""Executable form of the paper's theory (Sections 2-3 and the appendix).

This module turns the paper's definitions into checkable artefacts:

* the six transactional dependency types (Definition 1 + intra/inter),
* recorded histories (via the engine's observer hook),
* dependency extraction over a history,
* the mapping function's output contract (Definition 2),
* an LSIR schedule validator (Definition 3): given the (STS, ETS) tags of
  syncsets and the observed slave replay schedule, check rules (1-a),
  (1-b), and (2), and
* the master/slave state-equality check behind Theorem 2.

The test suite uses these to verify, on randomised workloads, both that
Madeus's conductor only ever emits LSIR-compliant schedules and that
schedules violating the LSIR are detected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..engine.database import TenantDatabase
from ..engine.instance import Observer
from ..engine.transaction import Transaction


class DependencyType(enum.Enum):
    """The six dependency types of Section 2.2."""

    INTRA_WR = "intra-wr"
    INTER_WR = "inter-wr"
    INTRA_RW = "intra-rw"
    INTER_RW = "inter-rw"
    INTRA_WW = "intra-ww"
    INTER_WW = "inter-ww"


#: Dependencies the slave must replay (Lemma 3).
NECESSARY_DEPENDENCIES = frozenset({
    DependencyType.INTER_WR,
    DependencyType.INTER_RW,
    DependencyType.INTRA_RW,
    DependencyType.INTRA_WW,
})

#: Dependencies the slave may discard (Lemmas 1 and 2).
UNNECESSARY_DEPENDENCIES = frozenset({
    DependencyType.INTER_WW,
    DependencyType.INTRA_WR,
})


@dataclass
class RecordedOp:
    """One read or write observed by the history recorder."""

    txn_id: int
    kind: str          # "read" | "write"
    table: str
    key: Hashable
    sequence: int      # global arrival order


@dataclass
class RecordedTxn:
    """Summary of one transaction's lifetime in a history."""

    txn_id: int
    tenant: str
    snapshot_csn: Optional[int] = None
    commit_csn: Optional[int] = None
    status: str = "active"
    reads: List[RecordedOp] = field(default_factory=list)
    writes: List[RecordedOp] = field(default_factory=list)

    @property
    def is_committed_update(self) -> bool:
        """Mapping-function rule: only these produce syncsets."""
        return self.status == "committed" and bool(self.writes)


class HistoryRecorder(Observer):
    """Engine observer that captures a full history for analysis."""

    def __init__(self) -> None:
        self.transactions: Dict[int, RecordedTxn] = {}
        self._sequence = 0

    # -- Observer interface ------------------------------------------------
    def on_begin(self, txn: Transaction) -> None:
        self.transactions[txn.txn_id] = RecordedTxn(txn.txn_id, txn.tenant)

    def on_read(self, txn_id: int, table: str, key: Hashable,
                version_csn: int) -> None:
        record = self.transactions.get(txn_id)
        if record is None:
            return
        self._sequence += 1
        record.reads.append(RecordedOp(txn_id, "read", table, key,
                                       self._sequence))

    def on_write(self, txn_id: int, table: str, key: Hashable) -> None:
        record = self.transactions.get(txn_id)
        if record is None:
            return
        self._sequence += 1
        record.writes.append(RecordedOp(txn_id, "write", table, key,
                                        self._sequence))

    def on_commit(self, txn: Transaction) -> None:
        record = self.transactions.get(txn.txn_id)
        if record is None:
            return
        record.status = "committed"
        record.snapshot_csn = txn.snapshot_csn
        record.commit_csn = txn.commit_csn

    def on_abort(self, txn: Transaction) -> None:
        record = self.transactions.get(txn.txn_id)
        if record is None:
            return
        record.status = "aborted"
        record.snapshot_csn = txn.snapshot_csn

    # -- dependency extraction ----------------------------------------------
    def committed_updates(self) -> List[RecordedTxn]:
        """Committed update transactions, in commit order."""
        txns = [t for t in self.transactions.values()
                if t.is_committed_update]
        txns.sort(key=lambda t: t.commit_csn or 0)
        return txns

    def extract_dependencies(self) -> List[Tuple[DependencyType, int, int]]:
        """All dependencies among committed transactions.

        Returns (type, txn_i, txn_j) triples.  WR/WW dependencies are
        derived from commit-order adjacency of versions; RW dependencies
        from reads of versions whose successors were written by others.
        The extraction is deliberately simple (quadratic) — it is a test
        oracle, not a production path.
        """
        committed = [t for t in self.transactions.values()
                     if t.status == "committed"]
        dependencies: List[Tuple[DependencyType, int, int]] = []
        # Index writes per item in commit order.
        writers: Dict[Tuple[str, Hashable], List[RecordedTxn]] = {}
        for txn in sorted(committed, key=lambda t: t.commit_csn or 0):
            for op in txn.writes:
                writers.setdefault((op.table, op.key), []).append(txn)
        for txn in committed:
            # intra-ww: two writes of the same item within one txn
            seen: Dict[Tuple[str, Hashable], int] = {}
            for op in txn.writes:
                item = (op.table, op.key)
                if item in seen:
                    dependencies.append(
                        (DependencyType.INTRA_WW, txn.txn_id, txn.txn_id))
                seen[item] = op.sequence
            for op in txn.reads:
                item = (op.table, op.key)
                item_writers = writers.get(item, [])
                for writer in item_writers:
                    if writer.txn_id == txn.txn_id:
                        # wr or rw within one transaction
                        write_seq = min(w.sequence for w in writer.writes
                                        if (w.table, w.key) == item)
                        if write_seq < op.sequence:
                            dependencies.append((DependencyType.INTRA_WR,
                                                 txn.txn_id, txn.txn_id))
                        else:
                            dependencies.append((DependencyType.INTRA_RW,
                                                 txn.txn_id, txn.txn_id))
                        continue
                    if (writer.commit_csn is not None
                            and txn.snapshot_csn is not None):
                        if writer.commit_csn <= txn.snapshot_csn:
                            dependencies.append((DependencyType.INTER_WR,
                                                 writer.txn_id, txn.txn_id))
                        else:
                            dependencies.append((DependencyType.INTER_RW,
                                                 txn.txn_id, writer.txn_id))
        # inter-ww: consecutive writers of the same item
        for item, item_writers in writers.items():
            for earlier, later in zip(item_writers, item_writers[1:]):
                dependencies.append((DependencyType.INTER_WW,
                                     earlier.txn_id, later.txn_id))
        return dependencies


# ---------------------------------------------------------------------------
# mapping function contract (Definition 2)
# ---------------------------------------------------------------------------

def mapping_function_output(kinds: Sequence[str],
                            committed: bool,
                            is_update: bool) -> List[str]:
    """Reference implementation of Definition 2 over operation kinds.

    ``kinds`` is the master transaction's operation-kind sequence using
    labels ``first_read``/``read``/``write``/``commit``/``abort``.
    Returns the syncset's operation kinds (empty for read-only or
    aborted transactions).
    """
    if not committed or not is_update:
        return []
    output: List[str] = []
    for kind in kinds:
        if kind == "first_read":
            output.append("first_read")
        elif kind == "write":
            output.append("write")
        elif kind == "commit":
            output.append("commit")
        # later reads and aborts are discarded
    return output


# ---------------------------------------------------------------------------
# LSIR schedule validation (Definition 3)
# ---------------------------------------------------------------------------

@dataclass
class ReplayEvent:
    """One observed propagation event on the slave."""

    ssb_id: int
    sts: int
    ets: int
    kind: str            # "first_read" | "write" | "commit"
    write_index: int     # ordinal among this SSB's writes (-1 otherwise)
    time: float
    sequence: int        # tie-break for same-instant events


class LsirValidator:
    """Collects slave replay events and checks them against the LSIR."""

    def __init__(self) -> None:
        self.events: List[ReplayEvent] = []
        self._sequence = 0

    def record(self, ssb_id: int, sts: int, ets: int, kind: str,
               time: float, write_index: int = -1) -> None:
        """Record one replay event (called by players)."""
        self._sequence += 1
        self.events.append(ReplayEvent(ssb_id, sts, ets, kind, write_index,
                                       time, self._sequence))

    def violations(self) -> List[str]:
        """All LSIR violations in the recorded schedule (empty = valid)."""
        problems: List[str] = []
        first_reads: Dict[int, ReplayEvent] = {}
        commits: Dict[int, ReplayEvent] = {}
        writes: Dict[int, List[ReplayEvent]] = {}
        for event in self.events:
            if event.kind == "first_read":
                first_reads[event.ssb_id] = event
            elif event.kind == "commit":
                commits[event.ssb_id] = event
            else:
                writes.setdefault(event.ssb_id, []).append(event)
        order = {e.sequence: e for e in self.events}

        def before(a: ReplayEvent, b: ReplayEvent) -> bool:
            return (a.time, a.sequence) < (b.time, b.sequence)

        # Rules (1-a) and (1-b): compare every commit with every first read.
        for commit in commits.values():
            for read in first_reads.values():
                if read.ssb_id == commit.ssb_id:
                    continue
                if commit.ets < read.sts and not before(commit, read):
                    problems.append(
                        "rule 1-a: commit ets=%d (ssb %d) must precede "
                        "first read sts=%d (ssb %d)"
                        % (commit.ets, commit.ssb_id, read.sts, read.ssb_id))
                if read.sts <= commit.ets and not before(read, commit):
                    problems.append(
                        "rule 1-b: first read sts=%d (ssb %d) must precede "
                        "commit ets=%d (ssb %d)"
                        % (read.sts, read.ssb_id, commit.ets, commit.ssb_id))
        # Rule (2): write order within each SSB is FIFO.
        for ssb_id, ssb_writes in writes.items():
            indexed = sorted(ssb_writes, key=lambda e: (e.time, e.sequence))
            indices = [e.write_index for e in indexed]
            if indices != sorted(indices):
                problems.append("rule 2: writes of ssb %d replayed out of "
                                "order: %s" % (ssb_id, indices))
        # Sanity: a commit never precedes its own first read or writes.
        for ssb_id, commit in commits.items():
            read = first_reads.get(ssb_id)
            if read is not None and not before(read, commit):
                problems.append("ssb %d committed before its first read"
                                % ssb_id)
        del order
        return problems

    @property
    def is_valid(self) -> bool:
        """Whether the recorded schedule satisfies the LSIR."""
        return not self.violations()


# ---------------------------------------------------------------------------
# consistency (Theorem 2)
# ---------------------------------------------------------------------------

def states_equal(master: TenantDatabase,
                 slave: TenantDatabase) -> Tuple[bool, List[str]]:
    """Compare the logical states of two tenants (Theorem 2 check).

    Returns (equal, differences); differences name the first few
    mismatching tables/keys for debuggability.
    """
    master_state = master.state_fingerprint()
    slave_state = slave.state_fingerprint()
    differences: List[str] = []
    for table in sorted(set(master_state) | set(slave_state)):
        m_rows = master_state.get(table)
        s_rows = slave_state.get(table)
        if m_rows is None or s_rows is None:
            differences.append("table %r missing on %s"
                               % (table, "slave" if s_rows is None
                                  else "master"))
            continue
        keys = set(m_rows) | set(s_rows)
        for key in sorted(keys, key=repr):
            if m_rows.get(key) != s_rows.get(key):
                differences.append(
                    "table %r key %r: master=%r slave=%r"
                    % (table, key, m_rows.get(key), s_rows.get(key)))
                if len(differences) >= 20:
                    return False, differences
    return not differences, differences
