"""Syncset buffers (SSB) and the syncset list (SSL) — Figures 3 and 4.

An SSB belongs to one transaction: it stores the start timestamp (STS,
the MLC value when the first read executed), the end timestamp (ETS, the
MLC value when the commit executed), and the syncset entries — the
minimum query set produced by the mapping function — in a FIFO queue, so
write order (LSIR rule 2) is preserved by construction.

The SSL groups committed SSBs by STS: all SSBs sharing an STS may have
their first reads propagated concurrently (Section 4.1).  It also tracks
*open* SSBs (allocated at first read, not yet committed) so the conductor
never advances the SLC past a still-running transaction's snapshot point —
the invariant the consistency proof (Appendix D) relies on.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set

from .operations import Operation, OpKind


class SyncsetBuffer:
    """One transaction's syncset: STS, ETS, and FIFO operation entries."""

    _ids = itertools.count(1)

    __slots__ = ("ssb_id", "sts", "ets", "entries", "txn_label",
                 "linked_at", "propagated_at")

    def __init__(self, sts: int, txn_label: Optional[int] = None):
        self.ssb_id: int = next(SyncsetBuffer._ids)
        self.sts = sts
        self.ets: Optional[int] = None
        self.entries: Deque[Operation] = deque()
        self.txn_label = txn_label
        self.linked_at: Optional[float] = None
        self.propagated_at: Optional[float] = None

    def save(self, operation: Operation) -> None:
        """Append one operation (FIFO, preserving write order)."""
        self.entries.append(operation)

    @property
    def first_operation(self) -> Operation:
        """The snapshot-creating first operation."""
        if not self.entries:
            raise ValueError("empty SSB %d" % self.ssb_id)
        return self.entries[0]

    @property
    def write_operations(self) -> List[Operation]:
        """The write operations, in original order."""
        return [op for op in self.entries if op.kind == OpKind.WRITE]

    @property
    def commit_operation(self) -> Operation:
        """The trailing commit operation."""
        if not self.entries or self.entries[-1].kind != OpKind.COMMIT:
            raise ValueError("SSB %d has no commit entry" % self.ssb_id)
        return self.entries[-1]

    @property
    def operation_count(self) -> int:
        """Number of stored operations."""
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<SSB %d sts=%s ets=%s ops=%d>"
                % (self.ssb_id, self.sts, self.ets, len(self.entries)))


class SyncsetList:
    """The SSL: committed SSBs grouped by STS, plus open-SSB tracking."""

    def __init__(self) -> None:
        self._by_sts: Dict[int, List[SyncsetBuffer]] = {}
        self._open: Set[SyncsetBuffer] = set()
        # statistics
        self.linked_total = 0
        self.linked_operations = 0

    # ------------------------------------------------------------------
    # open-SSB lifecycle (allocated at first read; resolved at txn end)
    # ------------------------------------------------------------------
    def register_open(self, ssb: SyncsetBuffer) -> None:
        """Track an allocated, not-yet-committed SSB."""
        self._open.add(ssb)

    def adopt_opens(self, other: "SyncsetList") -> None:
        """Copy another list's open set (multi-slave SSLs created while
        transactions are already running must gate on them too)."""
        self._open |= other._open

    def adopt_backlog(self, other: "SyncsetList") -> None:
        """Copy another list's linked-but-unconsumed SSBs (a standby
        slave created mid-migration must replay the whole backlog)."""
        for group in other._by_sts.values():
            for ssb in group:
                self._by_sts.setdefault(ssb.sts, []).append(ssb)
                self.linked_total += 1
                self.linked_operations += ssb.operation_count

    def resolve_open(self, ssb: SyncsetBuffer) -> None:
        """Forget an open SSB (its transaction ended)."""
        self._open.discard(ssb)

    def open_count(self) -> int:
        """Number of transactions with allocated, uncommitted SSBs."""
        return len(self._open)

    # ------------------------------------------------------------------
    # linked SSBs
    # ------------------------------------------------------------------
    def link(self, ssb: SyncsetBuffer, now: float) -> None:
        """Link a committed SSB (Algorithm 1 line 24)."""
        if ssb.ets is None:
            raise ValueError("cannot link SSB %d without an ETS"
                             % ssb.ssb_id)
        ssb.linked_at = now
        self._by_sts.setdefault(ssb.sts, []).append(ssb)
        self.linked_total += 1
        self.linked_operations += ssb.operation_count

    def pending_count(self) -> int:
        """Linked SSBs not yet handed to players."""
        return sum(len(group) for group in self._by_sts.values())

    def is_empty(self) -> bool:
        """No linked SSBs awaiting propagation."""
        return not self._by_sts

    def smallest_sts(self) -> Optional[int]:
        """GetSmallestSTS() over linked *and open* SSBs.

        Including open SSBs is what keeps the SLC from advancing past a
        running transaction's snapshot point.
        """
        candidates: List[int] = []
        if self._by_sts:
            candidates.append(min(self._by_sts))
        if self._open:
            candidates.append(min(ssb.sts for ssb in self._open))
        return min(candidates) if candidates else None

    def smallest_linked_sts(self) -> Optional[int]:
        """Smallest STS over linked SSBs only."""
        return min(self._by_sts) if self._by_sts else None

    def open_with_sts(self, sts: int) -> int:
        """How many open SSBs have the given STS."""
        return sum(1 for ssb in self._open if ssb.sts == sts)

    def take_group(self, sts: int) -> List[SyncsetBuffer]:
        """Remove and return every linked SSB with the given STS."""
        return self._by_sts.pop(sts, [])

    def take_all(self) -> List[SyncsetBuffer]:
        """Remove and return all linked SSBs in (STS, ETS) order."""
        drained: List[SyncsetBuffer] = []
        for sts in sorted(self._by_sts):
            drained.extend(sorted(self._by_sts[sts],
                                  key=lambda s: (s.ets, s.ssb_id)))
        self._by_sts.clear()
        return drained

    def iter_linked(self) -> Iterable[SyncsetBuffer]:
        """Iterate linked SSBs (diagnostics only)."""
        for group in self._by_sts.values():
            yield from group
