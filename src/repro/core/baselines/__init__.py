"""The three baseline middlewares of Table 2.

These are the same middleware with weaker propagation policies; the
paper implemented them to isolate the contribution of each LSIR
ingredient (minimum query set, concurrent first reads/writes, concurrent
commits).  See ``repro.core.policy`` for the feature matrix.
"""

from ..policy import B_ALL, B_CON, B_MIN, PropagationPolicy

__all__ = ["B_ALL", "B_CON", "B_MIN", "PropagationPolicy"]
