"""Propagation policies: Madeus and the three baselines of Table 2.

One parameterised propagator covers all four middlewares; the flags map
exactly to the paper's feature matrix:

===========  =====  ========  =========
middleware    MIN    CON-FW    CON-COM
===========  =====  ========  =========
B-ALL         no     no        no
B-MIN         yes    no        no
B-CON         yes    yes       no
Madeus        yes    yes       yes
===========  =====  ========  =========

* **MIN** — propagate only the minimum query set (mapping function,
  Definition 2) instead of every operation of every transaction.
* **CON-FW** — propagate first reads and writes concurrently, coordinated
  by the conductor's rounds.
* **CON-COM** — propagate commit operations concurrently too, enabling
  group commit on the slave.  Without it, commits are serialised in
  master commit order and every player competes for a commit mutex at
  every commit time (the overhead the paper measures for B-CON).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PropagationPolicy:
    """Feature switches of a live-migration propagation protocol.

    Note on B-ALL: *aborted and read-only* transactions produce nothing
    to synchronise under any middleware (they change no data), so even
    B-ALL discards them; what B-ALL lacks is the *minimum query set* —
    it ships every read of every update transaction, where the MIN
    policies keep only the snapshot-creating first read.  This matches
    the paper's cost model (Eq. 3 charges ``N_r`` reads per transaction)
    and its measured B-ALL convergence under heavy workload.
    """

    name: str
    #: MIN: send the minimum query set (first read + writes + commit of
    #: committed update transactions only).
    minimum_set: bool
    #: CON-FW: concurrent propagation of first reads and writes.
    concurrent_first_writes: bool
    #: CON-COM: concurrent propagation of commit operations.
    concurrent_commits: bool
    #: Per-player mutex hand-off cost when commits are serialised while
    #: players run concurrently (B-CON only; seconds).  Every player in
    #: the pool competes for the pthread mutex at every commit time, so
    #: each serial commit pays ``penalty * (player_pool - 1)``.
    commit_mutex_penalty: float = 0.0
    #: Size of the player thread pool competing for the commit mutex.
    player_pool: int = 32

    def with_penalty(self, penalty: float) -> "PropagationPolicy":
        """A copy with a different commit-mutex penalty."""
        return replace(self, commit_mutex_penalty=penalty)


#: Serial propagation of *all* operations of *all* committed transactions,
#: in commit order (the naive baseline).
B_ALL = PropagationPolicy("B-ALL", minimum_set=False,
                          concurrent_first_writes=False,
                          concurrent_commits=False)

#: Serial propagation of minimum syncsets (Ganymed/FAS-style [36, 37]).
B_MIN = PropagationPolicy("B-MIN", minimum_set=True,
                          concurrent_first_writes=False,
                          concurrent_commits=False)

#: Concurrent first reads/writes but serial commits in master commit
#: order (Daudjee-Salem-style [24]); pays the commit-mutex competition.
B_CON = PropagationPolicy("B-CON", minimum_set=True,
                          concurrent_first_writes=True,
                          concurrent_commits=False,
                          commit_mutex_penalty=0.00075)

#: The full LSIR: minimum set, concurrent first reads/writes, and
#: concurrent commits (group commit on the slave).
MADEUS = PropagationPolicy("Madeus", minimum_set=True,
                           concurrent_first_writes=True,
                           concurrent_commits=True)

#: All four, in the order the paper's figures list them.
ALL_POLICIES = (B_ALL, B_MIN, B_CON, MADEUS)


def policy_by_name(name: str) -> PropagationPolicy:
    """Look up one of the standard policies by its display name."""
    for policy in ALL_POLICIES:
        if policy.name.lower() == name.lower():
            return policy
    raise ValueError("unknown policy %r (expected one of %s)"
                     % (name, ", ".join(p.name for p in ALL_POLICIES)))


def feature_matrix() -> dict:
    """Table 2 as data: policy name -> feature flags."""
    return {
        policy.name: {
            "MIN": policy.minimum_set,
            "CON-FW": policy.concurrent_first_writes,
            "CON-COM": policy.concurrent_commits,
        }
        for policy in ALL_POLICIES
    }
