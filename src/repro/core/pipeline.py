"""Chunk-feed and change-tap plumbing for the streamed snapshot paths.

Two buffering primitives live here:

* :class:`ChunkFeed` / :class:`ChunkReader` broadcast the pipelined
  snapshot's chunk stream with back-pressure (below);
* :class:`ChangeTap` / :class:`TapCursor` / :class:`TapMarker` carry
  the watermark path's row-image change stream: the middleware's commit
  path appends each committed transaction's post-images, the snapshot
  manager injects low/high watermark markers around every chunk select,
  and one change-stream applier *per consumer* replays the whole
  sequence in commit (= CSN) order.  The tap is a single-feed
  broadcast: each consumer (the destination, every standby, a router
  warming a replica) holds a named :class:`TapCursor` into the one
  retained record sequence, a marker's ``reached`` fires only once
  every active consumer has applied everything before it, and a
  consumer that crashes is discarded without disturbing the others.
  Cursors — not appliers — own consumption state, so an applier that
  dies on a fault can be rebuilt mid-stream (reattach by name) without
  losing or replaying records.

The streaming dump is one producer feeding *several* consumers: the
destination plus every standby each receive the full chunk sequence.  A
:class:`ChunkFeed` is that single-producer / multi-reader broadcast
buffer:

* the producer (:func:`~repro.engine.dump.dump_stream`) ``put``s chunks
  and blocks once it is more than ``depth`` chunks ahead of the slowest
  *active* reader — the back-pressure that keeps a slow destination
  disk from ballooning the in-flight buffer;
* each :class:`ChunkReader` consumes at its own pace, and a reader can
  :meth:`~ChunkReader.rewind` to chunk 0 after a transient network
  outage — emitted chunks are retained for exactly this, mirroring the
  serial path where the materialised snapshot outlives a failed ship
  and is simply re-sent;
* a reader that fails permanently is :meth:`~ChunkReader.close`\\ d so
  the producer stops waiting for it, and :meth:`ChunkFeed.fail` tears
  the whole stream down when the *source* dies mid-dump.

Retained chunks cost simulated-master memory equal to the snapshot —
the same footprint the serial path's :class:`LogicalSnapshot` has; the
``depth`` bound governs what is in flight toward each destination.
"""

from __future__ import annotations

from collections import deque
from typing import (TYPE_CHECKING, Any, Deque, Dict, Generator,
                    Hashable, List, Optional, Set, Tuple)

from ..sim.events import Event
from ..sim.sync import CLOSED

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment


class ChunkFeed:
    """Single-producer, multi-reader broadcast buffer with back-pressure.

    Implements the ``sink`` protocol :func:`dump_stream` expects
    (``put`` / ``close`` / ``fail``); attach consumers with
    :meth:`reader` *before* the producer starts so back-pressure sees
    them from the first chunk.
    """

    def __init__(self, env: "Environment", depth: int = 4,
                 name: Optional[str] = None):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.env = env
        self.depth = depth
        self.name = name
        self._chunks: List[Any] = []
        self._closed = False
        self._exc: Optional[BaseException] = None
        self._readers: List["ChunkReader"] = []
        self._producer_waiters: Deque[Event] = deque()
        self._reader_waiters: Deque[Event] = deque()
        # statistics
        self.producer_wait_time = 0.0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def reader(self, name: Optional[str] = None,
               start: int = 0) -> "ChunkReader":
        """Attach a new consumer starting at feed position ``start``.

        ``start > 0`` serves the resumed-snapshot path: the feed then
        carries chunks from a common base offset, and a destination
        that already installed more than the base skips ahead to the
        first feed position it still needs.  :meth:`ChunkReader.rewind`
        returns to position 0 — the feed base, not absolute chunk 0.
        """
        if start < 0:
            raise ValueError("reader start must be >= 0")
        reader = ChunkReader(self, name)
        reader.index = start
        reader.high_water = start
        self._readers.append(reader)
        return reader

    @property
    def emitted(self) -> int:
        """Chunks the producer has emitted so far."""
        return len(self._chunks)

    @property
    def closed(self) -> bool:
        """Whether end-of-stream (or failure) has been signalled."""
        return self._closed or self._exc is not None

    def _active_floor(self) -> Optional[int]:
        marks = [r.high_water for r in self._readers if r.active]
        return min(marks) if marks else None

    # ------------------------------------------------------------------
    # producer side (dump_stream sink protocol)
    # ------------------------------------------------------------------

    def put(self, chunk: Any) -> Generator[Event, None, None]:
        """Emit one chunk; blocks while ``depth`` ahead of the slowest
        active reader.  Raises if every reader has failed permanently —
        there is no one left to dump for.
        """
        while True:
            if self._exc is not None:
                raise self._exc
            if self._closed:
                raise RuntimeError("put on closed feed %r" % self.name)
            if self._readers and not any(r.active for r in self._readers):
                raise RuntimeError(
                    "all readers of feed %r are gone" % self.name)
            floor = self._active_floor()
            if floor is None or len(self._chunks) - floor < self.depth:
                break
            waiter = Event(self.env)
            enqueued = self.env.now
            self._producer_waiters.append(waiter)
            yield waiter
            self.producer_wait_time += self.env.now - enqueued
        self._chunks.append(chunk)
        self._wake(self._reader_waiters)

    def close(self) -> None:
        """Signal normal end-of-stream; readers drain what remains."""
        if self.closed:
            return
        self._closed = True
        self._wake(self._reader_waiters)
        self._wake(self._producer_waiters)

    def fail(self, exc: BaseException) -> None:
        """Tear the stream down; every reader observes ``exc``."""
        if self._exc is not None:
            return
        self._exc = exc
        self._wake(self._reader_waiters)
        self._wake(self._producer_waiters)

    def _wake(self, waiters: Deque[Event]) -> None:
        # Succeed (not fail) so waiters re-check state; events abandoned
        # by interrupted processes trigger harmlessly.
        while waiters:
            waiters.popleft().succeed()

    def _wake_producer(self) -> None:
        self._wake(self._producer_waiters)


class ChunkReader:
    """One consumer's cursor into a :class:`ChunkFeed`."""

    def __init__(self, feed: ChunkFeed, name: Optional[str] = None):
        self.feed = feed
        self.name = name
        self.index = 0
        #: Highest chunk index ever consumed; back-pressure tracks this
        #: (not ``index``) so a rewound reader re-reading retained
        #: chunks does not stall the producer a second time.
        self.high_water = 0
        self.active = True

    def get(self) -> Generator[Event, None, Any]:
        """Next chunk, or :data:`~repro.sim.CLOSED` at end-of-stream."""
        feed = self.feed
        while True:
            if feed._exc is not None:
                raise feed._exc
            if self.index < len(feed._chunks):
                chunk = feed._chunks[self.index]
                self.index += 1
                if self.index > self.high_water:
                    self.high_water = self.index
                    feed._wake_producer()
                return chunk
            if feed._closed:
                return CLOSED
            waiter = Event(feed.env)
            feed._reader_waiters.append(waiter)
            yield waiter

    def rewind(self) -> None:
        """Restart from chunk 0 (ship retry after a transient outage)."""
        self.index = 0

    def close(self) -> None:
        """Permanently detach: back-pressure stops counting this reader."""
        if self.active:
            self.active = False
            self.feed._wake_producer()


# ----------------------------------------------------------------------
# watermark change stream
# ----------------------------------------------------------------------

class TapMarker:
    """One low/high watermark record injected into a :class:`ChangeTap`.

    The snapshot manager appends a ``lo`` marker, runs the chunk select,
    appends a ``hi`` marker, and then waits on :attr:`reached` — which
    fires once *every active consumer* has applied every change record
    before the marker (:attr:`awaiting` names the stragglers).  A ``hi``
    marker additionally parks each consumer until :attr:`proceed` fires,
    so the deduplicated chunk rows install on every destination strictly
    between the in-window records and anything newer (the DBLog ordering
    that makes each copy snapshot-equivalent).  A marker orphaned by a
    suspension is :attr:`cancelled` on resume so a (possibly rebuilt)
    applier skips the pause instead of deadlocking on a proceed signal
    that will never come.
    """

    __slots__ = ("kind", "chunk", "index", "reached", "proceed",
                 "cancelled", "awaiting")

    def __init__(self, env: "Environment", kind: str, chunk: int,
                 index: int, awaiting: Set[str]):
        self.kind = kind
        self.chunk = chunk
        #: Position of this marker in the tap's record sequence.
        self.index = index
        self.reached = Event(env)
        self.proceed = Event(env)
        self.cancelled = False
        #: Active consumer names that have not yet reached this marker;
        #: ``reached`` fires when the set empties (consumption or
        #: discard, whichever comes first).
        self.awaiting = awaiting
        if not awaiting:
            self.reached.succeed()


class TapCursor:
    """One named consumer's read position in a :class:`ChangeTap`.

    Duck-types the read API the change-stream applier drives
    (:meth:`peek` / :meth:`advance` / :meth:`reach_marker` /
    :meth:`consume_marker` / :meth:`pending_count` / :attr:`drained`),
    so each consumer replays the shared record sequence at its own
    pace.  The cursor — not the applier — owns consumption state:
    an applier that dies on a fault is rebuilt around the same cursor
    (:meth:`ChangeTap.consumer` reattaches by name) and continues from
    the exact record its predecessor last durably applied.
    """

    __slots__ = ("tap", "name", "index", "active", "_pending")

    def __init__(self, tap: "ChangeTap", name: str):
        self.tap = tap
        self.name = name
        #: Index of the first unconsumed record.
        self.index = 0
        self.active = True
        self._pending = 0

    def peek(self, limit: int) -> Tuple[List[Any], Optional[TapMarker]]:
        """The next batch of unconsumed transaction records.

        Returns up to ``limit`` transaction records starting at this
        cursor, stopping at the first marker.  If the cursor sits *on*
        a marker, returns ``([], marker)`` instead.  The cursor does not
        move — call :meth:`advance` after the batch was durably applied
        so a mid-batch failure replays it (row-image installs are
        value-idempotent).
        """
        records = self.tap.records
        if self.index < len(records):
            head = records[self.index]
            if isinstance(head, TapMarker):
                return [], head
        batch: List[Any] = []
        for record in records[self.index:self.index + limit]:
            if isinstance(record, TapMarker):
                break
            batch.append(record)
        return batch, None

    def advance(self, count: int) -> None:
        """Consume ``count`` transaction records at this cursor."""
        self.index += count
        self._pending -= count

    def reach_marker(self, marker: TapMarker) -> None:
        """Announce this consumer applied everything before ``marker``.

        Idempotent per consumer; fires ``marker.reached`` once the last
        active consumer arrives.
        """
        marker.awaiting.discard(self.name)
        if not marker.awaiting and not marker.reached.triggered:
            marker.reached.succeed()

    def consume_marker(self, marker: TapMarker) -> None:
        """Step this cursor past the marker it currently sits on."""
        assert self.tap.records[self.index] is marker
        self.index += 1

    def pending_count(self) -> int:
        """Unconsumed transaction records (this consumer's backlog)."""
        return self._pending

    @property
    def drained(self) -> bool:
        """Whether this consumer has replayed every appended record."""
        return self.index >= len(self.tap.records)


class ChangeTap:
    """Single-feed broadcast of the row-image change stream.

    Records are appended synchronously from the middleware's commit path
    (after the master acknowledged the commit and installed its
    versions), so the sequence is exactly CSN order.  Each transaction
    record is a tuple of ``(table, key, row_or_None)`` post-images
    (``None`` = delete); :class:`TapMarker` records interleave with
    them.  One producer feeds N consumers: each — destination, standby,
    router-warmed replica — reads through its own named
    :class:`TapCursor` over the one retained sequence (the
    :class:`ChunkFeed` retention precedent), a watermark's ``reached``
    fires only when every active consumer passed it, and
    :meth:`discard_consumer` drops a crashed consumer without
    disturbing the rest — no per-reader replay of the source.
    """

    def __init__(self, env: "Environment", name: Optional[str] = None):
        self.env = env
        self.name = name
        self.records: List[Any] = []
        self._consumers: Dict[str, TapCursor] = {}
        # statistics
        self.appended_txns = 0
        self.appended_writes = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def consumer(self, name: str) -> TapCursor:
        """The named consumer's cursor (created at the stream base).

        Reattach-by-name: asking for an existing name returns the same
        cursor, which is how a rebuilt applier (restart-and-resume)
        continues from the record its predecessor last durably applied.
        A brand-new consumer starts at record 0 — the sequence is
        retained in full, so late consumers replay from the base.
        """
        cursor = self._consumers.get(name)
        if cursor is None:
            cursor = TapCursor(self, name)
            self._consumers[name] = cursor
        return cursor

    def discard_consumer(self, name: str) -> None:
        """Permanently drop one consumer (crash / standby discard).

        Removes the consumer from every unconsumed marker's awaiting
        set — firing ``reached`` where it was the last straggler — so a
        crashed standby can never wedge the walk for the survivors.
        Unknown names are a no-op (teardown paths call this blindly).
        """
        cursor = self._consumers.get(name)
        if cursor is None or not cursor.active:
            return
        cursor.active = False
        for record in self.records[cursor.index:]:
            if isinstance(record, TapMarker):
                cursor.reach_marker(record)

    def active_consumers(self) -> List[str]:
        """Names of the consumers still being broadcast to, sorted."""
        return sorted(name for name, cursor in self._consumers.items()
                      if cursor.active)

    # ------------------------------------------------------------------
    # producer side (commit path + snapshot manager)
    # ------------------------------------------------------------------

    def append_txn(self, writes: Tuple[Tuple[str, Hashable, Any], ...]
                   ) -> None:
        """Append one committed transaction's post-images (CSN order)."""
        if not writes:
            return
        self.records.append(tuple(writes))
        for cursor in self._consumers.values():
            if cursor.active:
                cursor._pending += 1
        self.appended_txns += 1
        self.appended_writes += len(writes)

    def marker(self, kind: str, chunk: int) -> TapMarker:
        """Append (and return) a ``lo``/``hi`` watermark marker.

        The marker awaits exactly the consumers active at append time;
        a consumer attached later starts behind it and replays through
        it without being awaited.
        """
        awaiting = {name for name, cursor in self._consumers.items()
                    if cursor.active}
        mark = TapMarker(self.env, kind, chunk, len(self.records),
                         awaiting)
        self.records.append(mark)
        return mark

    # ------------------------------------------------------------------
    # manager-side queries
    # ------------------------------------------------------------------

    def pending_count(self) -> int:
        """Worst replication backlog over the active consumers."""
        pending = [cursor._pending
                   for cursor in self._consumers.values()
                   if cursor.active]
        return max(pending) if pending else 0

    @property
    def drained(self) -> bool:
        """Whether every active consumer replayed every record."""
        return all(cursor.drained
                   for cursor in self._consumers.values()
                   if cursor.active)

    def window_keys(self, lo: TapMarker, hi: TapMarker
                    ) -> Set[Tuple[str, Hashable]]:
        """Keys written between the ``lo`` and ``hi`` markers.

        These are the chunk rows the manager must *drop*: the change
        stream already carries a newer post-image for them, and that
        image was applied everywhere before ``hi.reached`` fired.
        """
        keys: Set[Tuple[str, Hashable]] = set()
        for record in self.records[lo.index + 1:hi.index]:
            if isinstance(record, TapMarker):
                continue
            for table_name, key, _row in record:
                keys.add((table_name, key))
        return keys

    def cancel_pending_markers(self) -> int:
        """Void every marker some active consumer has yet to pass.

        A resumed migration re-selects its current chunk with fresh
        markers; stale ones must neither park an applier (``hi`` with
        no manager waiting to fire ``proceed``) nor confuse window
        bookkeeping.  Returns the number of markers cancelled.
        """
        floors = [cursor.index for cursor in self._consumers.values()
                  if cursor.active]
        floor = min(floors) if floors else 0
        cancelled = 0
        for record in self.records[floor:]:
            if isinstance(record, TapMarker):
                record.cancelled = True
                if not record.proceed.triggered:
                    record.proceed.succeed()
                cancelled += 1
        return cancelled
