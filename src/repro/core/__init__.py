"""Madeus — the paper's primary contribution.

The pure-middleware live-migration proxy: operation classification,
syncset buffers/list (SSB/SSL), the master/slave logical clocks, the
critical region, the LSIR, the conductor/player propagation engines, the
migration manager, and the three baseline policies of Table 2.
"""

from .middleware import (
    Connection,
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
    MigrationReport,
    TenantState,
)
from .operations import Operation, OpKind, TxnTracker
from .pipeline import ChangeTap, ChunkFeed, ChunkReader
from .policy import (
    ALL_POLICIES,
    B_ALL,
    B_CON,
    B_MIN,
    MADEUS,
    PropagationPolicy,
    feature_matrix,
    policy_by_name,
)
from .propagation import Conductor, PropagationStats, SerialReplayer
from .scheduler import (
    SCHEDULE_POLICIES,
    JobOutcome,
    MigrationScheduler,
    ScheduleOptions,
    ScheduleReport,
)
from .region import (
    COMMIT_CLASS,
    EXCLUSIVE_CLASS,
    FIRST_READ_CLASS,
    CriticalRegion,
)
from .ssb import SyncsetBuffer, SyncsetList
from .watermark import ChangeStreamApplier, SnapshotStrategy
from .theory import (
    NECESSARY_DEPENDENCIES,
    UNNECESSARY_DEPENDENCIES,
    DependencyType,
    HistoryRecorder,
    LsirValidator,
    ReplayEvent,
    mapping_function_output,
    states_equal,
)

__all__ = [
    "ALL_POLICIES",
    "B_ALL",
    "B_CON",
    "B_MIN",
    "COMMIT_CLASS",
    "ChangeStreamApplier",
    "ChangeTap",
    "ChunkFeed",
    "ChunkReader",
    "Conductor",
    "Connection",
    "CriticalRegion",
    "DependencyType",
    "EXCLUSIVE_CLASS",
    "FIRST_READ_CLASS",
    "HistoryRecorder",
    "JobOutcome",
    "LsirValidator",
    "MADEUS",
    "Middleware",
    "MiddlewareConfig",
    "MigrationOptions",
    "MigrationReport",
    "MigrationScheduler",
    "NECESSARY_DEPENDENCIES",
    "OpKind",
    "Operation",
    "PropagationPolicy",
    "PropagationStats",
    "ReplayEvent",
    "SCHEDULE_POLICIES",
    "ScheduleOptions",
    "ScheduleReport",
    "SerialReplayer",
    "SnapshotStrategy",
    "SyncsetBuffer",
    "SyncsetList",
    "TenantState",
    "TxnTracker",
    "UNNECESSARY_DEPENDENCIES",
    "feature_matrix",
    "mapping_function_output",
    "policy_by_name",
    "states_equal",
]
