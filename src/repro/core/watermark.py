"""Watermark (virtual-cut) snapshot machinery.

The third snapshot path (after the serial dump and the pipelined chunk
stream) interleaves chunked selects with the *live* change stream the
way DBLog does: the commit path taps each committed transaction's row
post-images into a :class:`~repro.core.pipeline.ChangeTap`, the
snapshot manager brackets every chunk select between low and high
watermark markers injected into that stream, and one
:class:`ChangeStreamApplier` *per destination node* replays the stream
in commit order.  The tap is a single-feed broadcast
(:class:`~repro.core.pipeline.TapCursor` per consumer), so a migration
with standbys fans the one change stream out to N nodes without
re-reading the source, and a consumer that crashes mid-walk is
discarded without disturbing the rest.  A chunk row whose key saw a
change inside its own lo/hi window is dropped — the change stream
already carries a newer image — so every restored copy is
snapshot-equivalent without ever freezing a CSN, and catch-up after
the last chunk is bounded by chunk size instead of dump duration.

This module also defines :class:`SnapshotStrategy`, the first-class
selector threaded through ``MigrationOptions`` / ``ScheduleOptions`` /
``RebalanceOptions``.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator, Optional, Union

from ..engine.wal import change_payload_mb
from ..errors import NetworkDown, NodeCrashed
from .pipeline import TapCursor, TapMarker
from .propagation import _BasePropagator

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.instance import DbmsInstance
    from ..net.network import Network
    from ..obs.metrics import MetricsRegistry
    from ..obs.trace import Tracer
    from ..sim.core import Environment
    from .policy import PropagationPolicy
    from .ssb import SyncsetList


class SnapshotStrategy(str, enum.Enum):
    """How the initial copy of a migrating tenant is produced.

    ``SERIAL``
        the paper-faithful monolithic dump → ship → restore;
    ``PIPELINED``
        the chunk-streamed dump/ship/restore overlap (PR 4);
    ``WATERMARK``
        DBLog-style virtual cuts: chunked selects interleaved with the
        live change stream, catch-up bounded by chunk size.
    """

    SERIAL = "serial"
    PIPELINED = "pipelined"
    WATERMARK = "watermark"

    @classmethod
    def coerce(cls, value: Union["SnapshotStrategy", str, None]
               ) -> Optional["SnapshotStrategy"]:
        """Normalise a strategy spelling (``None`` passes through)."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                raise ValueError(
                    "unknown snapshot strategy %r (expected one of: %s)"
                    % (value,
                       ", ".join(member.value for member in cls))
                ) from None
        raise TypeError(
            "snapshot strategy must be a SnapshotStrategy or str, "
            "got %r" % (value,))


class ChangeStreamApplier(_BasePropagator):
    """Replays the row-image change stream on the destination.

    A third propagation engine beside :class:`SerialReplayer` and
    :class:`Conductor`, speaking the same manager protocol (``start`` /
    ``wait_caught_up`` / ``request_stop`` / ``wait_fully_drained``) so
    the catch-up and handover phases drive it unchanged.  Instead of
    replaying SQL syncsets it consumes one :class:`TapCursor` of the
    tenant's broadcast :class:`~repro.core.pipeline.ChangeTap`:
    committed post-images are batched, shipped over the shared
    prioritised ``net.bulk_transfer`` stream (so they contend honestly
    with in-flight snapshot chunks), written to the destination disk,
    and installed as fresh versions — value-idempotent, so a batch
    replayed after a fault converges to the same state.  Watermark
    markers in the stream pace the snapshot manager: at a ``hi``
    marker the applier announces its cursor reached the watermark
    (``reached`` fires once the *last* consumer arrives) and parks
    until the manager has installed the deduplicated chunk on every
    node and fires ``proceed``.

    The read cursor lives on the tap, not here: if this applier dies
    on a fault, restart-and-resume builds a fresh one around the same
    named cursor and continues from the exact record its predecessor
    last durably applied.
    """

    #: Max transaction records shipped per round; with the tap appended
    #: in commit order this bounds both the batch payload and how long
    #: a ``hi`` marker waits behind in-flight work.
    BATCH_LIMIT = 32

    #: Same bounded-lag definition as :class:`Conductor`: under heavy
    #: workload the stream never hits a strictly empty instant.
    CATCHUP_THRESHOLD = 8

    def __init__(self, env: "Environment", cursor: TapCursor,
                 source_name: str, ssl: "SyncsetList",
                 slave: "DbmsInstance", tenant_name: str,
                 network: "Network", policy: "PropagationPolicy",
                 tracer: Optional["Tracer"] = None,
                 metrics: Optional["MetricsRegistry"] = None,
                 metrics_prefix: str = "propagation"):
        super().__init__(env, ssl, slave, tenant_name, network, policy,
                         None, tracer=tracer, metrics=metrics,
                         metrics_prefix=metrics_prefix)
        self.cursor = cursor
        self.tap = cursor.tap
        self.source_name = source_name
        self._busy = False

    # ------------------------------------------------------------------
    def _in_flight(self) -> int:
        return 1 if self._busy else 0

    def _is_drained(self) -> bool:
        return self.cursor.drained and not self._busy

    def _backlog(self) -> int:
        return self.cursor.pending_count()

    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        while True:
            if self.failed is not None:
                return
            batch, marker = self.cursor.peek(self.BATCH_LIMIT)
            if marker is not None:
                yield from self._consume_marker(marker)
                continue
            if not batch:
                if self._backlog() <= self.CATCHUP_THRESHOLD:
                    self._fire_caught_up()
                if self._stop_requested and self._is_drained():
                    self._fire_drained()
                    return
                yield from self._wait_for_work()
                continue
            self._busy = True
            try:
                yield from self._ship_and_apply(batch)
            except (NodeCrashed, NetworkDown) as exc:
                self._busy = False
                self._fail(str(exc))
                return
            self._busy = False
            # Only consume once durably applied: a mid-batch fault
            # leaves the cursor put and a successor replays the batch
            # (row-image installs are value-idempotent).
            self.cursor.advance(len(batch))
            if self._backlog() <= self.CATCHUP_THRESHOLD:
                self._fire_caught_up()

    def _consume_marker(self, marker: TapMarker) -> Generator:
        """Handle a watermark record at this consumer's cursor.

        The cursor announces it reached the marker (``reached`` fires
        once every active consumer has); a live ``hi`` marker parks
        the applier here — cursor still *on* the marker, so a resume
        that cancels pending markers unblocks exactly this wait —
        until the manager installed the deduplicated chunk everywhere.
        """
        self.cursor.reach_marker(marker)
        if marker.kind == "hi" and not marker.cancelled:
            yield marker.proceed
        self.cursor.consume_marker(marker)

    def _ship_and_apply(self, batch) -> Generator:
        """Ship one batch of transactions and install their images."""
        operations = sum(len(writes) for writes in batch)
        payload = change_payload_mb(operations)
        attempt = 0
        while True:
            try:
                if payload > 0:
                    yield from self.network.bulk_transfer(
                        self.source_name, self.slave.name, payload)
                break
            except NetworkDown:
                attempt += 1
                if attempt > self.NET_RETRY_LIMIT:
                    raise
                self.stats.net_retries += 1
                yield self.env.timeout(
                    min(self.NET_RETRY_CAP,
                        self.NET_RETRY_BASE * (2 ** (attempt - 1))))
        if self.slave.crashed:
            raise NodeCrashed(self.slave.name,
                              "crashed during change-stream apply")
        if payload > 0:
            yield from self.slave.disk.write(payload)
        if self.slave.crashed:
            raise NodeCrashed(self.slave.name,
                              "crashed during change-stream apply")
        tenant = self.slave.tenant(self.tenant_name)
        for writes in batch:
            csn = self.slave.next_csn()
            for table_name, key, row in writes:
                tenant.table(table_name).install(
                    key, csn, dict(row) if row is not None else None)
            self.stats.syncsets_replayed += 1
            self.stats.commits_replayed += 1
            self.stats.writes_replayed += len(writes)
            self.stats.operations_replayed += len(writes)
        self.stats.rounds += 1
        self.stats.max_concurrent_players = max(
            self.stats.max_concurrent_players, 1)
        if self.stats.rounds % 32 == 0:
            self._publish_stats()
