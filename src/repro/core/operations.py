"""The middleware's view of customer operations.

Madeus interposes on every statement a customer sends, parses it, and
classifies it into the categories the LSIR cares about: the *first read*
of a transaction (which creates the snapshot), later reads, writes,
commits, and aborts.  The classification is purely syntactic plus
per-connection transaction state — exactly what a wire-protocol proxy can
see.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

from ..engine.sqlmini import (
    Begin,
    Commit,
    Rollback,
    Statement,
    is_read_statement,
    is_write_statement,
    parse,
)
from ..errors import SqlError


class OpKind(enum.Enum):
    """Middleware classification of one statement."""

    BEGIN = "begin"
    FIRST_READ = "first_read"
    READ = "read"
    WRITE = "write"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass
class Operation:
    """One classified statement flowing through the middleware.

    ``cpu_cost`` is the execution-cost annotation carried by the workload
    template (a TPC-W best-sellers query costs more than a point lookup);
    the slave replay uses the same cost, so replaying is as expensive as
    the original execution — an assumption the paper shares.
    """

    kind: OpKind
    sql: str
    statement: Statement
    cpu_cost: Optional[float] = None
    #: middleware-assigned transaction sequence (for reports/validation)
    txn_label: Optional[int] = None

    @property
    def is_sync_relevant(self) -> bool:
        """Whether the mapping function may keep this operation."""
        return self.kind in (OpKind.FIRST_READ, OpKind.WRITE, OpKind.COMMIT)


class TxnTracker:
    """Per-connection transaction-state machine for classification.

    The proxy cannot know in advance whether a transaction will turn out
    to be read-only; it therefore treats the first read of *every*
    transaction as a potential snapshot-creating first read (Algorithm 1)
    and discards the syncset buffer at commit time if no write occurred
    (the mapping function's rule (1)).
    """

    _labels = itertools.count(1)

    def __init__(self) -> None:
        self.in_txn = False
        self.saw_first_operation = False
        self.is_update = False
        self.label: Optional[int] = None

    def classify(self, statement: Statement, sql: str,
                 cpu_cost: Optional[float] = None) -> Operation:
        """Classify one statement and advance the state machine."""
        if isinstance(statement, Begin):
            if self.in_txn:
                raise SqlError("nested BEGIN on one connection")
            self.in_txn = True
            self.saw_first_operation = False
            self.is_update = False
            self.label = next(TxnTracker._labels)
            return Operation(OpKind.BEGIN, sql, statement, cpu_cost,
                             self.label)
        if isinstance(statement, Commit):
            label = self.label
            self._finish()
            return Operation(OpKind.COMMIT, sql, statement, cpu_cost, label)
        if isinstance(statement, Rollback):
            label = self.label
            self._finish()
            return Operation(OpKind.ABORT, sql, statement, cpu_cost, label)
        if not self.in_txn:
            # Autocommit statement: treated as its own tiny transaction by
            # the caller; classification is still read/write.
            kind = OpKind.WRITE if is_write_statement(statement) \
                else OpKind.READ
            return Operation(kind, sql, statement, cpu_cost, None)
        if is_write_statement(statement):
            # "No blind writes" (Section 3.1): the workload always reads
            # first, so a write can never be the first operation.  Guard
            # anyway: a leading write also creates the snapshot.
            first = not self.saw_first_operation
            self.saw_first_operation = True
            self.is_update = True
            kind = OpKind.FIRST_READ if first else OpKind.WRITE
            if first:
                # A blind first write both creates the snapshot and
                # modifies data; Madeus treats it as first operation and
                # write combined.  The mapping function keeps it.
                kind = OpKind.FIRST_READ
            return Operation(kind, sql, statement, cpu_cost, self.label)
        if is_read_statement(statement):
            if not self.saw_first_operation:
                self.saw_first_operation = True
                return Operation(OpKind.FIRST_READ, sql, statement,
                                 cpu_cost, self.label)
            return Operation(OpKind.READ, sql, statement, cpu_cost,
                             self.label)
        # DDL inside a transaction: classify as a write.
        self.is_update = True
        self.saw_first_operation = True
        return Operation(OpKind.WRITE, sql, statement, cpu_cost, self.label)

    def classify_text(self, sql: str,
                      cpu_cost: Optional[float] = None) -> Operation:
        """Parse then classify raw SQL text."""
        return self.classify(parse(sql), sql, cpu_cost)

    def reset(self) -> None:
        """Forget any open transaction (engine-initiated abort)."""
        self._finish()

    def _finish(self) -> None:
        self.in_txn = False
        self.saw_first_operation = False
        self.is_update = False
        self.label = None
