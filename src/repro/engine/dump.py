"""Logical dump and restore — the pg_dump / psql-restore stand-in.

Step 1 of the paper's migration creates a snapshot of the master with a
*dump transaction* while customer transactions keep running; Step 2
recreates the database on the destination from that snapshot.  The paper
notes (Section 5.5) that restoring is much slower than dumping because the
destination "not only inserts data but also alters the attributes of the
databases and creates indexes", which is why larger databases accumulate
more syncsets and migrate superlinearly slower (Figure 9).

Both operations are timed in chunks against the owning node's disk so
that customer traffic and the WAL contend realistically with them.

Two snapshot paths coexist:

* the serial :func:`dump` / :func:`restore` pair materialises one
  :class:`LogicalSnapshot` and is the paper-faithful baseline, and
* the chunk-streaming :func:`dump_stream` / :func:`restore_stream` pair
  emits :class:`SnapshotChunk` pieces at the captured CSN so dump, ship
  and restore can overlap (DBLog-style chunk-interleaved capture is
  correct under a live write stream because MVCC keeps every version at
  the snapshot CSN visible until the dump transaction ends).  A
  streaming restore bulk-loads and index-builds *per chunk*, so it pays
  the linear insert cost per chunk instead of one superlinear
  index-build over the whole database — which is exactly where the
  pipelined path beats the serial one on large tenants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Hashable, List, Optional, Tuple

from ..errors import NodeCrashed
from .instance import DbmsInstance
from .schema import TableSchema
from .sqlmini import ColumnDef


@dataclass
class TransferRates:
    """Throughput model for dump and restore.

    ``restore_mb_s`` is deliberately several times slower than
    ``dump_mb_s``; ``index_log_coeff`` adds the n·log n index-build term
    that makes Figure 9 superlinear.
    """

    dump_mb_s: float = 40.0
    restore_mb_s: float = 10.0
    #: Extra restore time fraction per decade of size above ``base_mb``.
    index_log_coeff: float = 0.35
    base_mb: float = 800.0
    chunk_mb: float = 32.0


@dataclass
class SchemaSpec:
    """Serializable description of one table's schema."""

    name: str
    columns: Tuple[ColumnDef, ...]
    indexes: Dict[str, str] = field(default_factory=dict)

    def to_schema(self) -> TableSchema:
        """Materialise a fresh TableSchema (indexes added separately)."""
        return TableSchema(self.name, self.columns)


@dataclass
class LogicalSnapshot:
    """A consistent logical copy of one tenant at a snapshot CSN."""

    tenant_name: str
    snapshot_csn: int
    schemas: List[SchemaSpec]
    rows: Dict[str, Dict[Hashable, Dict[str, Any]]]
    size_mb: float
    fixed_overhead_mb: float = 0.0
    size_multiplier: float = 1.0


def snapshot_size_mb(instance: DbmsInstance, tenant_name: str) -> float:
    """Current nominal size of a tenant, in MB."""
    return instance.tenant(tenant_name).size_mb()


def create_from_schemas(instance: DbmsInstance, tenant_name: str,
                        schemas: List[SchemaSpec],
                        fixed_overhead_mb: float = 0.0,
                        size_multiplier: float = 1.0) -> Any:
    """Create an empty tenant shell on ``instance`` from schema specs.

    Shared by every restore flavour (serial, chunk-streamed, watermark):
    the destination needs the tables and size-accounting knobs in place
    before the first row lands.  Secondary indexes are *not* created
    here — see :func:`finalize_indexes`.  Returns the tenant database.
    """
    tenant = instance.create_tenant(tenant_name)
    tenant.fixed_overhead_mb = fixed_overhead_mb
    tenant.size_multiplier = size_multiplier
    for spec in schemas:
        tenant.create_table(spec.to_schema())
    return tenant


def finalize_indexes(tenant: Any, schemas: List[SchemaSpec]) -> None:
    """Create any secondary indexes the copy does not have yet.

    The streamed paths defer index creation until after the bulk load
    (their build time is already inside the pacing model); idempotent so
    a resumed restore may call it again.
    """
    for spec in schemas:
        table = tenant.table(spec.name)
        for index_name, column in spec.indexes.items():
            if index_name not in table.indexes:
                table.create_index(index_name, column)


def dump(instance: DbmsInstance, tenant_name: str, snapshot_csn: int,
         rates: TransferRates) -> Generator[Any, Any, LogicalSnapshot]:
    """Stream a consistent dump of ``tenant_name`` at ``snapshot_csn``.

    The caller supplies the snapshot CSN (the middleware manager captures
    it inside its critical region so that MTS corresponds exactly to a
    commit boundary).  Reads are charged to the master's disk in chunks so
    foreground commits interleave.
    """
    tenant = instance.tenant(tenant_name)
    size_mb = tenant.size_mb()
    remaining = size_mb
    while remaining > 0:
        chunk = min(rates.chunk_mb, remaining)
        yield from instance.disk.read(chunk)
        # pace the dump at the configured rate (parsing/output formatting
        # keeps it below raw disk bandwidth)
        read_bw = instance.disk.spec.read_bandwidth_mb_s
        pace = chunk / rates.dump_mb_s - chunk / read_bw
        if pace > 0:
            yield instance.env.timeout(pace)
        remaining -= chunk
    schemas: List[SchemaSpec] = []
    rows: Dict[str, Dict[Hashable, Dict[str, Any]]] = {}
    for table_name in tenant.catalog.table_names():
        table = tenant.table(table_name)
        schemas.append(SchemaSpec(table_name, table.schema.columns,
                                  dict(table.schema.indexes)))
        rows[table_name] = {key: dict(row)
                            for key, row in table.visible_rows(snapshot_csn)}
    return LogicalSnapshot(tenant_name, snapshot_csn, schemas, rows, size_mb,
                           tenant.fixed_overhead_mb, tenant.size_multiplier)


def restore_duration(size_mb: float, rates: TransferRates) -> float:
    """Closed-form restore time: linear insert cost + index-build term."""
    base = size_mb / rates.restore_mb_s
    if size_mb <= rates.base_mb:
        return base
    decades = math.log10(size_mb / rates.base_mb)
    return base * (1.0 + rates.index_log_coeff * decades * math.log2(
        size_mb / rates.base_mb))


def restore(instance: DbmsInstance, snapshot: LogicalSnapshot,
            rates: TransferRates,
            tenant_name: str | None = None) -> Generator[Any, Any, str]:
    """Recreate the dumped tenant on ``instance`` (the destination).

    Creates the schema, bulk-loads the rows, then "creates indexes and
    alters attributes" — all charged to the destination's disk in chunks.
    Returns the created tenant's name.
    """
    name = tenant_name or snapshot.tenant_name
    tenant = create_from_schemas(instance, name, snapshot.schemas,
                                 snapshot.fixed_overhead_mb,
                                 snapshot.size_multiplier)
    duration = restore_duration(snapshot.size_mb, rates)
    write_mb = snapshot.size_mb
    chunks = max(1, int(math.ceil(write_mb / rates.chunk_mb)))
    pace_per_chunk = duration / chunks
    for _index in range(chunks):
        if instance.crashed:
            raise NodeCrashed(instance.name, "crashed during restore")
        chunk = write_mb / chunks
        yield from instance.disk.write(chunk)
        io_time = (instance.disk.spec.seek_latency
                   + chunk / instance.disk.spec.write_bandwidth_mb_s)
        pace = pace_per_chunk - io_time
        if pace > 0:
            yield instance.env.timeout(pace)
    if instance.crashed:
        raise NodeCrashed(instance.name, "crashed during restore")
    # Bulk-install the snapshot rows at a fresh CSN on the destination.
    csn = instance.next_csn()
    for table_name, table_rows in snapshot.rows.items():
        table = tenant.table(table_name)
        for key, row in table_rows.items():
            table.install(key, csn, dict(row))
    # Recreate secondary indexes (their build time is inside ``duration``).
    for spec in snapshot.schemas:
        table = tenant.table(spec.name)
        for index_name, column in spec.indexes.items():
            table.create_index(index_name, column)
    return name


# ----------------------------------------------------------------------
# chunk-streaming snapshot path
# ----------------------------------------------------------------------

@dataclass
class SnapshotChunk:
    """One piece of a streamed logical snapshot.

    Chunk 0 additionally carries the schema specs so the destination can
    create the tenant before any data lands.  All chunks are captured at
    the same ``snapshot_csn`` — the stream as a whole is exactly as
    consistent as a monolithic :class:`LogicalSnapshot`.
    """

    tenant_name: str
    snapshot_csn: int
    index: int
    total: int
    size_mb: float
    total_size_mb: float
    rows: Dict[str, Dict[Hashable, Dict[str, Any]]]
    schemas: List[SchemaSpec] = field(default_factory=list)
    fixed_overhead_mb: float = 0.0
    size_multiplier: float = 1.0

    @property
    def final(self) -> bool:
        """Whether this is the last chunk of the stream."""
        return self.index == self.total - 1


class SnapshotTruncated(RuntimeError):
    """The chunk stream ended before the final chunk arrived."""


def plan_chunks(size_mb: float, chunk_mb: float) -> int:
    """Number of chunks a ``size_mb`` tenant streams in (always >= 1)."""
    if size_mb <= 0:
        return 1
    return max(1, int(math.ceil(size_mb / chunk_mb)))


def dump_stream(instance: DbmsInstance, tenant_name: str,
                snapshot_csn: int, rates: TransferRates, sink: Any,
                chunk_mb: float | None = None,
                start_index: int = 0,
                total_chunks: int | None = None,
                total_size_mb: float | None = None
                ) -> Generator[Any, Any, int]:
    """Dump ``tenant_name`` as a stream of :class:`SnapshotChunk`.

    Each chunk is read from the master's disk, paced to ``dump_mb_s``,
    and handed to ``sink.put`` (a :class:`~repro.sim.Channel`-like
    object) *before* the next chunk is read — so a full sink exerts
    back-pressure on the dump itself.  The sink is closed on success;
    on failure the caller owns tearing the sink down.  Returns the
    number of chunks emitted.

    Resume support: a journalled re-entry passes ``start_index`` (the
    lowest chunk index any destination still needs) together with the
    chunk plan frozen at the *original* dump start (``total_chunks``,
    ``total_size_mb``) — the tenant keeps growing under load, so the
    plan must not be re-derived.  Under MVCC the versions visible at
    ``snapshot_csn`` survive even a crash-and-restart of the source, so
    the resumed slices are byte-identical to the originals.
    """
    tenant = instance.tenant(tenant_name)
    size_mb = (total_size_mb if total_size_mb is not None
               else tenant.size_mb())
    chunk_cap = chunk_mb if chunk_mb is not None else rates.chunk_mb
    total = (total_chunks if total_chunks is not None
             else plan_chunks(size_mb, chunk_cap))
    if not 0 <= start_index <= total:
        raise ValueError("start_index %d outside the %d-chunk plan"
                         % (start_index, total))
    # Capture the row set at the snapshot CSN up front: under MVCC the
    # same versions stay visible for the whole dump transaction, so
    # slicing the capture across chunk emissions changes nothing.
    schemas: List[SchemaSpec] = []
    flat: List[Tuple[str, Hashable, Dict[str, Any]]] = []
    for table_name in tenant.catalog.table_names():
        table = tenant.table(table_name)
        schemas.append(SchemaSpec(table_name, table.schema.columns,
                                  dict(table.schema.indexes)))
        for key, row in table.visible_rows(snapshot_csn):
            flat.append((table_name, key, dict(row)))
    read_bw = instance.disk.spec.read_bandwidth_mb_s
    for index in range(start_index, total):
        if instance.crashed:
            raise NodeCrashed(instance.name, "crashed during dump")
        chunk_size = size_mb / total
        if chunk_size > 0:
            yield from instance.disk.read(chunk_size)
            pace = chunk_size / rates.dump_mb_s - chunk_size / read_bw
            if pace > 0:
                yield instance.env.timeout(pace)
        lo = index * len(flat) // total
        hi = (index + 1) * len(flat) // total
        rows: Dict[str, Dict[Hashable, Dict[str, Any]]] = {}
        for table_name, key, row in flat[lo:hi]:
            rows.setdefault(table_name, {})[key] = row
        chunk = SnapshotChunk(
            tenant_name, snapshot_csn, index, total, chunk_size, size_mb,
            rows, schemas if index == 0 else [],
            tenant.fixed_overhead_mb, tenant.size_multiplier)
        yield from sink.put(chunk)
    sink.close()
    return total - start_index


def restore_stream(instance: DbmsInstance, source: Any,
                   rates: TransferRates,
                   tenant_name: str | None = None,
                   resume_from: int = 0,
                   schemas: List[SchemaSpec] | None = None,
                   expected_total: int | None = None,
                   on_chunk: Any = None
                   ) -> Generator[Any, Any, str]:
    """Recreate a tenant on ``instance`` from a chunk stream.

    ``source.get`` must yield :class:`SnapshotChunk` objects in order
    and then the :data:`~repro.sim.CLOSED` sentinel.  Each chunk is
    bulk-loaded and paced to ``restore_duration(chunk.size_mb)`` — the
    incremental index-maintenance model: small chunks never cross
    ``base_mb``, so the stream dodges the whole-database n·log n
    index-build that makes the serial restore superlinear.  Secondary
    indexes are finalised after the last chunk.  Returns the tenant
    name; raises :class:`SnapshotTruncated` if the stream closes early.

    Resume support: a journalled re-entry passes ``resume_from`` (the
    count of chunks already installed durably — they are never
    re-shipped) and the ``schemas`` captured at dump start, since chunk
    0 (which normally carries them) is exactly what a resume skips.
    With ``resume_from > 0`` the existing partial tenant is reused; a
    re-delivered chunk (a rewind inside a resumed stream) re-installs
    identical rows at a fresh CSN, which is value-idempotent.
    ``on_chunk(chunk)`` is called after each durable install, so the
    caller can journal the per-node high-water mark.
    """
    from ..sim.sync import CLOSED
    name = tenant_name
    tenant = None
    spec_schemas: List[SchemaSpec] = list(schemas) if schemas else []
    if resume_from:
        if tenant_name is None or not instance.has_tenant(tenant_name):
            raise SnapshotTruncated(
                "resume at chunk %d of %r but no partial copy exists"
                % (resume_from, tenant_name))
        tenant = instance.tenant(tenant_name)
    received = resume_from
    expected = expected_total if expected_total is not None else 0
    while True:
        chunk = yield from source.get()
        if chunk is CLOSED:
            break
        if instance.crashed:
            raise NodeCrashed(instance.name, "crashed during restore")
        if tenant is None:
            name = tenant_name or chunk.tenant_name
            if instance.has_tenant(name):
                # Re-entry from chunk 0 of a kept partial copy (a ship
                # retry inside a resumed stream): reuse, re-install.
                tenant = instance.tenant(name)
            else:
                tenant = create_from_schemas(
                    instance, name, chunk.schemas or spec_schemas,
                    chunk.fixed_overhead_mb, chunk.size_multiplier)
        if chunk.schemas:
            spec_schemas = list(chunk.schemas)
        expected = chunk.total
        if chunk.size_mb > 0:
            yield from instance.disk.write(chunk.size_mb)
            io_time = (instance.disk.spec.seek_latency
                       + chunk.size_mb
                       / instance.disk.spec.write_bandwidth_mb_s)
            pace = restore_duration(chunk.size_mb, rates) - io_time
            if pace > 0:
                yield instance.env.timeout(pace)
        if instance.crashed:
            raise NodeCrashed(instance.name, "crashed during restore")
        csn = instance.next_csn()
        for table_name, table_rows in chunk.rows.items():
            table = tenant.table(table_name)
            for key, row in table_rows.items():
                table.install(key, csn, dict(row))
        received = max(received, chunk.index + 1)
        if on_chunk is not None:
            on_chunk(chunk)
    if tenant is None or received != expected:
        raise SnapshotTruncated(
            "stream for %r ended after %d of %d chunks"
            % (name, received, expected))
    if instance.crashed:
        # The crash landed while we waited for end-of-stream.
        raise NodeCrashed(instance.name, "crashed during restore")
    finalize_indexes(tenant, spec_schemas)
    assert name is not None
    return name


# ----------------------------------------------------------------------
# watermark (virtual-cut) chunk selects
# ----------------------------------------------------------------------

#: A position in the watermark key walk: ``(table_name, key)`` of the
#: last row the previous chunk covered, or ``None`` at the start.
WatermarkCursor = Optional[Tuple[str, Hashable]]


def watermark_select(instance: DbmsInstance, tenant_name: str,
                     cursor: WatermarkCursor, max_rows: int,
                     mb_per_row: float, rates: TransferRates
                     ) -> Generator[Any, Any,
                                    Tuple[List[Tuple[str, Hashable,
                                                     Dict[str, Any]]],
                                          WatermarkCursor]]:
    """One chunked watermark select over the *live* table state.

    Unlike :func:`dump` / :func:`dump_stream` there is no frozen
    snapshot CSN: the select reads the latest committed rows strictly
    after ``cursor`` in ``(table, key)`` order, up to ``max_rows`` of
    them, capturing the row images synchronously (one MVCC read per
    chain head) and then pacing the I/O against the source disk at the
    dump rate — so chunk selects contend with foreground commits and
    the WAL exactly like a dump slice does.  Returns ``(rows,
    next_cursor)`` where ``rows`` is a list of ``(table, key,
    row_copy)`` and ``next_cursor`` is ``None`` once the key walk is
    exhausted.  Correctness under concurrent writes comes from the
    low/high watermark bracket the caller places around this select,
    not from MVCC snapshots.
    """
    tenant = instance.tenant(tenant_name)
    rows: List[Tuple[str, Hashable, Dict[str, Any]]] = []
    next_cursor: WatermarkCursor = None
    for table_name in sorted(tenant.catalog.table_names()):
        if cursor is not None and table_name < cursor[0]:
            continue
        table = tenant.table(table_name)
        latest = dict(table.latest_rows())
        for key in sorted(latest):
            if (cursor is not None and table_name == cursor[0]
                    and not key > cursor[1]):
                continue
            rows.append((table_name, key, dict(latest[key])))
            if len(rows) >= max_rows:
                next_cursor = (table_name, key)
                break
        if next_cursor is not None:
            break
    if instance.crashed:
        raise NodeCrashed(instance.name, "crashed during chunk select")
    chunk_mb = mb_per_row * len(rows)
    if chunk_mb > 0:
        yield from instance.disk.read(chunk_mb)
        read_bw = instance.disk.spec.read_bandwidth_mb_s
        pace = chunk_mb / rates.dump_mb_s - chunk_mb / read_bw
        if pace > 0:
            yield instance.env.timeout(pace)
    return rows, next_cursor
