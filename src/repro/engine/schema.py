"""Table schemas and per-tenant catalogs.

A tenant database owns a :class:`Catalog` of :class:`TableSchema` objects.
Schemas also drive the size model: each column type has a nominal on-disk
width, so row counts translate into database sizes (Table 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import SchemaError
from .sqlmini import ColumnDef

#: Nominal on-disk width in bytes per column type, tuple space included.
#: Calibrated so the TPC-W population model lands on the paper's Table 3
#: sizes (100k items + 100 EBs -> ~0.8 GB).
TYPE_WIDTHS: Dict[str, int] = {
    "INT": 8,
    "INTEGER": 8,
    "BIGINT": 8,
    "FLOAT": 8,
    "DOUBLE": 8,
    "NUMERIC": 12,
    "DATE": 8,
    "TIMESTAMP": 8,
    "TEXT": 64,
    "VARCHAR": 40,
    "CHAR": 16,
    "BLOB": 2048,
}

#: Per-row fixed overhead (tuple header + item pointer), PostgreSQL-like.
ROW_OVERHEAD_BYTES = 32

#: Per-index-entry overhead (btree entry).
INDEX_ENTRY_BYTES = 24


@dataclass
class TableSchema:
    """Schema of one table: ordered columns, primary key, indexes."""

    name: str
    columns: Tuple[ColumnDef, ...]
    indexes: Dict[str, str] = field(default_factory=dict)  # index -> column

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column in table %r" % self.name)
        primaries = [c.name for c in self.columns if c.primary_key]
        if len(primaries) != 1:
            raise SchemaError("table %r must have exactly one primary key "
                              "column, found %d" % (self.name, len(primaries)))
        self._primary_key = primaries[0]
        self._column_set = set(names)

    @property
    def primary_key(self) -> str:
        """Name of the primary-key column."""
        return self._primary_key

    def has_column(self, name: str) -> bool:
        """Whether the table defines column ``name``."""
        return name in self._column_set

    def require_column(self, name: str) -> None:
        """Raise :class:`SchemaError` unless ``name`` is a column."""
        if name not in self._column_set:
            raise SchemaError("table %r has no column %r"
                              % (self.name, name))

    def add_column(self, column: ColumnDef) -> None:
        """ALTER TABLE ADD COLUMN support."""
        if column.name in self._column_set:
            raise SchemaError("column %r already exists in %r"
                              % (column.name, self.name))
        if column.primary_key:
            raise SchemaError("cannot add a second primary key to %r"
                              % self.name)
        self.columns = self.columns + (column,)
        self._column_set.add(column.name)

    def add_index(self, index_name: str, column: str) -> None:
        """CREATE INDEX support."""
        self.require_column(column)
        if index_name in self.indexes:
            raise SchemaError("index %r already exists" % index_name)
        self.indexes[index_name] = column

    def indexed_column_names(self) -> Tuple[str, ...]:
        """Columns covered by a secondary index."""
        return tuple(self.indexes.values())

    def row_width_bytes(self) -> int:
        """Nominal stored width of one row, including tuple overhead."""
        width = ROW_OVERHEAD_BYTES
        for column in self.columns:
            width += TYPE_WIDTHS.get(column.type_name, 16)
        # one btree entry for the PK plus one per secondary index
        width += INDEX_ENTRY_BYTES * (1 + len(self.indexes))
        return width


class Catalog:
    """The set of table schemas of one tenant database."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableSchema] = {}

    def create_table(self, schema: TableSchema) -> None:
        """Register a new table schema."""
        if schema.name in self._tables:
            raise SchemaError("table %r already exists" % schema.name)
        self._tables[schema.name] = schema

    def table(self, name: str) -> TableSchema:
        """Look up a schema; raises :class:`SchemaError` if unknown."""
        schema = self._tables.get(name)
        if schema is None:
            raise SchemaError("unknown table %r" % name)
        return schema

    def has_table(self, name: str) -> bool:
        """Whether ``name`` is a known table."""
        return name in self._tables

    def table_names(self) -> Tuple[str, ...]:
        """All table names, in creation order."""
        return tuple(self._tables)

    def get(self, name: str) -> Optional[TableSchema]:
        """Like :meth:`table` but returns ``None`` when unknown."""
        return self._tables.get(name)
