"""Simulated disk: one head (FIFO), seek latency, streaming bandwidth.

Matches the paper's testbed of one 250-GB SATA HDD per node.  WAL fsyncs,
checkpoint bursts, dump reads, and restore writes all contend for the same
head, which is what makes group commit matter and what produces the
checkpoint "whiskers" visible in Figures 7/8/10/11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from ..sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment


@dataclass
class DiskSpec:
    """Performance envelope of the simulated drive.

    Defaults approximate a 7200-rpm SATA HDD: ~4 ms average rotational
    latency + seek for a small synchronous write, ~100 MB/s streaming.
    """

    fsync_latency: float = 0.004
    seek_latency: float = 0.004
    read_bandwidth_mb_s: float = 120.0
    write_bandwidth_mb_s: float = 90.0


class Disk:
    """One disk with a single-request-at-a-time head and FIFO queueing."""

    def __init__(self, env: "Environment", spec: Optional[DiskSpec] = None,
                 name: str = "disk"):
        self.env = env
        self.spec = spec or DiskSpec()
        self.name = name
        self.head = Resource(env, capacity=1, name="%s.head" % name)
        # statistics
        self.fsyncs = 0
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.stalls = 0
        self.stall_time = 0.0

    # ------------------------------------------------------------------
    def _occupy(self, duration: float) -> Generator:
        request = self.head.request()
        yield request
        yield self.env.timeout(duration)
        self.head.release(request)

    def fsync(self, payload_mb: float = 0.0) -> Generator:
        """Synchronous log flush: seek + rotational latency + payload.

        The payload is tiny for a single commit record; a *group* commit
        amortises the fixed latency over many commit records, which is the
        effect Madeus exploits (Section 4.1).
        """
        self.fsyncs += 1
        self.bytes_written += payload_mb * 1e6
        duration = (self.spec.fsync_latency
                    + payload_mb / self.spec.write_bandwidth_mb_s)
        yield from self._occupy(duration)

    def read(self, size_mb: float) -> Generator:
        """Streaming read of ``size_mb`` megabytes."""
        self.bytes_read += size_mb * 1e6
        duration = (self.spec.seek_latency
                    + size_mb / self.spec.read_bandwidth_mb_s)
        yield from self._occupy(duration)

    def write(self, size_mb: float) -> Generator:
        """Streaming write of ``size_mb`` megabytes."""
        self.bytes_written += size_mb * 1e6
        duration = (self.spec.seek_latency
                    + size_mb / self.spec.write_bandwidth_mb_s)
        yield from self._occupy(duration)

    def stall(self, duration: float) -> Generator:
        """Occupy the head for ``duration`` without moving any bytes.

        Models a firmware hiccup / overloaded hypervisor volume: queued
        fsyncs, dump reads, and restore writes all wait behind the stall
        (no errors -- I/O is late, not lost).
        """
        self.stalls += 1
        self.stall_time += duration
        yield from self._occupy(duration)

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for the head."""
        return self.head.queue_length
