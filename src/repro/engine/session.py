"""Client sessions: the statement-at-a-time interface to an instance.

A :class:`Session` is what a connection looks like to a client (or to the
middleware, which holds one master-side session per customer connection
and slave-side sessions inside its players).  It tracks the current
transaction, routes BEGIN/COMMIT/ROLLBACK, converts engine-initiated
aborts into error results, and accepts raw SQL text or pre-parsed ASTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Union

from ..errors import (
    InvalidTransactionState,
    NodeCrashed,
    SchemaError,
    SqlError,
    TransactionAborted,
)
from .instance import DbmsInstance
from .mvcc import Row
from .sqlmini import Begin, Commit, Rollback, Statement, parse
from .transaction import Transaction


@dataclass
class SessionResult:
    """Outcome of one statement as seen by the client."""

    kind: str                       # "rows" | "affected" | "ok" | "error"
    rows: List[Row] = field(default_factory=list)
    affected: int = 0
    error: Optional[str] = None
    commit_csn: Optional[int] = None

    @property
    def ok(self) -> bool:
        """Whether the statement succeeded."""
        return self.kind != "error"


class Session:
    """One client connection to a tenant on a DBMS instance."""

    def __init__(self, instance: DbmsInstance, tenant_name: str):
        self.instance = instance
        self.tenant_name = tenant_name
        self.txn: Optional[Transaction] = None
        # statistics
        self.statements = 0
        self.aborts_seen = 0

    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is open."""
        return self.txn is not None and self.txn.is_active

    def execute(self, statement: Union[str, Statement],
                cpu_cost: Optional[float] = None
                ) -> Generator[Any, Any, SessionResult]:
        """Run one statement; never raises for transaction conflicts.

        Engine-initiated aborts (first-updater-wins) surface as an
        ``error`` result after the transaction has been rolled back, like
        a PostgreSQL ``ERROR: could not serialize access``.
        """
        if isinstance(statement, str):
            try:
                statement = parse(statement)
            except SqlError as exc:
                return SessionResult(kind="error", error=str(exc))
        self.statements += 1
        if isinstance(statement, Begin):
            return self._begin()
        if isinstance(statement, Commit):
            return (yield from self._commit())
        if isinstance(statement, Rollback):
            return self._rollback()
        try:
            result = yield from self.instance.execute(
                self.txn, self.tenant_name, statement, cpu_cost=cpu_cost)
        except TransactionAborted as exc:
            self.aborts_seen += 1
            if self.txn is not None:
                self.instance.abort(self.txn)
                self.txn = None
            return SessionResult(kind="error", error=str(exc))
        except (SchemaError, SqlError) as exc:
            # Statement-level error: PostgreSQL would poison the txn; we
            # abort it for simplicity, which is the strictest behaviour.
            if self.txn is not None:
                self.instance.abort(self.txn)
                self.txn = None
            return SessionResult(kind="error", error=str(exc))
        except NodeCrashed as exc:
            # The backend died under us; the transaction died with it.
            self._drop_dead_txn()
            return SessionResult(kind="error", error=str(exc))
        if result.rows:
            return SessionResult(kind="rows", rows=result.rows)
        if result.affected:
            return SessionResult(kind="affected", affected=result.affected)
        return SessionResult(kind="rows", rows=result.rows)

    # ------------------------------------------------------------------
    def _begin(self) -> SessionResult:
        if self.in_transaction:
            return SessionResult(kind="error",
                                 error="transaction already in progress")
        try:
            self.txn = self.instance.begin(self.tenant_name)
        except NodeCrashed as exc:
            return SessionResult(kind="error", error=str(exc))
        return SessionResult(kind="ok")

    def _commit(self) -> Generator[Any, Any, SessionResult]:
        if not self.in_transaction:
            return SessionResult(kind="error",
                                 error="no transaction in progress")
        txn = self.txn
        try:
            csn = yield from self.instance.commit(txn)
        except InvalidTransactionState as exc:
            self.txn = None
            return SessionResult(kind="error", error=str(exc))
        except NodeCrashed as exc:
            self._drop_dead_txn()
            return SessionResult(kind="error", error=str(exc))
        self.txn = None
        return SessionResult(kind="ok", commit_csn=csn)

    def _drop_dead_txn(self) -> None:
        """Roll back a transaction orphaned by a node crash."""
        self.aborts_seen += 1
        if self.txn is not None and self.txn.is_active:
            self.instance.abort(self.txn)
        self.txn = None

    def _rollback(self) -> SessionResult:
        if self.txn is not None and self.txn.is_active:
            self.instance.abort(self.txn)
        self.txn = None
        return SessionResult(kind="ok")

    def reset(self) -> None:
        """Abort any open transaction (connection close)."""
        if self.txn is not None and self.txn.is_active:
            self.instance.abort(self.txn)
        self.txn = None
