"""Render mini-SQL ASTs back to SQL text.

The inverse of :func:`repro.engine.sqlmini.parse`, used for debugging
(printing a syncset's operations), for logging, and as the basis of the
parser's round-trip property tests: ``parse(render(ast)) == ast``.
"""

from __future__ import annotations

from typing import Any

from ..errors import SqlError
from .sqlmini import (
    AlterTable,
    Begin,
    BinaryOp,
    ColumnRef,
    Commit,
    CreateIndex,
    CreateTable,
    Delete,
    Expression,
    Insert,
    Literal,
    Rollback,
    Select,
    Statement,
    Update,
)


def render_literal(value: Any) -> str:
    """One SQL literal: NULL, number, or single-quoted string."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        raise SqlError("the dialect has no boolean literals")
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'%s'" % value.replace("'", "''")
    raise SqlError("cannot render literal %r" % (value,))


def render_expression(expression: Expression) -> str:
    """An arithmetic expression, parenthesised for associativity."""
    if isinstance(expression, Literal):
        return render_literal(expression.value)
    if isinstance(expression, ColumnRef):
        return expression.name
    if isinstance(expression, BinaryOp):
        return "(%s %s %s)" % (render_expression(expression.left),
                               expression.op,
                               render_expression(expression.right))
    raise SqlError("cannot render expression %r" % (expression,))


def _render_where(conjuncts: tuple) -> str:
    if not conjuncts:
        return ""
    parts = ["%s %s %s" % (c.column, c.op, render_literal(c.value))
             for c in conjuncts]
    return " WHERE " + " AND ".join(parts)


def render(statement: Statement) -> str:
    """Render any statement of the dialect back to SQL text."""
    if isinstance(statement, Begin):
        return "BEGIN"
    if isinstance(statement, Commit):
        return "COMMIT"
    if isinstance(statement, Rollback):
        return "ROLLBACK"
    if isinstance(statement, Select):
        columns = ", ".join(statement.columns) if statement.columns \
            else "*"
        sql = "SELECT %s FROM %s" % (columns, statement.table)
        sql += _render_where(statement.where)
        if statement.order_by is not None:
            sql += " ORDER BY %s" % statement.order_by
            if statement.descending:
                sql += " DESC"
        if statement.limit is not None:
            sql += " LIMIT %d" % statement.limit
        return sql
    if isinstance(statement, Insert):
        return "INSERT INTO %s (%s) VALUES (%s)" % (
            statement.table, ", ".join(statement.columns),
            ", ".join(render_literal(v) for v in statement.values))
    if isinstance(statement, Update):
        assignments = ", ".join(
            "%s = %s" % (column, render_expression(expression))
            for column, expression in statement.assignments)
        return ("UPDATE %s SET %s" % (statement.table, assignments)
                + _render_where(statement.where))
    if isinstance(statement, Delete):
        return "DELETE FROM %s" % statement.table \
            + _render_where(statement.where)
    if isinstance(statement, CreateTable):
        columns = ", ".join(
            "%s %s%s" % (c.name, c.type_name,
                         " PRIMARY KEY" if c.primary_key else "")
            for c in statement.columns)
        return "CREATE TABLE %s (%s)" % (statement.table, columns)
    if isinstance(statement, CreateIndex):
        return "CREATE INDEX %s ON %s (%s)" % (
            statement.name, statement.table, statement.column)
    if isinstance(statement, AlterTable):
        column = statement.column
        return "ALTER TABLE %s ADD COLUMN %s %s%s" % (
            statement.table, column.name, column.type_name,
            " PRIMARY KEY" if column.primary_key else "")
    raise SqlError("cannot render statement %r" % (statement,))
