"""Storage-engine substrate: a PostgreSQL-like DBMS, from scratch.

Multi-version concurrency control with snapshot isolation and the
first-updater-wins rule, a shared-process multi-tenant instance model, a
WAL with group commit, a periodic checkpointer, a simulated disk, and a
mini-SQL dialect with parser, executor, sessions, and logical
dump/restore.
"""

from .checkpoint import Checkpointer, CheckpointSpec
from .database import Table, TenantDatabase
from .disk import Disk, DiskSpec
from .dump import (
    LogicalSnapshot,
    SchemaSpec,
    SnapshotChunk,
    SnapshotTruncated,
    TransferRates,
    dump,
    dump_stream,
    restore,
    restore_duration,
    restore_stream,
    snapshot_size_mb,
)
from .executor import ExecResult, Executor
from .instance import DbmsInstance, EngineCosts, Observer
from .locks import LockTable
from .mvcc import SecondaryIndex, VersionChain
from .schema import Catalog, TableSchema
from .session import Session, SessionResult
from .sqlmini import (
    AlterTable,
    Begin,
    ColumnDef,
    Commit,
    CreateIndex,
    CreateTable,
    Delete,
    Insert,
    Rollback,
    Select,
    Statement,
    Update,
    is_read_statement,
    is_write_statement,
    parse,
)
from .transaction import Transaction, TxnStatus
from .wal import WalWriter

__all__ = [
    "AlterTable",
    "Begin",
    "Catalog",
    "Checkpointer",
    "CheckpointSpec",
    "ColumnDef",
    "Commit",
    "CreateIndex",
    "CreateTable",
    "DbmsInstance",
    "Delete",
    "Disk",
    "DiskSpec",
    "EngineCosts",
    "ExecResult",
    "Executor",
    "Insert",
    "LockTable",
    "LogicalSnapshot",
    "Observer",
    "Rollback",
    "SchemaSpec",
    "SecondaryIndex",
    "Select",
    "Session",
    "SessionResult",
    "SnapshotChunk",
    "SnapshotTruncated",
    "Statement",
    "Table",
    "TableSchema",
    "TenantDatabase",
    "Transaction",
    "TransferRates",
    "TxnStatus",
    "Update",
    "VersionChain",
    "WalWriter",
    "dump",
    "dump_stream",
    "is_read_statement",
    "is_write_statement",
    "parse",
    "restore",
    "restore_duration",
    "restore_stream",
    "snapshot_size_mb",
]
