"""Row write locks implementing the first-updater-wins rule.

Section 2.3 of the paper: when transaction ``T_i`` updates item ``x`` it
takes a write lock.  A concurrent ``T_j`` attempting to update ``x`` blocks
behind the lock; if ``T_i`` then commits, ``T_j`` aborts; if ``T_i``
aborts, ``T_j`` proceeds.  If ``T_i`` already committed before ``T_j``'s
attempt (i.e. the newest committed version postdates ``T_j``'s snapshot),
``T_j`` aborts immediately without waiting for its own commit.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Hashable, Tuple

from ..errors import TransactionAborted
from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from .transaction import Transaction

LockKey = Tuple[str, Hashable]  # (table name, primary key)


class _LockEntry:
    __slots__ = ("owner", "waiters")

    def __init__(self, owner: "Transaction"):
        self.owner = owner
        self.waiters: Deque[Tuple["Transaction", Event]] = deque()


class LockTable:
    """Per-tenant write locks with first-updater-wins conflict handling."""

    def __init__(self, env: "Environment"):
        self.env = env
        self._entries: Dict[LockKey, _LockEntry] = {}
        # statistics
        self.conflicts = 0
        self.immediate_aborts = 0
        self.wait_aborts = 0

    def holder(self, key: LockKey):
        """The transaction currently holding ``key``'s lock, or None."""
        entry = self._entries.get(key)
        return entry.owner if entry is not None else None

    def try_acquire(self, txn: "Transaction", key: LockKey) -> Event:
        """Claim the write lock on ``key`` for ``txn``.

        Returns an event: it succeeds when the lock is granted and *fails*
        with :class:`TransactionAborted` if a concurrent holder commits
        first (first-updater-wins).  Re-acquiring a held lock succeeds
        immediately.
        """
        event = Event(self.env)
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = _LockEntry(txn)
            txn.held_locks.add(key)
            event.succeed()
        elif entry.owner is txn:
            event.succeed()
        else:
            self.conflicts += 1
            txn.waiting_on = key
            entry.waiters.append((txn, event))
        return event

    def release_all(self, txn: "Transaction", committed: bool) -> None:
        """Release every lock ``txn`` holds.

        ``committed=True`` aborts all waiters (the first updater won);
        ``committed=False`` hands each lock to its oldest waiter.
        Also withdraws ``txn`` from any wait queue it is parked in.
        """
        for key in list(txn.held_locks):
            entry = self._entries.get(key)
            if entry is None or entry.owner is not txn:
                continue
            if committed:
                self._abort_waiters(entry)
                del self._entries[key]
            else:
                self._grant_next(key, entry)
        txn.held_locks.clear()
        if txn.waiting_on is not None:
            self._withdraw(txn)

    def _abort_waiters(self, entry: _LockEntry) -> None:
        while entry.waiters:
            waiter, event = entry.waiters.popleft()
            waiter.waiting_on = None
            self.wait_aborts += 1
            event.fail(TransactionAborted(
                "first-updater-wins: concurrent writer committed first"))

    def _grant_next(self, key: LockKey, entry: _LockEntry) -> None:
        if not entry.waiters:
            del self._entries[key]
            return
        waiter, event = entry.waiters.popleft()
        entry.owner = waiter
        waiter.waiting_on = None
        waiter.held_locks.add(key)
        event.succeed()

    def _withdraw(self, txn: "Transaction") -> None:
        key = txn.waiting_on
        txn.waiting_on = None
        entry = self._entries.get(key)
        if entry is None:
            return
        remaining = deque((t, e) for t, e in entry.waiters if t is not txn)
        entry.waiters = remaining

    def lock_count(self) -> int:
        """Number of currently held locks."""
        return len(self._entries)

    def waiter_count(self) -> int:
        """Number of transactions parked behind locks."""
        return sum(len(e.waiters) for e in self._entries.values())
