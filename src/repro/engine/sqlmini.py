"""A small SQL dialect: tokenizer, AST, and recursive-descent parser.

The real Madeus interposes on the libpq / JDBC wire protocols and parses
each statement to classify it (first read / read / write / commit / abort)
and to forward it verbatim to master and slave.  Our middleware does the
same over this dialect, which covers what the TPC-W workload and the
dump/restore path need:

* ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` (``ABORT`` is a synonym)
* ``SELECT cols FROM t WHERE conj [ORDER BY col [DESC]] [LIMIT n]``
* ``INSERT INTO t (cols) VALUES (lits)``
* ``UPDATE t SET col = expr, ... WHERE conj``
* ``DELETE FROM t WHERE conj``
* ``CREATE TABLE t (col TYPE [PRIMARY KEY], ...)``
* ``CREATE INDEX name ON t (col)``
* ``ALTER TABLE t ADD COLUMN col TYPE`` (used by the restore path)

Expressions support literals (integer, float, single-quoted string, NULL),
column references, and ``+ - *`` arithmetic.  ``WHERE`` clauses are
conjunctions of ``col OP literal`` comparisons (``= != < <= > >=``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, List, Optional, Tuple, Union

from ..errors import SqlError

# ---------------------------------------------------------------------------
# tokens
# ---------------------------------------------------------------------------

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "ORDER", "BY", "DESC", "ASC", "LIMIT",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "BEGIN", "COMMIT",
    "ROLLBACK", "ABORT", "CREATE", "TABLE", "INDEX", "ON", "PRIMARY", "KEY",
    "ALTER", "ADD", "COLUMN", "NULL",
}

_PUNCT = {"(", ")", ",", "*", "=", "<", ">", "+", "-", "<=", ">=", "!=", "<>"}


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` is keyword/name/number/string/punct/end."""

    kind: str
    text: str
    position: int


def tokenize(sql: str) -> List[Token]:
    """Split ``sql`` into tokens, raising :class:`SqlError` on bad input."""
    tokens: List[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            chunks: List[str] = []
            while True:
                if j >= n:
                    raise SqlError("unterminated string literal at %d" % i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(sql[j])
                j += 1
            tokens.append(Token("string", "".join(chunks), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and
                                                  not seen_dot)):
                if sql[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in _KEYWORDS:
                tokens.append(Token("keyword", upper, i))
            else:
                tokens.append(Token("name", word, i))
            i = j
            continue
        two = sql[i:i + 2]
        if two in _PUNCT:
            tokens.append(Token("punct", two, i))
            i += 2
            continue
        if ch in _PUNCT:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        if ch == ";":
            i += 1
            continue
        raise SqlError("unexpected character %r at %d" % (ch, i))
    tokens.append(Token("end", "", n))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """A constant value (int, float, str, or None)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column of the statement's single table."""

    name: str


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic: ``left op right`` where op is one of ``+ - *``."""

    op: str
    left: "Expression"
    right: "Expression"


Expression = Union[Literal, ColumnRef, BinaryOp]


@dataclass(frozen=True)
class Comparison:
    """One ``column OP literal`` conjunct of a WHERE clause."""

    column: str
    op: str  # = != < <= > >=
    value: Any


@dataclass(frozen=True)
class Select:
    """SELECT statement over one table."""

    table: str
    columns: Tuple[str, ...]  # empty tuple means "*"
    where: Tuple[Comparison, ...] = ()
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None


@dataclass(frozen=True)
class Insert:
    """INSERT of a single row."""

    table: str
    columns: Tuple[str, ...]
    values: Tuple[Any, ...]


@dataclass(frozen=True)
class Update:
    """UPDATE with SET expressions and a conjunctive WHERE."""

    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Tuple[Comparison, ...] = ()


@dataclass(frozen=True)
class Delete:
    """DELETE with a conjunctive WHERE."""

    table: str
    where: Tuple[Comparison, ...] = ()


@dataclass(frozen=True)
class Begin:
    """Explicit transaction start."""


@dataclass(frozen=True)
class Commit:
    """Transaction commit."""


@dataclass(frozen=True)
class Rollback:
    """Transaction abort (ROLLBACK or ABORT)."""


@dataclass(frozen=True)
class ColumnDef:
    """One column of a CREATE TABLE."""

    name: str
    type_name: str
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable:
    """CREATE TABLE with column definitions."""

    table: str
    columns: Tuple[ColumnDef, ...]


@dataclass(frozen=True)
class CreateIndex:
    """CREATE INDEX on one column."""

    name: str
    table: str
    column: str


@dataclass(frozen=True)
class AlterTable:
    """ALTER TABLE ... ADD COLUMN (restore path uses this)."""

    table: str
    column: ColumnDef


Statement = Union[Select, Insert, Update, Delete, Begin, Commit, Rollback,
                  CreateTable, CreateIndex, AlterTable]


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._next()
        if token.kind != "keyword" or token.text != word:
            raise SqlError("expected %s, found %r in %r"
                           % (word, token.text, self.sql))
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._next()
        if token.kind != "punct" or token.text != text:
            raise SqlError("expected %r, found %r in %r"
                           % (text, token.text, self.sql))
        return token

    def _expect_name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise SqlError("expected identifier, found %r in %r"
                           % (token.text, self.sql))
        return token.text

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().kind == "keyword" and self._peek().text == word:
            self.pos += 1
            return True
        return False

    def _accept_punct(self, text: str) -> bool:
        if self._peek().kind == "punct" and self._peek().text == text:
            self.pos += 1
            return True
        return False

    # -- literals and expressions ---------------------------------------
    def _literal_value(self) -> Any:
        token = self._next()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text
        if token.kind == "keyword" and token.text == "NULL":
            return None
        if token.kind == "punct" and token.text == "-":
            inner = self._literal_value()
            if not isinstance(inner, (int, float)):
                raise SqlError("cannot negate %r" % (inner,))
            return -inner
        raise SqlError("expected literal, found %r in %r"
                       % (token.text, self.sql))

    def _expression(self) -> Expression:
        left = self._term()
        while self._peek().kind == "punct" and self._peek().text in "+-":
            op = self._next().text
            right = self._term()
            left = BinaryOp(op, left, right)
        return left

    def _term(self) -> Expression:
        left = self._factor()
        while self._peek().kind == "punct" and self._peek().text == "*":
            self._next()
            right = self._factor()
            left = BinaryOp("*", left, right)
        return left

    def _factor(self) -> Expression:
        token = self._peek()
        if token.kind == "name":
            self._next()
            return ColumnRef(token.text)
        if token.kind in ("number", "string") or (
                token.kind == "keyword" and token.text == "NULL") or (
                token.kind == "punct" and token.text == "-"):
            return Literal(self._literal_value())
        if self._accept_punct("("):
            inner = self._expression()
            self._expect_punct(")")
            return inner
        raise SqlError("expected expression, found %r in %r"
                       % (token.text, self.sql))

    def _where(self) -> Tuple[Comparison, ...]:
        if not self._accept_keyword("WHERE"):
            return ()
        conjuncts: List[Comparison] = []
        while True:
            column = self._expect_name()
            token = self._next()
            if token.kind != "punct" or token.text not in (
                    "=", "!=", "<>", "<", "<=", ">", ">="):
                raise SqlError("expected comparison operator, found %r in %r"
                               % (token.text, self.sql))
            op = "!=" if token.text == "<>" else token.text
            value = self._literal_value()
            conjuncts.append(Comparison(column, op, value))
            if not self._accept_keyword("AND"):
                break
        return tuple(conjuncts)

    # -- statements ------------------------------------------------------
    def parse(self) -> Statement:
        token = self._peek()
        if token.kind != "keyword":
            raise SqlError("statement must start with a keyword: %r"
                           % self.sql)
        handlers = {
            "SELECT": self._select,
            "INSERT": self._insert,
            "UPDATE": self._update,
            "DELETE": self._delete,
            "BEGIN": self._begin,
            "COMMIT": self._commit,
            "ROLLBACK": self._rollback,
            "ABORT": self._rollback,
            "CREATE": self._create,
            "ALTER": self._alter,
        }
        handler = handlers.get(token.text)
        if handler is None:
            raise SqlError("unsupported statement %r" % token.text)
        statement = handler()
        end = self._next()
        if end.kind != "end":
            raise SqlError("trailing input %r in %r" % (end.text, self.sql))
        return statement

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        columns: List[str] = []
        if self._accept_punct("*"):
            pass
        else:
            columns.append(self._expect_name())
            while self._accept_punct(","):
                columns.append(self._expect_name())
        self._expect_keyword("FROM")
        table = self._expect_name()
        where = self._where()
        order_by = None
        descending = False
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._expect_name()
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
        limit = None
        if self._accept_keyword("LIMIT"):
            value = self._literal_value()
            if not isinstance(value, int) or value < 0:
                raise SqlError("LIMIT must be a non-negative integer")
            limit = value
        return Select(table, tuple(columns), where, order_by, descending,
                      limit)

    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_name()
        self._expect_punct("(")
        columns = [self._expect_name()]
        while self._accept_punct(","):
            columns.append(self._expect_name())
        self._expect_punct(")")
        self._expect_keyword("VALUES")
        self._expect_punct("(")
        values = [self._literal_value()]
        while self._accept_punct(","):
            values.append(self._literal_value())
        self._expect_punct(")")
        if len(columns) != len(values):
            raise SqlError("INSERT arity mismatch: %d columns, %d values"
                           % (len(columns), len(values)))
        return Insert(table, tuple(columns), tuple(values))

    def _update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._expect_name()
        self._expect_keyword("SET")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self._expect_name()
            self._expect_punct("=")
            assignments.append((column, self._expression()))
            if not self._accept_punct(","):
                break
        where = self._where()
        return Update(table, tuple(assignments), where)

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_name()
        where = self._where()
        return Delete(table, where)

    def _begin(self) -> Begin:
        self._expect_keyword("BEGIN")
        return Begin()

    def _commit(self) -> Commit:
        self._expect_keyword("COMMIT")
        return Commit()

    def _rollback(self) -> Rollback:
        token = self._next()
        if token.text not in ("ROLLBACK", "ABORT"):
            raise SqlError("expected ROLLBACK/ABORT, found %r" % token.text)
        return Rollback()

    def _create(self) -> Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            table = self._expect_name()
            self._expect_punct("(")
            columns = [self._column_def()]
            while self._accept_punct(","):
                columns.append(self._column_def())
            self._expect_punct(")")
            return CreateTable(table, tuple(columns))
        if self._accept_keyword("INDEX"):
            name = self._expect_name()
            self._expect_keyword("ON")
            table = self._expect_name()
            self._expect_punct("(")
            column = self._expect_name()
            self._expect_punct(")")
            return CreateIndex(name, table, column)
        raise SqlError("expected TABLE or INDEX after CREATE in %r"
                       % self.sql)

    def _alter(self) -> AlterTable:
        self._expect_keyword("ALTER")
        self._expect_keyword("TABLE")
        table = self._expect_name()
        self._expect_keyword("ADD")
        self._accept_keyword("COLUMN")
        return AlterTable(table, self._column_def())

    def _column_def(self) -> ColumnDef:
        name = self._expect_name()
        type_token = self._next()
        if type_token.kind != "name":
            raise SqlError("expected type name for column %r" % name)
        primary = False
        if self._accept_keyword("PRIMARY"):
            self._expect_keyword("KEY")
            primary = True
        return ColumnDef(name, type_token.text.upper(), primary)


@lru_cache(maxsize=4096)
def parse(sql: str) -> Statement:
    """Parse one statement of the mini-SQL dialect into its AST.

    Memoised on the SQL text: every AST node is a frozen dataclass, so
    one parsed statement can safely be shared by all sessions.  A TPC-W
    replay issues the same ~30 statement shapes millions of times (the
    literal diversity is bounded by the scaled table populations), which
    makes the cache hit rate high enough to take parsing off the
    experiment hot path entirely.
    """
    return _Parser(sql).parse()


#: Statement classes that modify data (INSERT/UPDATE/DELETE/DDL).
_WRITE_TYPES = frozenset((Insert, Update, Delete, CreateTable,
                          CreateIndex, AlterTable))


def is_write_statement(statement: Statement) -> bool:
    """Whether the statement modifies data (INSERT/UPDATE/DELETE/DDL)."""
    return statement.__class__ in _WRITE_TYPES


def is_read_statement(statement: Statement) -> bool:
    """Whether the statement is a pure read (SELECT)."""
    return statement.__class__ is Select
