"""The shared-process DBMS instance.

One :class:`DbmsInstance` runs per node and hosts *multiple tenant
databases* inside the same process, sharing the CPU, the disk, and —
crucially — one WAL (the shared process model of Curino et al. [22] the
paper adopts).  It provides snapshot isolation with the first-updater-wins
rule and group commit, and exposes the begin/execute/commit/abort
primitives sessions are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from ..errors import NodeCrashed, SchemaError
from ..obs.metrics import MetricsRegistry
from ..sim.events import Event
from ..sim.resources import Resource
from .checkpoint import Checkpointer, CheckpointSpec
from .database import TenantDatabase
from .disk import Disk, DiskSpec
from .executor import ExecResult, Executor
from .sqlmini import Statement
from .transaction import Transaction, TxnStatus
from .wal import WalWriter

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment


@dataclass
class EngineCosts:
    """CPU service-time model, in simulated seconds.

    Per-statement costs can be overridden by the workload templates (a
    TPC-W "best sellers" query costs far more than a point lookup); these
    are the defaults for unannotated statements.
    """

    #: Base CPU held per statement (parse/plan/execute overhead).
    base_statement_cpu: float = 0.0008
    #: Extra CPU per row touched by a statement.
    per_row_cpu: float = 0.0001
    #: CPU to process a commit or abort (excluding the WAL flush).
    end_cpu: float = 0.0002


class Observer:
    """Optional engine observer; the theory layer subclasses this."""

    def on_begin(self, txn: Transaction) -> None:
        """Called when a transaction is created."""

    def on_read(self, txn_id: int, table: str, key: Any,
                version_csn: int) -> None:
        """Called for each row read."""

    def on_write(self, txn_id: int, table: str, key: Any) -> None:
        """Called for each row written (uncommitted)."""

    def on_commit(self, txn: Transaction) -> None:
        """Called after a transaction's versions are installed."""

    def on_abort(self, txn: Transaction) -> None:
        """Called after a transaction rolls back."""


class DbmsInstance:
    """A DBMS process hosting many tenants on one node."""

    def __init__(self, env: "Environment", name: str,
                 cpu_cores: int = 4,
                 disk_spec: Optional[DiskSpec] = None,
                 costs: Optional[EngineCosts] = None,
                 group_commit: bool = True,
                 checkpoint_spec: Optional[CheckpointSpec] = None,
                 observer: Optional[Observer] = None):
        self.env = env
        self.name = name
        self.costs = costs or EngineCosts()
        self.cpu = Resource(env, capacity=cpu_cores, name="%s.cpu" % name)
        self.disk = Disk(env, disk_spec, name="%s.disk" % name)
        self.wal = WalWriter(env, self.disk, group_commit=group_commit,
                             name="%s.wal" % name)
        self.checkpointer: Optional[Checkpointer] = None
        if checkpoint_spec is not None:
            self.checkpointer = Checkpointer(env, self.disk, checkpoint_spec,
                                             name="%s.ckpt" % name)
        self.observer = observer
        self.tenants: Dict[str, TenantDatabase] = {}
        self._executors: Dict[str, Executor] = {}
        self._csn = 0
        # crash/recovery state (see crash()/restart())
        self.crashed = False
        self._replayed_commits = 0
        self._crash_waiters: List[Event] = []
        self._recovery_waiters: List[Event] = []
        # statistics
        self.statements_executed = 0
        self.commits = 0
        self.aborts = 0
        self.crash_count = 0
        self.recoveries = 0
        # bound observability instruments (see bind_obs)
        self._m_statements = None
        self._m_commits = None
        self._m_aborts = None
        self._m_crashes = None
        self._m_recoveries = None

    def bind_obs(self, metrics: MetricsRegistry,
                 prefix: Optional[str] = None,
                 tracer: Optional[Any] = None) -> None:
        """Mirror executor-path counters into a metrics registry.

        Creates ``<prefix>.statements`` / ``.commits`` / ``.aborts``
        counters (prefix defaults to the instance name) and also binds
        the instance's WAL under ``<prefix>.wal`` and, when present,
        its checkpointer under ``<prefix>.checkpoint`` (with burst
        spans if a ``tracer`` is given).
        """
        base = prefix if prefix is not None else self.name
        self._m_statements = metrics.counter("%s.statements" % base)
        self._m_commits = metrics.counter("%s.commits" % base)
        self._m_aborts = metrics.counter("%s.aborts" % base)
        self._m_crashes = metrics.counter("%s.crashes" % base)
        self._m_recoveries = metrics.counter("%s.recoveries" % base)
        self.wal.bind_obs(metrics, "%s.wal" % base)
        if self.checkpointer is not None:
            self.checkpointer.bind_obs(metrics,
                                       "%s.checkpoint" % base,
                                       tracer=tracer)

    # ------------------------------------------------------------------
    # crash / recovery (see repro.faults)
    # ------------------------------------------------------------------

    #: CPU per commit record redone during WAL-replay recovery.
    RECOVERY_REPLAY_CPU = 0.00005

    def crash(self) -> None:
        """Kill the DBMS process at a statement boundary.

        Committed state survives -- the commit protocol installs versions
        only after the WAL flush returns, so everything visible is already
        durable.  Unflushed commits fail with :class:`NodeCrashed`, and
        every subsequent primitive raises it until :meth:`restart`
        completes.  (Crashes take effect at statement boundaries: the
        simulation has no mid-statement observable state to corrupt.)
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        if self._m_crashes is not None:
            self._m_crashes.inc()
        self.wal.crash(NodeCrashed(self.name, "crashed before WAL flush"))
        waiters, self._crash_waiters = self._crash_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def wait_crashed(self) -> Event:
        """An event that fires when (or if) this instance crashes.

        Fires immediately for an already-crashed instance.  Used by the
        migration manager to supervise the *source* node: a master crash
        must abort the migration (Section 4.2) even though nothing in
        the snapshot/propagation pipeline would otherwise notice — the
        middleware buffers the syncsets, so replay could quietly finish.
        """
        event = Event(self.env, name="%s.crashed" % self.name)
        if self.crashed:
            event.succeed()
        else:
            self._crash_waiters.append(event)
        return event

    def wait_recovered(self) -> Event:
        """An event that fires when this instance is up again.

        Fires immediately for a live instance, otherwise at the end of
        the next :meth:`restart` (after WAL-replay recovery).  The
        scheduler's ``resume`` retry policy subscribes here to wait out
        a crashed master before re-entering its migration from the
        journal.
        """
        event = Event(self.env, name="%s.recovered" % self.name)
        if not self.crashed:
            event.succeed()
        else:
            self._recovery_waiters.append(event)
        return event

    def restart(self) -> Generator[Any, Any, None]:
        """WAL-replay recovery: redo the log tail, then accept traffic.

        The redo pass reads every commit record appended since the last
        recovery (ARIES-style, minus the undo pass -- uncommitted writes
        were never installed) and pays CPU per record, then fsyncs a
        recovery checkpoint.  Survivors of the pre-crash era (locks held
        by in-flight transactions) are released lazily when their
        sessions observe the crash and roll back.
        """
        if not self.crashed:
            return
        records = self.wal.commit_count - self._replayed_commits
        if records > 0:
            yield from self.disk.read(records * WalWriter.COMMIT_RECORD_MB)
            yield self.env.timeout(records * self.RECOVERY_REPLAY_CPU)
        yield from self.disk.fsync()
        self._replayed_commits = self.wal.commit_count
        self.crashed = False
        self.recoveries += 1
        if self._m_recoveries is not None:
            self._m_recoveries.inc()
        waiters, self._recovery_waiters = self._recovery_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def _require_up(self) -> None:
        if self.crashed:
            raise NodeCrashed(self.name)

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def create_tenant(self, name: str) -> TenantDatabase:
        """Create an empty tenant database in this instance."""
        self._require_up()
        if name in self.tenants:
            raise SchemaError("tenant %r already exists on %s"
                              % (name, self.name))
        tenant = TenantDatabase(name, self.env)
        self.tenants[name] = tenant
        read_hook = self.observer.on_read if self.observer else None
        write_hook = self.observer.on_write if self.observer else None
        self._executors[name] = Executor(tenant, self.current_csn,
                                         read_hook, write_hook)
        return tenant

    def drop_tenant(self, name: str) -> None:
        """Remove a tenant (after migration switch-over)."""
        if name not in self.tenants:
            raise SchemaError("no tenant %r on %s" % (name, self.name))
        del self.tenants[name]
        del self._executors[name]

    def tenant(self, name: str) -> TenantDatabase:
        """Look up a tenant database."""
        tenant = self.tenants.get(name)
        if tenant is None:
            raise SchemaError("no tenant %r on %s" % (name, self.name))
        return tenant

    def has_tenant(self, name: str) -> bool:
        """Whether this instance hosts ``name``."""
        return name in self.tenants

    # ------------------------------------------------------------------
    # snapshots / CSNs
    # ------------------------------------------------------------------
    def current_csn(self) -> int:
        """The newest committed CSN (snapshot basis for new readers)."""
        return self._csn

    def next_csn(self) -> int:
        """Allocate and return the next CSN, advancing the counter.

        Version installs (commit, restore, syncset replay) must stamp
        rows with a CSN obtained here rather than poking ``_csn``.
        """
        self._csn += 1
        return self._csn

    def seed_csn(self, csn: int) -> None:
        """Fast-forward the CSN counter (bulk population only)."""
        if csn < self._csn:
            raise ValueError("CSN counter cannot move backwards "
                             "(%d -> %d)" % (self._csn, csn))
        self._csn = csn

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self, tenant_name: str) -> Transaction:
        """Start a transaction; the snapshot is taken at the first op."""
        self._require_up()
        self.tenant(tenant_name)  # validate
        txn = Transaction(tenant_name, self.env.now)
        if self.observer is not None:
            self.observer.on_begin(txn)
        return txn

    def execute(self, txn: Optional[Transaction], tenant_name: str,
                statement: Statement,
                cpu_cost: Optional[float] = None
                ) -> Generator[Any, Any, ExecResult]:
        """Run one statement, charging CPU service time then logic.

        CPU is held for the service time and released *before* any lock
        wait, so a transaction blocked on a row lock does not occupy a
        core (as in a real DBMS, where it sleeps on a lock queue).
        """
        self._require_up()
        if txn is not None:
            txn.require_active()
        executor = self._executors.get(tenant_name)
        if executor is None:
            raise SchemaError("no tenant %r on %s" % (tenant_name, self.name))
        service = (cpu_cost if cpu_cost is not None
                   else self.costs.base_statement_cpu)
        core = self.cpu.request()
        yield core
        yield self.env.timeout(service)
        self.cpu.release(core)
        self.statements_executed += 1
        if self._m_statements is not None:
            self._m_statements.inc()
        result = yield from executor.execute(txn, statement)
        extra = self.costs.per_row_cpu * (len(result.rows) + result.affected)
        if extra > 0:
            yield self.env.timeout(extra)
        return result

    def commit(self, txn: Transaction
               ) -> Generator[Any, Any, Optional[int]]:
        """Commit: WAL flush (group commit) then atomic version install.

        Returns the commit CSN for update transactions, None for
        read-only ones (which need no flush and create no snapshot —
        exactly why the mapping function discards them).
        """
        self._require_up()
        txn.require_active()
        core = self.cpu.request()
        yield core
        yield self.env.timeout(self.costs.end_cpu)
        self.cpu.release(core)
        if not txn.is_update:
            txn.status = TxnStatus.COMMITTED
            txn.finished_at = self.env.now
            tenant = self.tenants.get(txn.tenant)
            if tenant is not None:
                tenant.committed_readonly += 1
            if self.observer is not None:
                self.observer.on_commit(txn)
            return None
        # Durability first: wait for the (possibly grouped) WAL flush.
        self._require_up()  # the CPU wait may have straddled a crash
        yield self.wal.commit()
        # Atomic visibility: no yields from here to the end.
        tenant = self.tenant(txn.tenant)
        csn = self.next_csn()
        txn.commit_csn = csn
        for key in txn.write_order:
            table_name, row_key = key
            tenant.table(table_name).install(row_key, csn, txn.writes[key])
        txn.status = TxnStatus.COMMITTED
        txn.finished_at = self.env.now
        tenant.locks.release_all(txn, committed=True)
        tenant.committed_updates += 1
        self.commits += 1
        if self._m_commits is not None:
            self._m_commits.inc()
        if self.checkpointer is not None:
            self.checkpointer.note_commit()
        if self.observer is not None:
            self.observer.on_commit(txn)
        return csn

    def abort(self, txn: Transaction) -> None:
        """Roll back: discard writes, hand locks to waiters."""
        if txn.status == TxnStatus.ABORTED:
            return
        txn.require_active()
        tenant = self.tenants.get(txn.tenant)
        txn.status = TxnStatus.ABORTED
        txn.finished_at = self.env.now
        txn.writes.clear()
        if tenant is not None:
            tenant.locks.release_all(txn, committed=False)
            tenant.aborted += 1
        self.aborts += 1
        if self._m_aborts is not None:
            self._m_aborts.inc()
        if self.observer is not None:
            self.observer.on_abort(txn)
