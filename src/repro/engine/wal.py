"""Write-ahead log with group commit.

All tenants of one DBMS instance share this WAL — the shared process model
the paper assumes precisely because a shared log avoids random access
across per-tenant log files.

Group commit works as in PostgreSQL: committing transactions enqueue a
flush request; a single flusher coalesces *every* request that arrived
while the previous flush was in progress into one fsync.  The paper's whole
argument for concurrent commit propagation (CON-COM) is that it lets the
slave's DBMS form these groups during replay; serial commit propagation
degenerates to one fsync per commit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from ..sim.events import Event
from .disk import Disk

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..sim.core import Environment

#: Wire size of one logical row-image change record, in MB.  The
#: watermark snapshot path ships committed post-images to the
#: destination over the same bulk stream as snapshot chunks; a full row
#: image is a little heavier than the bare commit record the WAL
#: fsyncs (:attr:`WalWriter.COMMIT_RECORD_MB`) because it carries the
#: column values, not just the redo pointer.
CHANGE_RECORD_MB = 0.0005


def change_payload_mb(operations: int) -> float:
    """Wire size of a change-stream batch of ``operations`` row images."""
    return CHANGE_RECORD_MB * max(0, operations)


class WalWriter:
    """The shared log flusher of one DBMS instance."""

    #: Size of one commit record on disk, in MB (a few hundred bytes).
    COMMIT_RECORD_MB = 0.0003

    def __init__(self, env: "Environment", disk: Disk,
                 group_commit: bool = True, name: str = "wal"):
        self.env = env
        self.disk = disk
        self.group_commit = group_commit
        self.name = name
        self._pending: List[Event] = []
        self._inflight: List[Event] = []
        self._wakeup: Optional[Event] = None
        self._running = True
        # statistics
        self.commit_count = 0
        self.flush_count = 0
        self.largest_group = 0
        # bound observability instruments (see bind_obs)
        self._m_commits = None
        self._m_flushes = None
        self._m_group_size = None
        self._m_fsync_mb = None
        env.process(self._flusher(), name="%s.flusher" % name)

    # ------------------------------------------------------------------
    def bind_obs(self, metrics: "MetricsRegistry",
                 prefix: Optional[str] = None) -> None:
        """Mirror this WAL's counters into a metrics registry.

        Creates ``<prefix>.commits`` / ``.flushes`` counters plus
        ``.group_size`` / ``.fsync_mb`` histograms (prefix defaults to
        the WAL's name, e.g. ``node1.wal``) and updates them live on the
        fsync path.
        """
        base = prefix if prefix is not None else self.name
        self._m_commits = metrics.counter("%s.commits" % base)
        self._m_flushes = metrics.counter("%s.flushes" % base)
        self._m_group_size = metrics.histogram("%s.group_size" % base)
        self._m_fsync_mb = metrics.histogram("%s.fsync_mb" % base)

    # ------------------------------------------------------------------
    def commit(self) -> Event:
        """Request a durable commit; the event fires once flushed."""
        done = Event(self.env)
        self.commit_count += 1
        if self._m_commits is not None:
            self._m_commits.inc()
        self._pending.append(done)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return done

    def stop(self) -> None:
        """Shut the flusher down (used by tests)."""
        self._running = False
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def crash(self, exc: BaseException) -> None:
        """Fail every queued (unflushed) commit with ``exc``.

        Called by :meth:`DbmsInstance.crash`: commits whose records were
        not yet fsynced are lost, so their waiters must see the failure
        instead of hanging on an event that will never fire.
        """
        lost = self._pending + self._inflight
        self._pending = []
        for done in lost:
            if not done.triggered:
                done.fail(exc)

    # ------------------------------------------------------------------
    def _flusher(self) -> Generator:
        while self._running:
            if not self._pending:
                self._wakeup = Event(self.env)
                yield self._wakeup
                self._wakeup = None
                continue
            if self.group_commit:
                batch, self._pending = self._pending, []
            else:
                batch = [self._pending.pop(0)]
            payload = self.COMMIT_RECORD_MB * len(batch)
            self._inflight = batch
            yield from self.disk.fsync(payload_mb=payload)
            self._inflight = []
            self.flush_count += 1
            self.largest_group = max(self.largest_group, len(batch))
            if self._m_flushes is not None:
                self._m_flushes.inc()
                self._m_group_size.observe(len(batch))
                self._m_fsync_mb.observe(payload)
            for done in batch:
                # Skip waiters a crash() already failed mid-fsync.
                if not done.triggered:
                    done.succeed()

    # ------------------------------------------------------------------
    @property
    def mean_group_size(self) -> float:
        """Average commits per fsync so far (1.0 = no grouping benefit)."""
        if not self.flush_count:
            return 0.0
        return self.commit_count / self.flush_count
