"""Statement execution against a tenant database under SI.

The executor evaluates parsed mini-SQL statements for one transaction:
reads resolve against the transaction's snapshot (own writes first),
writes follow the first-updater-wins protocol of Section 2.3 (immediate
abort when the newest committed version postdates the snapshot; queue
behind a concurrent writer's lock otherwise).

Execution methods are generators because lock acquisition can block in
simulated time; they raise :class:`TransactionAborted` on conflicts, which
the session layer converts into an engine-initiated rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Hashable, List, Optional, Tuple

from ..errors import SchemaError, SqlError, TransactionAborted
from .database import Table, TenantDatabase
from .mvcc import Row
from .schema import TableSchema
from .sqlmini import (
    AlterTable,
    BinaryOp,
    ColumnRef,
    Comparison,
    CreateIndex,
    CreateTable,
    Delete,
    Insert,
    Literal,
    Select,
    Statement,
    Update,
)
from .transaction import Transaction

#: Optional observer interface used by the theory layer: callables
#: (txn_id, table, key, info) invoked on reads and writes.
ReadHook = Callable[[int, str, Hashable, int], None]
WriteHook = Callable[[int, str, Hashable], None]


@dataclass
class ExecResult:
    """Outcome of one statement: result rows or an affected-row count."""

    rows: List[Row] = field(default_factory=list)
    affected: int = 0


def _evaluate(expression: Any, row: Row) -> Any:
    """Evaluate a SET/SELECT expression against the current row."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        if expression.name not in row:
            raise SqlError("unknown column %r in expression"
                           % expression.name)
        return row[expression.name]
    if isinstance(expression, BinaryOp):
        left = _evaluate(expression.left, row)
        right = _evaluate(expression.right, row)
        if expression.op == "+":
            return left + right
        if expression.op == "-":
            return left - right
        if expression.op == "*":
            return left * right
        raise SqlError("unsupported operator %r" % expression.op)
    raise SqlError("unsupported expression %r" % (expression,))


def _matches(row: Row, where: Tuple[Comparison, ...]) -> bool:
    """Whether ``row`` satisfies every conjunct of ``where``."""
    for comparison in where:
        actual = row.get(comparison.column)
        expected = comparison.value
        op = comparison.op
        if actual is None:
            return False
        if op == "=":
            ok = actual == expected
        elif op == "!=":
            ok = actual != expected
        elif op == "<":
            ok = actual < expected
        elif op == "<=":
            ok = actual <= expected
        elif op == ">":
            ok = actual > expected
        else:  # >=
            ok = actual >= expected
        if not ok:
            return False
    return True


class Executor:
    """Executes statements for transactions of one tenant database."""

    def __init__(self, database: TenantDatabase,
                 current_csn: Callable[[], int],
                 read_hook: Optional[ReadHook] = None,
                 write_hook: Optional[WriteHook] = None):
        self.database = database
        self._current_csn = current_csn
        self.read_hook = read_hook
        self.write_hook = write_hook

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def execute(self, txn: Optional[Transaction],
                statement: Statement) -> Generator[Any, Any, ExecResult]:
        """Execute one statement; a generator that may wait on locks."""
        if isinstance(statement, Select):
            return (yield from self._select(txn, statement))
        if isinstance(statement, Update):
            return (yield from self._update(txn, statement))
        if isinstance(statement, Insert):
            return (yield from self._insert(txn, statement))
        if isinstance(statement, Delete):
            return (yield from self._delete(txn, statement))
        if isinstance(statement, CreateTable):
            return self._create_table(statement)
        if isinstance(statement, CreateIndex):
            return self._create_index(statement)
        if isinstance(statement, AlterTable):
            return self._alter_table(statement)
        raise SqlError("executor cannot run %r"
                       % statement.__class__.__name__)

    # ------------------------------------------------------------------
    # snapshot handling
    # ------------------------------------------------------------------
    def _ensure_snapshot(self, txn: Transaction) -> int:
        """Implicit snapshot creation just before the first operation."""
        if txn.snapshot_csn is None:
            txn.snapshot_csn = self._current_csn()
        return txn.snapshot_csn

    # ------------------------------------------------------------------
    # candidate row resolution
    # ------------------------------------------------------------------
    def _candidates(self, txn: Optional[Transaction], table: Table,
                    where: Tuple[Comparison, ...]) -> List[Hashable]:
        """Candidate primary keys for a WHERE clause.

        Prefers a primary-key equality probe, then a secondary-index
        probe, then a full scan.  Own uncommitted writes are always added
        because indexes only cover committed versions.
        """
        schema = table.schema
        for comparison in where:
            schema.require_column(comparison.column)
        keys: Optional[List[Hashable]] = None
        for comparison in where:
            if comparison.op != "=":
                continue
            if comparison.column == schema.primary_key:
                keys = [comparison.value]
                break
        if keys is None:
            for comparison in where:
                if comparison.op != "=":
                    continue
                for index in table.indexes.values():
                    if index.column == comparison.column:
                        keys = list(index.lookup(comparison.value))
                        break
                if keys is not None:
                    break
        if keys is None:
            keys = list(table.chains.keys())
        if txn is not None:
            table_name = schema.name
            for (name, key) in txn.write_order:
                if name == table_name and key not in keys:
                    keys.append(key)
        return keys

    def _visible_row(self, txn: Optional[Transaction], table: Table,
                     key: Hashable, snapshot_csn: int) -> Optional[Row]:
        """Snapshot read of one key, honouring own uncommitted writes."""
        if txn is not None:
            written, value = txn.own_write((table.schema.name, key))
            if written:
                return value
        chain = table.chain(key)
        if chain is None:
            return None
        return chain.read(snapshot_csn)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _select(self, txn: Optional[Transaction],
                statement: Select) -> Generator[Any, Any, ExecResult]:
        table = self.database.table(statement.table)
        snapshot = (self._ensure_snapshot(txn) if txn is not None
                    else self._current_csn())
        rows: List[Row] = []
        for key in self._candidates(txn, table, statement.where):
            row = self._visible_row(txn, table, key, snapshot)
            if row is None or not _matches(row, statement.where):
                continue
            rows.append(row)
            if self.read_hook is not None and txn is not None:
                chain = table.chain(key)
                version = chain.latest_csn() if chain is not None else 0
                self.read_hook(txn.txn_id, statement.table, key,
                               min(version, snapshot))
        if statement.order_by is not None:
            table.schema.require_column(statement.order_by)
            rows.sort(key=lambda r: (r.get(statement.order_by) is None,
                                     r.get(statement.order_by)),
                      reverse=statement.descending)
        if statement.limit is not None:
            rows = rows[:statement.limit]
        if statement.columns:
            for column in statement.columns:
                table.schema.require_column(column)
            rows = [{c: row.get(c) for c in statement.columns}
                    for row in rows]
        else:
            rows = [dict(row) for row in rows]
        if txn is not None:
            txn.read_count += 1
        return ExecResult(rows=rows)
        yield  # pragma: no cover - makes this function a generator

    # ------------------------------------------------------------------
    # write-path helpers
    # ------------------------------------------------------------------
    def _acquire_write(self, txn: Transaction, table: Table,
                       key: Hashable) -> Generator[Any, Any, None]:
        """First-updater-wins write access to (table, key).

        Raises :class:`TransactionAborted` immediately when the newest
        committed version postdates the snapshot, or later if a concurrent
        lock holder commits first.
        """
        snapshot = self._ensure_snapshot(txn)
        chain = table.chain(key)
        if chain is not None and chain.latest_csn() > snapshot:
            self.database.locks.immediate_aborts += 1
            raise TransactionAborted(
                "first-updater-wins: item already updated by a newer commit")
        lock_key = (table.schema.name, key)
        grant = self.database.locks.try_acquire(txn, lock_key)
        yield grant  # may raise TransactionAborted via event failure
        # Re-check after a wait: the previous holder must have aborted, so
        # the newest committed version is unchanged, but be defensive.
        chain = table.chain(key)
        if chain is not None and chain.latest_csn() > snapshot:
            self.database.locks.immediate_aborts += 1
            raise TransactionAborted(
                "first-updater-wins: newer version appeared while waiting")

    # ------------------------------------------------------------------
    # UPDATE / DELETE / INSERT
    # ------------------------------------------------------------------
    def _update(self, txn: Optional[Transaction],
                statement: Update) -> Generator[Any, Any, ExecResult]:
        if txn is None:
            raise SqlError("UPDATE requires a transaction")
        table = self.database.table(statement.table)
        snapshot = self._ensure_snapshot(txn)
        for column, _expr in statement.assignments:
            table.schema.require_column(column)
        affected = 0
        for key in self._candidates(txn, table, statement.where):
            row = self._visible_row(txn, table, key, snapshot)
            if row is None or not _matches(row, statement.where):
                continue
            yield from self._acquire_write(txn, table, key)
            new_row = dict(row)
            for column, expression in statement.assignments:
                new_row[column] = _evaluate(expression, row)
            txn.record_write((statement.table, key), new_row)
            if self.write_hook is not None:
                self.write_hook(txn.txn_id, statement.table, key)
            affected += 1
        return ExecResult(affected=affected)

    def _delete(self, txn: Optional[Transaction],
                statement: Delete) -> Generator[Any, Any, ExecResult]:
        if txn is None:
            raise SqlError("DELETE requires a transaction")
        table = self.database.table(statement.table)
        snapshot = self._ensure_snapshot(txn)
        affected = 0
        for key in self._candidates(txn, table, statement.where):
            row = self._visible_row(txn, table, key, snapshot)
            if row is None or not _matches(row, statement.where):
                continue
            yield from self._acquire_write(txn, table, key)
            txn.record_write((statement.table, key), None)
            if self.write_hook is not None:
                self.write_hook(txn.txn_id, statement.table, key)
            affected += 1
        return ExecResult(affected=affected)

    def _insert(self, txn: Optional[Transaction],
                statement: Insert) -> Generator[Any, Any, ExecResult]:
        if txn is None:
            raise SqlError("INSERT requires a transaction")
        table = self.database.table(statement.table)
        snapshot = self._ensure_snapshot(txn)
        schema = table.schema
        row: Row = {}
        for column, value in zip(statement.columns, statement.values):
            schema.require_column(column)
            row[column] = value
        key = row.get(schema.primary_key)
        if key is None:
            raise SchemaError("INSERT into %r must set the primary key %r"
                              % (schema.name, schema.primary_key))
        if self._visible_row(txn, table, key, snapshot) is not None:
            raise SchemaError("duplicate primary key %r in %r"
                              % (key, schema.name))
        yield from self._acquire_write(txn, table, key)
        txn.record_write((schema.name, key), row)
        if self.write_hook is not None:
            self.write_hook(txn.txn_id, schema.name, key)
        return ExecResult(affected=1)

    # ------------------------------------------------------------------
    # DDL (auto-committed; used by setup and the restore path)
    # ------------------------------------------------------------------
    def _create_table(self, statement: CreateTable) -> ExecResult:
        self.database.create_table(TableSchema(statement.table,
                                               statement.columns))
        return ExecResult(affected=0)

    def _create_index(self, statement: CreateIndex) -> ExecResult:
        table = self.database.table(statement.table)
        table.create_index(statement.name, statement.column)
        return ExecResult(affected=0)

    def _alter_table(self, statement: AlterTable) -> ExecResult:
        table = self.database.table(statement.table)
        table.schema.add_column(statement.column)
        return ExecResult(affected=0)
