"""Tenant databases: tables of version chains plus secondary indexes.

One :class:`TenantDatabase` is one customer's database inside a shared
DBMS process (the shared process model of Curino et al. that the paper
assumes).  It owns a catalog, the MVCC heap, secondary indexes, a lock
table, and size accounting used by the migration experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Iterator, Optional, Tuple

from ..errors import SchemaError
from .mvcc import Row, SecondaryIndex, VersionChain
from .schema import Catalog, TableSchema

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from .locks import LockTable


class Table:
    """Heap + indexes of one table inside a tenant database."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.chains: Dict[Hashable, VersionChain] = {}
        self.indexes: Dict[str, SecondaryIndex] = {
            name: SecondaryIndex(column)
            for name, column in schema.indexes.items()
        }

    # ------------------------------------------------------------------
    def chain(self, key: Hashable) -> Optional[VersionChain]:
        """The version chain of ``key``, or None if never written."""
        return self.chains.get(key)

    def chain_or_create(self, key: Hashable) -> VersionChain:
        """The version chain of ``key``, creating an empty one if needed."""
        chain = self.chains.get(key)
        if chain is None:
            chain = VersionChain()
            self.chains[key] = chain
        return chain

    def install(self, key: Hashable, csn: int, row: Optional[Row]) -> None:
        """Install a committed version and maintain secondary indexes."""
        chain = self.chain_or_create(key)
        old = chain.latest()
        chain.install(csn, row)
        for index in self.indexes.values():
            if old is not None:
                index.remove(old.get(index.column), key)
            if row is not None:
                index.add(row.get(index.column), key)

    def create_index(self, index_name: str, column: str) -> None:
        """Build a new secondary index over the latest committed versions."""
        self.schema.add_index(index_name, column)
        index = SecondaryIndex(column)
        for key, chain in self.chains.items():
            row = chain.latest()
            if row is not None:
                index.add(row.get(column), key)
        self.indexes[index_name] = index

    # ------------------------------------------------------------------
    def latest_rows(self) -> Iterator[Tuple[Hashable, Row]]:
        """Iterate over (key, latest committed row), skipping tombstones."""
        for key, chain in self.chains.items():
            row = chain.latest()
            if row is not None:
                yield key, row

    def visible_rows(self, snapshot_csn: int
                     ) -> Iterator[Tuple[Hashable, Row]]:
        """Iterate over rows visible at ``snapshot_csn``."""
        for key, chain in self.chains.items():
            row = chain.read(snapshot_csn)
            if row is not None:
                yield key, row

    def live_row_count(self) -> int:
        """Number of non-deleted rows in the latest committed state."""
        return sum(1 for _ in self.latest_rows())


class TenantDatabase:
    """One tenant: catalog + tables + lock table + size accounting."""

    def __init__(self, name: str, env: "Environment"):
        from .locks import LockTable

        self.name = name
        self.env = env
        self.catalog = Catalog()
        self.tables: Dict[str, Table] = {}
        self.locks: LockTable = LockTable(env)
        #: Fixed per-database footprint (catalogs, WAL segments, FSM).
        #: Table 3's sizes imply ~200 MB of it on the paper's setup.
        self.fixed_overhead_mb: float = 0.0
        #: Nominal-size multiplier: workloads populated at a row-count
        #: scale of 1/N set this to N so dump/restore timing still sees
        #: the full-scale database size the paper used.
        self.size_multiplier: float = 1.0
        # counters used by experiments
        self.committed_updates = 0
        self.committed_readonly = 0
        self.aborted = 0

    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> None:
        """Register the schema and allocate its heap."""
        self.catalog.create_table(schema)
        self.tables[schema.name] = Table(schema)

    def table(self, name: str) -> Table:
        """Look up a table; raises :class:`SchemaError` if unknown."""
        table = self.tables.get(name)
        if table is None:
            raise SchemaError("tenant %r has no table %r"
                              % (self.name, name))
        return table

    def has_table(self, name: str) -> bool:
        """Whether the tenant defines table ``name``."""
        return name in self.tables

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Nominal on-disk size from row counts and schema widths."""
        total = 0
        for table in self.tables.values():
            total += table.live_row_count() * table.schema.row_width_bytes()
        return int(total * self.size_multiplier
                   + self.fixed_overhead_mb * 1e6)

    def size_mb(self) -> float:
        """Size in megabytes (10^6 bytes, as in the paper's 800 MB)."""
        return self.size_bytes() / 1e6

    def row_count(self) -> int:
        """Total live rows across all tables."""
        return sum(t.live_row_count() for t in self.tables.values())

    # ------------------------------------------------------------------
    def state_fingerprint(self) -> Dict[str, Dict[Hashable, Tuple]]:
        """Canonical logical state: table -> key -> sorted row items.

        Used by the consistency checker (Theorem 2): after switch-over the
        slave's fingerprint must equal the master's.
        """
        state: Dict[str, Dict[Hashable, Tuple]] = {}
        for name, table in self.tables.items():
            rows: Dict[Hashable, Tuple] = {}
            for key, row in table.latest_rows():
                rows[key] = tuple(sorted(row.items()))
            state[name] = rows
        return state
