"""Transaction objects with snapshot-isolation state.

A :class:`Transaction` carries its snapshot CSN (assigned lazily, just
before its first operation executes — Section 3.1 of the paper assumes this
realistic implicit snapshot creation), its private write set, the locks it
holds, and a per-transaction operation log used by the theory layer to
extract dependencies.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..errors import InvalidTransactionState

LockKey = Tuple[str, Hashable]


class TxnStatus(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One client transaction executing on a tenant database under SI."""

    _ids = itertools.count(1)

    __slots__ = ("txn_id", "tenant", "status", "snapshot_csn", "commit_csn",
                 "writes", "write_order", "held_locks", "waiting_on",
                 "started_at", "finished_at", "read_count", "write_count")

    def __init__(self, tenant: str, started_at: float):
        self.txn_id: int = next(Transaction._ids)
        self.tenant = tenant
        self.status = TxnStatus.ACTIVE
        #: CSN of the snapshot read by this transaction; None until the
        #: first operation executes (implicit snapshot creation).
        self.snapshot_csn: Optional[int] = None
        #: CSN assigned at commit (update transactions only).
        self.commit_csn: Optional[int] = None
        #: (table, key) -> latest uncommitted row value (None = delete).
        self.writes: Dict[LockKey, Optional[Dict[str, Any]]] = {}
        #: Keys in first-write order, for deterministic install order.
        self.write_order: List[LockKey] = []
        self.held_locks: Set[LockKey] = set()
        self.waiting_on: Optional[LockKey] = None
        self.started_at = started_at
        self.finished_at: Optional[float] = None
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """Whether the transaction can still execute operations."""
        return self.status == TxnStatus.ACTIVE

    @property
    def is_update(self) -> bool:
        """Whether the transaction has written anything so far."""
        return bool(self.writes)

    def require_active(self) -> None:
        """Raise unless the transaction is still active."""
        if self.status != TxnStatus.ACTIVE:
            raise InvalidTransactionState(
                "transaction %d is %s" % (self.txn_id, self.status.value))

    # ------------------------------------------------------------------
    def record_write(self, key: LockKey,
                     row: Optional[Dict[str, Any]]) -> None:
        """Buffer an uncommitted write of ``key``."""
        if key not in self.writes:
            self.write_order.append(key)
        self.writes[key] = row
        self.write_count += 1

    def own_write(self, key: LockKey) -> Tuple[bool, Optional[Dict[str, Any]]]:
        """(has_written, value) for reads that must see own writes."""
        if key in self.writes:
            return True, self.writes[key]
        return False, None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<Txn %d %s tenant=%s snap=%s writes=%d>"
                % (self.txn_id, self.status.value, self.tenant,
                   self.snapshot_csn, len(self.writes)))
