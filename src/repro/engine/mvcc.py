"""Multi-version storage: version chains with snapshot visibility.

Each (table, primary key) slot holds a :class:`VersionChain` of committed
versions tagged with the commit sequence number (CSN) that installed them.
A transaction reading at snapshot ``s`` sees the newest version whose CSN
is ``<= s`` — exactly the SI read rule of Section 1 of the paper: the
transaction "detects all the changes made by other transactions committed
before [it] starts" and nothing committed later.

Uncommitted writes never enter a chain; they live in the writing
transaction's private write set until commit installs them atomically.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

Row = Dict[str, Any]


class VersionChain:
    """Committed versions of one row, ascending by CSN.

    A version value of ``None`` is a tombstone (the row was deleted).
    """

    __slots__ = ("csns", "rows")

    def __init__(self) -> None:
        self.csns: List[int] = []
        self.rows: List[Optional[Row]] = []

    def install(self, csn: int, row: Optional[Row]) -> None:
        """Append the version committed at ``csn`` (must be the newest)."""
        if self.csns and csn <= self.csns[-1]:
            raise ValueError("non-monotonic CSN %d after %d"
                             % (csn, self.csns[-1]))
        self.csns.append(csn)
        self.rows.append(row)

    def read(self, snapshot_csn: int) -> Optional[Row]:
        """Newest version visible at ``snapshot_csn`` (None if absent)."""
        csns = self.csns
        if not csns:
            return None
        # Read-latest fast path: most reads run at a snapshot at or past
        # the newest committed version, so skip the binary search.
        if snapshot_csn >= csns[-1]:
            return self.rows[-1]
        index = bisect.bisect_right(csns, snapshot_csn) - 1
        if index < 0:
            return None
        return self.rows[index]

    def latest(self) -> Optional[Row]:
        """The newest committed version regardless of snapshots."""
        return self.rows[-1] if self.rows else None

    def latest_csn(self) -> int:
        """CSN of the newest committed version, 0 if none."""
        return self.csns[-1] if self.csns else 0

    def version_count(self) -> int:
        """Number of committed versions in the chain."""
        return len(self.csns)

    def prune(self, horizon_csn: int) -> int:
        """Drop versions superseded before ``horizon_csn``; returns count.

        Keeps the newest version at or below the horizon (it is still
        visible to snapshots at the horizon) plus everything newer.  This
        is the vacuum analogue; the engine calls it opportunistically.
        """
        keep_from = bisect.bisect_right(self.csns, horizon_csn) - 1
        if keep_from <= 0:
            return 0
        del self.csns[:keep_from]
        del self.rows[:keep_from]
        return keep_from


class SecondaryIndex:
    """A non-unique index over the *latest committed* versions.

    The executor uses it to find candidate primary keys, then re-checks
    visibility and the predicate against the reader's snapshot, mirroring
    how a btree probe is followed by a heap visibility check.
    """

    __slots__ = ("column", "entries")

    def __init__(self, column: str):
        self.column = column
        self.entries: Dict[Any, set] = {}

    def add(self, value: Any, key: Any) -> None:
        """Index ``key`` under ``value``."""
        self.entries.setdefault(value, set()).add(key)

    def remove(self, value: Any, key: Any) -> None:
        """Drop ``key`` from ``value``'s posting set, if present."""
        keys = self.entries.get(value)
        if keys is None:
            return
        keys.discard(key)
        if not keys:
            del self.entries[value]

    def lookup(self, value: Any) -> Tuple[Any, ...]:
        """Candidate primary keys whose latest version had ``value``."""
        return tuple(self.entries.get(value, ()))

    def entry_count(self) -> int:
        """Total number of (value, key) postings."""
        return sum(len(keys) for keys in self.entries.values())
