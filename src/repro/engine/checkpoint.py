"""Periodic checkpointer.

PostgreSQL periodically writes all dirty buffers back to disk; the paper's
timelines show the resulting latency "whiskers" (e.g. around 290 s in
Figures 7 and 8) and notes that checkpoint degradation exceeds migration
overhead.  The simulated checkpointer occupies the node's disk for a burst
whose length grows with the write activity since the previous checkpoint,
so commits (WAL fsyncs) queue behind it and response times spike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from .disk import Disk

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import MetricsRegistry, Tracer
    from ..sim.core import Environment


@dataclass
class CheckpointSpec:
    """Checkpoint cadence and cost model."""

    #: Seconds between checkpoint starts (PostgreSQL default: 300 s; the
    #: paper's runs show one near t=290 s).
    interval: float = 290.0
    #: Dirty megabytes produced per committed update transaction.
    dirty_mb_per_commit: float = 0.02
    #: Minimum burst so even idle checkpoints are visible.
    min_burst_mb: float = 4.0
    #: Chunk size per disk write; commits can interleave between chunks,
    #: producing a spike rather than a total stall.
    chunk_mb: float = 2.0


class Checkpointer:
    """Background process flushing dirty pages on a fixed cadence."""

    def __init__(self, env: "Environment", disk: Disk,
                 spec: CheckpointSpec | None = None,
                 name: str = "checkpointer"):
        self.env = env
        self.disk = disk
        self.spec = spec or CheckpointSpec()
        self.name = name
        self._dirty_mb = 0.0
        self._running = True
        # statistics
        self.checkpoints = 0
        self.total_flushed_mb = 0.0
        # observability (see bind_obs)
        self._metrics: Optional["MetricsRegistry"] = None
        self._tracer: Optional["Tracer"] = None
        self._m_count = None
        self._m_flushed = None
        self._m_dirty = None
        self._m_burst = None
        env.process(self._loop(), name=name)

    def bind_obs(self, metrics: "MetricsRegistry",
                 prefix: str = "checkpoint",
                 tracer: Optional["Tracer"] = None) -> None:
        """Mirror checkpoint activity into a metrics registry.

        Creates ``<prefix>.count`` / ``.flushed_mb`` counters, a
        ``.dirty_mb`` gauge (high-water = worst backlog), and a
        ``.burst_s`` histogram of flush-burst durations — the bursts
        stretch when concurrent tenant restores contend for the same
        disk, which is exactly what the scheduler experiments need to
        see.  With a ``tracer``, every burst also becomes a span.
        """
        self._metrics = metrics
        self._tracer = tracer
        self._m_count = metrics.counter("%s.count" % prefix)
        self._m_flushed = metrics.counter("%s.flushed_mb" % prefix)
        self._m_dirty = metrics.gauge("%s.dirty_mb" % prefix)
        self._m_burst = metrics.histogram("%s.burst_s" % prefix)

    def note_commit(self, count: int = 1) -> None:
        """Record dirty pages produced by ``count`` committed updates."""
        self._dirty_mb += self.spec.dirty_mb_per_commit * count
        if self._m_dirty is not None:
            self._m_dirty.set(self._dirty_mb)

    def stop(self) -> None:
        """Stop scheduling further checkpoints."""
        self._running = False

    def _loop(self) -> Generator:
        while self._running:
            yield self.env.timeout(self.spec.interval)
            if not self._running:
                return
            burst = max(self.spec.min_burst_mb, self._dirty_mb)
            self._dirty_mb = 0.0
            self.checkpoints += 1
            self.total_flushed_mb += burst
            span = None
            if self._tracer is not None:
                span = self._tracer.start("checkpoint", node=self.name,
                                          flush_mb=burst)
            started = self.env.now
            remaining = burst
            while remaining > 0:
                chunk = min(self.spec.chunk_mb, remaining)
                yield from self.disk.write(chunk)
                remaining -= chunk
            if self._m_count is not None:
                self._m_count.inc()
                self._m_flushed.inc(burst)
                self._m_dirty.set(self._dirty_mb)
                self._m_burst.observe(self.env.now - started)
            if span is not None:
                self._tracer.finish(span)
