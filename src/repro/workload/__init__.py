"""Workload generators: TPC-W and a simple key-value workload."""
