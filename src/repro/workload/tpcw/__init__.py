"""TPC-W workload: schema, population (Table 3), mixes, interactions,
emulated browsers."""

from .browser import EbConfig, TenantMetrics, start_tenant_load
from .interactions import INTERACTIONS, EbState, IdAllocator, TpcwContext
from .mixes import (
    BROWSING_MIX,
    MIXES,
    ORDERING_MIX,
    SHOPPING_MIX,
    UPDATE_INTERACTIONS,
    mix_weights,
    update_fraction,
)
from .population import (
    CUSTOMERS_PER_EB,
    FIXED_OVERHEAD_MB,
    PAPER_TABLE3,
    PopulationParams,
    nominal_database_size_mb,
    populate,
)
from .schema import all_schemas

__all__ = [
    "BROWSING_MIX", "CUSTOMERS_PER_EB", "EbConfig", "EbState",
    "FIXED_OVERHEAD_MB", "INTERACTIONS", "IdAllocator", "MIXES",
    "ORDERING_MIX", "PAPER_TABLE3", "PopulationParams", "SHOPPING_MIX",
    "TenantMetrics", "TpcwContext", "UPDATE_INTERACTIONS", "all_schemas",
    "mix_weights", "nominal_database_size_mb", "populate",
    "start_tenant_load", "update_fraction",
]
