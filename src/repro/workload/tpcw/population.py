"""TPC-W population: cardinalities, sizing (Table 3), and bulk loading.

TPC-W scales with two knobs: the number of catalogue items and the number
of emulated browsers (EBs).  Cardinalities follow the specification:

* ``customers   = 2880 x EBs``
* ``addresses   = 2 x customers``
* ``orders      = 0.9 x customers`` (order lines: 3 per order, one credit
  card transaction per order)
* ``authors     = 0.25 x items``

The paper's Table 3 maps (items, EBs) to on-disk size; those sizes fit a
``fixed overhead + linear`` model (about 0.2 GB of catalogs/WAL/free
space plus the row payload), which is what
:func:`nominal_database_size_mb` implements via the schema widths.

Because the full-scale database (millions of rows) would not fit in a
Python process, :func:`populate` loads rows at ``row_scale`` (for example
1/100 of the cardinalities) and sets the tenant's ``size_multiplier`` so
dump/restore timing still sees the full nominal size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from ...sim.rand import RandomStream
from .schema import all_schemas

if TYPE_CHECKING:  # pragma: no cover
    from ...engine.instance import DbmsInstance

#: Fixed per-database footprint implied by Table 3 (GB -> MB).
FIXED_OVERHEAD_MB = 200.0

#: TPC-W customers per emulated browser.
CUSTOMERS_PER_EB = 2880

#: The paper's Table 3, for reporting alongside measured sizes.
PAPER_TABLE3 = (
    {"items": 100000, "ebs": 100, "size_gb": 0.8},
    {"items": 500000, "ebs": 500, "size_gb": 3.1},
    {"items": 1000000, "ebs": 1000, "size_gb": 6.2},
    {"items": 2000000, "ebs": 2000, "size_gb": 12.0},
)


@dataclass(frozen=True)
class PopulationParams:
    """Scale parameters of one TPC-W database."""

    items: int = 100000
    ebs: int = 100
    #: Fraction of the nominal cardinalities actually materialised.
    row_scale: float = 0.01

    @property
    def customers(self) -> int:
        """Nominal customer count (2880 per EB)."""
        return CUSTOMERS_PER_EB * self.ebs

    @property
    def orders(self) -> int:
        """Nominal initial order count (0.9 per customer)."""
        return int(0.9 * self.customers)

    def cardinalities(self) -> Dict[str, int]:
        """Nominal (full-scale) row counts per table."""
        customers = self.customers
        orders = self.orders
        return {
            "customer": customers,
            "address": 2 * customers,
            "country": 92,
            "item": self.items,
            "author": max(1, self.items // 4),
            "orders": orders,
            "order_line": 3 * orders,
            "cc_xacts": orders,
            "shopping_cart": 0,
            "shopping_cart_line": 0,
        }

    def scaled_cardinalities(self) -> Dict[str, int]:
        """Materialised row counts (at ``row_scale``), minimum 1 each."""
        scaled = {}
        for table, count in self.cardinalities().items():
            scaled[table] = (max(1, int(math.ceil(count * self.row_scale)))
                             if count else 0)
        return scaled


def nominal_database_size_mb(params: PopulationParams) -> float:
    """Predicted on-disk size from schema widths + fixed overhead."""
    schemas = all_schemas()
    total_bytes = 0.0
    for table, count in params.cardinalities().items():
        total_bytes += count * schemas[table].row_width_bytes()
    return FIXED_OVERHEAD_MB + total_bytes / 1e6


def populate(instance: "DbmsInstance", tenant_name: str,
             params: PopulationParams, rng: RandomStream) -> None:
    """Create and bulk-load a TPC-W tenant (not timed; setup only).

    Rows are installed directly at CSN 1, bypassing SQL, because initial
    population is not part of any measured path.
    """
    tenant = instance.create_tenant(tenant_name)
    tenant.fixed_overhead_mb = FIXED_OVERHEAD_MB
    if params.row_scale < 1.0:
        tenant.size_multiplier = 1.0 / params.row_scale
    for schema in all_schemas().values():
        tenant.create_table(schema)
    counts = params.scaled_cardinalities()
    csn = instance.next_csn()
    _load_country(tenant, csn)
    _load_items(tenant, csn, counts["item"], counts["author"], rng)
    _load_authors(tenant, csn, counts["author"], rng)
    _load_customers(tenant, csn, counts["customer"], rng)
    _load_addresses(tenant, csn, counts["address"], rng)
    _load_orders(tenant, csn, counts["orders"], counts["customer"],
                 counts["item"], rng)


def _load_country(tenant, csn: int) -> None:
    table = tenant.table("country")
    for co_id in range(1, 93):
        table.install(co_id, csn, {
            "co_id": co_id, "co_name": "country%d" % co_id,
            "co_exchange": 1.0, "co_currency": "CUR"})


def _load_items(tenant, csn: int, items: int, authors: int,
                rng: RandomStream) -> None:
    table = tenant.table("item")
    for i_id in range(1, items + 1):
        table.install(i_id, csn, {
            "i_id": i_id,
            "i_title": "title%d" % i_id,
            "i_a_id": 1 + (i_id % max(1, authors)),
            "i_pub_date": 0, "i_publisher": "pub%d" % (i_id % 100),
            "i_subject": "subject%d" % (i_id % 24),
            "i_desc": "description of item %d" % i_id,
            "i_related1": 1 + (i_id % items),
            "i_related2": 1 + ((i_id + 1) % items),
            "i_related3": 1 + ((i_id + 2) % items),
            "i_related4": 1 + ((i_id + 3) % items),
            "i_related5": 1 + ((i_id + 4) % items),
            "i_thumbnail": "thumb%d" % i_id, "i_image": "image%d" % i_id,
            "i_srp": round(rng.uniform(1.0, 100.0), 2),
            "i_cost": round(rng.uniform(1.0, 100.0), 2),
            "i_avail": 0, "i_stock": rng.randint(10, 30),
            "i_isbn": "isbn%d" % i_id, "i_page": rng.randint(20, 9999),
            "i_backing": "paperback", "i_dimensions": "20x15x2",
            "i_pad": "x" * 8})


def _load_authors(tenant, csn: int, authors: int,
                  rng: RandomStream) -> None:
    table = tenant.table("author")
    for a_id in range(1, authors + 1):
        table.install(a_id, csn, {
            "a_id": a_id, "a_fname": "fn%d" % a_id,
            "a_lname": "ln%d" % a_id, "a_mname": "m",
            "a_dob": 0, "a_bio": "bio", "a_bio2": "bio", "a_bio3": "bio"})


def _load_customers(tenant, csn: int, customers: int,
                    rng: RandomStream) -> None:
    table = tenant.table("customer")
    for c_id in range(1, customers + 1):
        table.install(c_id, csn, {
            "c_id": c_id, "c_uname": "user%d" % c_id,
            "c_passwd": "pw%d" % c_id, "c_fname": "fn%d" % c_id,
            "c_lname": "ln%d" % c_id, "c_addr_id": 2 * c_id - 1,
            "c_phone": "555-%07d" % c_id, "c_email": "u%d@x.com" % c_id,
            "c_since": 0, "c_last_login": 0, "c_login": 0,
            "c_expiration": 0,
            "c_discount": round(rng.uniform(0.0, 0.5), 2),
            "c_balance": 0.0, "c_ytd_pmt": 0.0, "c_birthdate": 0,
            "c_data": "d" * 16})


def _load_addresses(tenant, csn: int, addresses: int,
                    rng: RandomStream) -> None:
    table = tenant.table("address")
    for addr_id in range(1, addresses + 1):
        table.install(addr_id, csn, {
            "addr_id": addr_id, "addr_street1": "street %d" % addr_id,
            "addr_street2": "", "addr_city": "city%d" % (addr_id % 100),
            "addr_state": "st", "addr_zip": "%05d" % (addr_id % 99999),
            "addr_co_id": 1 + (addr_id % 92)})


def _load_orders(tenant, csn: int, orders: int, customers: int,
                 items: int, rng: RandomStream) -> None:
    order_table = tenant.table("orders")
    line_table = tenant.table("order_line")
    cc_table = tenant.table("cc_xacts")
    ol_id = 0
    for o_id in range(1, orders + 1):
        c_id = 1 + (o_id % max(1, customers))
        order_table.install(o_id, csn, {
            "o_id": o_id, "o_c_id": c_id, "o_date": 0,
            "o_sub_total": 10.0, "o_tax": 0.8, "o_total": 10.8,
            "o_ship_type": "air", "o_ship_date": 0,
            "o_bill_addr_id": 2 * c_id - 1, "o_ship_addr_id": 2 * c_id,
            "o_status": "shipped"})
        for _line in range(3):
            ol_id += 1
            line_table.install(ol_id, csn, {
                "ol_id": ol_id, "ol_o_id": o_id,
                "ol_i_id": rng.randint(1, max(1, items)),
                "ol_qty": rng.randint(1, 5), "ol_discount": 0.0,
                "ol_comments": "c"})
        cc_table.install(o_id, csn, {
            "cx_o_id": o_id, "cx_type": "VISA", "cx_num": "4111",
            "cx_name": "name", "cx_expiry": 0, "cx_auth_id": "auth",
            "cx_xact_amt": 10.8, "cx_xact_date": 0,
            "cx_co_id": 1 + (o_id % 92)})
