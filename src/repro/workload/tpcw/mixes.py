"""The three TPC-W mixes: browsing, shopping, ordering.

The TPC-W specification defines web-interaction mixes via a Markov
transition matrix; we use the resulting stationary interaction
frequencies (the standard simplification for closed-loop load
generators).  What matters for the paper's experiments is the ratio of
read-only to update interactions: ~95% read-only for browsing, ~80% for
shopping, and ~50% for ordering — the paper selected *ordering* because
update-intensive workloads stress replication hardest.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Interaction name -> relative frequency (percent), ordering mix.
ORDERING_MIX: Dict[str, float] = {
    "home": 9.12,
    "new_products": 0.46,
    "best_sellers": 0.46,
    "product_detail": 12.35,
    "search_request": 14.53,
    "search_results": 13.08,
    "shopping_cart": 13.53,
    "customer_registration": 12.86,
    "buy_request": 12.73,
    "buy_confirm": 10.18,
    "order_inquiry": 0.25,
    "order_display": 0.22,
    "admin_request": 0.12,
    "admin_confirm": 0.11,
}

#: Shopping mix (~80% read-only).
SHOPPING_MIX: Dict[str, float] = {
    "home": 16.00,
    "new_products": 5.00,
    "best_sellers": 5.00,
    "product_detail": 17.00,
    "search_request": 20.00,
    "search_results": 17.00,
    "shopping_cart": 11.60,
    "customer_registration": 3.00,
    "buy_request": 2.60,
    "buy_confirm": 1.20,
    "order_inquiry": 0.75,
    "order_display": 0.66,
    "admin_request": 0.10,
    "admin_confirm": 0.09,
}

#: Browsing mix (~95% read-only).
BROWSING_MIX: Dict[str, float] = {
    "home": 29.00,
    "new_products": 11.00,
    "best_sellers": 11.00,
    "product_detail": 21.00,
    "search_request": 12.00,
    "search_results": 11.00,
    "shopping_cart": 2.00,
    "customer_registration": 0.82,
    "buy_request": 0.75,
    "buy_confirm": 0.69,
    "order_inquiry": 0.30,
    "order_display": 0.25,
    "admin_request": 0.10,
    "admin_confirm": 0.09,
}

MIXES: Dict[str, Dict[str, float]] = {
    "ordering": ORDERING_MIX,
    "shopping": SHOPPING_MIX,
    "browsing": BROWSING_MIX,
}

#: Interactions whose transaction performs writes.
UPDATE_INTERACTIONS = frozenset({
    "shopping_cart", "customer_registration", "buy_request",
    "buy_confirm", "admin_confirm",
})


def mix_weights(mix_name: str) -> Tuple[Tuple[str, ...], Tuple[float, ...]]:
    """(interaction names, weights) for a mix, ready for weighted choice."""
    mix = MIXES.get(mix_name)
    if mix is None:
        raise ValueError("unknown mix %r (expected one of %s)"
                         % (mix_name, ", ".join(sorted(MIXES))))
    names = tuple(mix)
    weights = tuple(mix[name] for name in names)
    return names, weights


def update_fraction(mix_name: str) -> float:
    """Fraction of interactions that perform updates under a mix."""
    mix = MIXES[mix_name]
    total = sum(mix.values())
    updates = sum(weight for name, weight in mix.items()
                  if name in UPDATE_INTERACTIONS)
    return updates / total
