"""Emulated browsers (EBs) and the app-server tier.

Each EB is a closed-loop client: think, pick an interaction from the
mix, run it as one transaction through the middleware, record the
response time, repeat.  Interactions that abort (first-updater-wins
conflicts) are recorded separately and the EB simply moves on, as the
TPC-W kit's error handling does.

The Tomcat tier is modelled as one extra LAN round trip plus a small
fixed service delay per interaction; the paper's app-server nodes were
never the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, List, Optional

from ...core.middleware import Middleware
from ...errors import NetworkDown
from ...sim.monitor import CounterSeries, SampleSeries
from ...sim.rand import RandomStream, StreamFactory
from .interactions import INTERACTIONS, EbState, TpcwContext
from .mixes import UPDATE_INTERACTIONS, mix_weights

if TYPE_CHECKING:  # pragma: no cover
    from ...sim.core import Environment


@dataclass
class EbConfig:
    """Load-generator knobs for one tenant's EB population."""

    ebs: int = 100
    mix: str = "ordering"
    #: Mean think time between interactions (exponential; spec: 7 s).
    think_time: float = 7.0
    #: CPU-cost scale applied to every statement (hardware calibration).
    cpu_scale: float = 1.0
    #: Fixed app-server processing delay per interaction.
    appserver_delay: float = 0.002
    #: Stop issuing new interactions after this simulated time (None =
    #: run until the environment stops).
    until: Optional[float] = None


@dataclass
class TenantMetrics:
    """Per-tenant observables the figures are drawn from."""

    tenant: str
    #: Per-interaction response times (seconds).
    response_times: SampleSeries = field(
        default_factory=lambda: SampleSeries("rt"))
    #: Completed-interaction timestamps (throughput).
    completions: CounterSeries = field(
        default_factory=lambda: CounterSeries("tput"))
    interactions: int = 0
    update_interactions: int = 0
    aborted_interactions: int = 0
    errors: List[str] = field(default_factory=list)

    def mean_response_time(self, start: float = 0.0,
                           end: float = float("inf")) -> float:
        """Mean response time over a window."""
        return self.response_times.mean(start, end)

    def throughput(self, start: float, end: float) -> float:
        """Interactions per second over a window."""
        return self.completions.rate(start, end)


def emulated_browser(env: "Environment", middleware: Middleware,
                     tenant: str, ctx: TpcwContext, config: EbConfig,
                     rng: RandomStream, metrics: TenantMetrics,
                     eb_index: int) -> Generator[Any, Any, None]:
    """One EB's closed loop."""
    state = EbState(customer_id=1 + (eb_index % max(1, ctx.customers)))
    conn = middleware.connect(tenant)
    names, weights = mix_weights(config.mix)
    while True:
        yield env.timeout(rng.exponential(config.think_time))
        if config.until is not None and env.now >= config.until:
            return
        name = rng.weighted_choice(names, weights)
        steps = INTERACTIONS[name](ctx, state, rng, config.cpu_scale)
        started = env.now
        try:
            # app-server hop: one LAN round trip + servlet processing
            yield from middleware.cluster.network.round_trip()
            yield env.timeout(config.appserver_delay)
            ok = yield from _run_transaction(middleware, conn, steps)
        except NetworkDown:
            # The browser sees a connection error and moves on; the
            # middleware already rolled back anything half-done.
            ok = False
        finished = env.now
        metrics.interactions += 1
        if name in UPDATE_INTERACTIONS:
            metrics.update_interactions += 1
        if ok:
            metrics.response_times.record(finished, finished - started)
            metrics.completions.record(finished)
        else:
            metrics.aborted_interactions += 1


def _run_transaction(middleware: Middleware, conn, steps
                     ) -> Generator[Any, Any, bool]:
    """BEGIN, run the steps, COMMIT; False if any statement aborted."""
    result = yield from middleware.submit(conn, "BEGIN")
    if not result.ok:
        return False
    for sql, cpu_cost in steps:
        result = yield from middleware.submit(conn, sql, cpu_cost=cpu_cost)
        if not result.ok:
            # The engine already rolled the transaction back
            # (first-updater-wins); do not send ROLLBACK.
            return False
    result = yield from middleware.submit(conn, "COMMIT")
    return result.ok


def start_tenant_load(env: "Environment", middleware: Middleware,
                      tenant: str, ctx: TpcwContext, config: EbConfig,
                      seed: int = 0) -> TenantMetrics:
    """Spawn ``config.ebs`` emulated browsers; returns live metrics."""
    metrics = TenantMetrics(tenant)
    streams = StreamFactory(seed)
    for index in range(config.ebs):
        rng = streams.stream("%s-eb-%d" % (tenant, index))
        env.process(
            emulated_browser(env, middleware, tenant, ctx, config, rng,
                             metrics, index),
            name="%s-eb-%d" % (tenant, index))
    return metrics
