"""The 14 TPC-W web interactions as transaction templates.

Each interaction produces a list of ``(sql, cpu_cost)`` steps that the
emulated browser wraps in ``BEGIN``/``COMMIT``.  The shapes follow the
Java TPC-W kit the paper used: point lookups and secondary-index probes
for browsing pages, heavier scans for best-sellers/search, and the
order pipeline (cart -> buy request -> buy confirm) for updates.

Two invariants matter to the middleware:

* **No blind writes** (paper Section 3.1): every update template begins
  with a SELECT, so the snapshot-creating first operation is a read.
* **Primary-key writes**: update/insert/delete statements address rows by
  primary key, so replaying them on the slave under the LSIR reproduces
  the master's effects exactly (predicate writes during the snapshot
  window are out of scope, as in the paper's workload).

``cpu_cost`` values are the statements' CPU service times in seconds at
scale 1.0; the experiment profile scales them to place the saturation
knee (Figure 5) where the paper's hardware put it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...sim.rand import RandomStream

#: One statement of an interaction: (sql text, cpu seconds at scale 1).
Step = Tuple[str, float]

#: Base for middleware-generated row ids, far above any populated id.
_ID_BASE = 10_000_000

_MS = 1e-3


class IdAllocator:
    """Unique row ids for INSERTs, shared by all EBs of one tenant."""

    def __init__(self) -> None:
        self._counters: Dict[str, itertools.count] = {}

    def next_id(self, table: str) -> int:
        """A fresh id for ``table``."""
        counter = self._counters.get(table)
        if counter is None:
            counter = itertools.count(_ID_BASE)
            self._counters[table] = counter
        return next(counter)


@dataclass
class TpcwContext:
    """Per-tenant workload context: populated cardinalities and ids."""

    customers: int
    items: int
    orders: int
    subjects: int = 24
    ids: IdAllocator = field(default_factory=IdAllocator)


@dataclass
class EbState:
    """Per-emulated-browser session state."""

    customer_id: int
    cart_id: Optional[int] = None
    cart_items: List[Tuple[int, int]] = field(default_factory=list)
    logins: int = 0


def _cpu(milliseconds: float, scale: float) -> float:
    return milliseconds * _MS * scale


# ---------------------------------------------------------------------------
# browsing (read-only) interactions
# ---------------------------------------------------------------------------

def home(ctx: TpcwContext, state: EbState, rng: RandomStream,
         scale: float) -> List[Step]:
    """Home page: customer greeting plus promotional items."""
    item = rng.randint(1, ctx.items)
    return [
        ("SELECT c_fname, c_lname FROM customer WHERE c_id = %d"
         % state.customer_id, _cpu(5, scale)),
        ("SELECT i_id, i_title, i_thumbnail FROM item WHERE i_id = %d"
         % item, _cpu(5, scale)),
        ("SELECT i_related1, i_related2, i_related3 FROM item "
         "WHERE i_id = %d" % item, _cpu(10, scale)),
    ]


def new_products(ctx: TpcwContext, state: EbState, rng: RandomStream,
                 scale: float) -> List[Step]:
    """New products by subject: an expensive sorted scan."""
    subject = rng.randint(0, ctx.subjects - 1)
    return [
        ("SELECT i_id, i_title, i_pub_date FROM item "
         "WHERE i_subject = 'subject%d' ORDER BY i_pub_date DESC LIMIT 50"
         % subject, _cpu(90, scale)),
    ]


def best_sellers(ctx: TpcwContext, state: EbState, rng: RandomStream,
                 scale: float) -> List[Step]:
    """Best sellers: the heaviest query (aggregates recent orders)."""
    subject = rng.randint(0, ctx.subjects - 1)
    return [
        ("SELECT i_id, i_title FROM item WHERE i_subject = 'subject%d' "
         "ORDER BY i_id LIMIT 50" % subject, _cpu(160, scale)),
    ]


def product_detail(ctx: TpcwContext, state: EbState, rng: RandomStream,
                   scale: float) -> List[Step]:
    """Item page: the item and its author."""
    item = rng.randint(1, ctx.items)
    return [
        ("SELECT * FROM item WHERE i_id = %d" % item, _cpu(6, scale)),
        ("SELECT a_fname, a_lname FROM author WHERE a_id = %d"
         % (1 + item % max(1, ctx.items // 4)), _cpu(6, scale)),
    ]


def search_request(ctx: TpcwContext, state: EbState, rng: RandomStream,
                   scale: float) -> List[Step]:
    """Search form: trivial."""
    return [
        ("SELECT co_id, co_name FROM country WHERE co_id = %d"
         % rng.randint(1, 92), _cpu(5, scale)),
    ]


def search_results(ctx: TpcwContext, state: EbState, rng: RandomStream,
                   scale: float) -> List[Step]:
    """Search execution: subject/author/title search."""
    subject = rng.randint(0, ctx.subjects - 1)
    return [
        ("SELECT i_id, i_title, i_srp FROM item "
         "WHERE i_subject = 'subject%d' ORDER BY i_title LIMIT 50"
         % subject, _cpu(80, scale)),
    ]


def order_inquiry(ctx: TpcwContext, state: EbState, rng: RandomStream,
                  scale: float) -> List[Step]:
    """Order-status form."""
    return [
        ("SELECT c_id, c_uname FROM customer WHERE c_id = %d"
         % state.customer_id, _cpu(5, scale)),
    ]


def order_display(ctx: TpcwContext, state: EbState, rng: RandomStream,
                  scale: float) -> List[Step]:
    """Most recent order of the customer with its lines."""
    return [
        ("SELECT o_id, o_total, o_status FROM orders WHERE o_c_id = %d "
         "ORDER BY o_id DESC LIMIT 1" % state.customer_id, _cpu(15, scale)),
        ("SELECT ol_i_id, ol_qty FROM order_line WHERE ol_o_id = %d"
         % rng.randint(1, max(1, ctx.orders)), _cpu(10, scale)),
        ("SELECT cx_type, cx_xact_amt FROM cc_xacts WHERE cx_o_id = %d"
         % rng.randint(1, max(1, ctx.orders)), _cpu(5, scale)),
    ]


def admin_request(ctx: TpcwContext, state: EbState, rng: RandomStream,
                  scale: float) -> List[Step]:
    """Admin item view."""
    item = rng.randint(1, ctx.items)
    return [
        ("SELECT * FROM item WHERE i_id = %d" % item, _cpu(6, scale)),
        ("SELECT a_fname, a_lname FROM author WHERE a_id = %d"
         % (1 + item % max(1, ctx.items // 4)), _cpu(6, scale)),
    ]


# ---------------------------------------------------------------------------
# update interactions
# ---------------------------------------------------------------------------

def shopping_cart(ctx: TpcwContext, state: EbState, rng: RandomStream,
                  scale: float) -> List[Step]:
    """Create or refresh the cart and add/refresh one line."""
    item = rng.randint(1, ctx.items)
    qty = rng.randint(1, 5)
    steps: List[Step] = [
        ("SELECT i_id, i_title, i_srp FROM item WHERE i_id = %d" % item,
         _cpu(3, scale)),
    ]
    if state.cart_id is None:
        state.cart_id = ctx.ids.next_id("shopping_cart")
        steps.append(
            ("INSERT INTO shopping_cart (sc_id, sc_time, sc_sub_total, "
             "sc_total) VALUES (%d, 0, 0, 0)" % state.cart_id,
             _cpu(4, scale)))
    else:
        steps.append(
            ("SELECT sc_id, sc_total FROM shopping_cart WHERE sc_id = %d"
             % state.cart_id, _cpu(2, scale)))
        steps.append(
            ("UPDATE shopping_cart SET sc_time = sc_time + 1 "
             "WHERE sc_id = %d" % state.cart_id, _cpu(4, scale)))
    line_id = ctx.ids.next_id("shopping_cart_line")
    steps.append(
        ("INSERT INTO shopping_cart_line (scl_id, scl_sc_id, scl_i_id, "
         "scl_qty) VALUES (%d, %d, %d, %d)"
         % (line_id, state.cart_id, item, qty), _cpu(4, scale)))
    state.cart_items.append((item, qty))
    if len(state.cart_items) > 5:
        state.cart_items = state.cart_items[-5:]
    return steps


def customer_registration(ctx: TpcwContext, state: EbState,
                          rng: RandomStream, scale: float) -> List[Step]:
    """Register a new customer (insert customer + address)."""
    new_c = ctx.ids.next_id("customer")
    new_addr = ctx.ids.next_id("address")
    return [
        ("SELECT c_id, c_uname FROM customer WHERE c_id = %d"
         % state.customer_id, _cpu(2.5, scale)),
        ("INSERT INTO address (addr_id, addr_street1, addr_street2, "
         "addr_city, addr_state, addr_zip, addr_co_id) "
         "VALUES (%d, 'street', '', 'city', 'st', '00000', %d)"
         % (new_addr, rng.randint(1, 92)), _cpu(4, scale)),
        ("INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, "
         "c_lname, c_addr_id, c_phone, c_email, c_since, c_last_login, "
         "c_login, c_expiration, c_discount, c_balance, c_ytd_pmt, "
         "c_birthdate, c_data) VALUES (%d, 'nu%d', 'pw', 'fn', 'ln', %d, "
         "'555', 'e@x', 0, 0, 0, 0, 0.1, 0, 0, 0, 'd')"
         % (new_c, new_c, new_addr), _cpu(5, scale)),
    ]


def buy_request(ctx: TpcwContext, state: EbState, rng: RandomStream,
                scale: float) -> List[Step]:
    """Checkout form: refresh customer login state."""
    state.logins += 1
    return [
        ("SELECT c_id, c_passwd, c_addr_id FROM customer WHERE c_id = %d"
         % state.customer_id, _cpu(2.5, scale)),
        ("SELECT addr_id, addr_street1 FROM address WHERE addr_id = %d"
         % (2 * state.customer_id - 1), _cpu(2.5, scale)),
        ("UPDATE customer SET c_login = %d, c_expiration = %d "
         "WHERE c_id = %d"
         % (state.logins, state.logins + 7200, state.customer_id),
         _cpu(4, scale)),
    ]


def buy_confirm(ctx: TpcwContext, state: EbState, rng: RandomStream,
                scale: float) -> List[Step]:
    """Place the order: the order-pipeline transaction.

    Reads the customer and each cart item's stock, inserts the order with
    its lines and the credit-card transaction, decrements the stock
    (primary-key read-modify-write: the conflict source under load), and
    empties the cart.
    """
    if not state.cart_items:
        state.cart_items = [(rng.randint(1, ctx.items), rng.randint(1, 3))]
    lines = state.cart_items[:3]
    order_id = ctx.ids.next_id("orders")
    steps: List[Step] = [
        ("SELECT c_id, c_discount, c_balance FROM customer WHERE c_id = %d"
         % state.customer_id, _cpu(3, scale)),
    ]
    for item, _qty in lines:
        steps.append(("SELECT i_stock, i_cost FROM item WHERE i_id = %d"
                      % item, _cpu(2, scale)))
    steps.append(
        ("INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_tax, "
         "o_total, o_ship_type, o_ship_date, o_bill_addr_id, "
         "o_ship_addr_id, o_status) VALUES (%d, %d, 0, 10, 1, 11, 'air', "
         "0, %d, %d, 'pending')"
         % (order_id, state.customer_id, 2 * state.customer_id - 1,
            2 * state.customer_id), _cpu(4, scale)))
    for item, qty in lines:
        line_id = ctx.ids.next_id("order_line")
        steps.append(
            ("INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, "
             "ol_discount, ol_comments) VALUES (%d, %d, %d, %d, 0, 'c')"
             % (line_id, order_id, item, qty), _cpu(3.5, scale)))
        steps.append(
            ("UPDATE item SET i_stock = i_stock - %d WHERE i_id = %d"
             % (min(qty, 2), item), _cpu(4, scale)))
    steps.append(
        ("INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, "
         "cx_expiry, cx_auth_id, cx_xact_amt, cx_xact_date, cx_co_id) "
         "VALUES (%d, 'VISA', '4111', 'n', 0, 'a', 11, 0, %d)"
         % (order_id, rng.randint(1, 92)), _cpu(4, scale)))
    state.cart_items = []
    return steps


def admin_confirm(ctx: TpcwContext, state: EbState, rng: RandomStream,
                  scale: float) -> List[Step]:
    """Admin update: change an item's image and related items."""
    item = rng.randint(1, ctx.items)
    related = rng.randint(1, ctx.items)
    return [
        ("SELECT i_id, i_image FROM item WHERE i_id = %d" % item,
         _cpu(3, scale)),
        ("UPDATE item SET i_image = 'img', i_thumbnail = 'th', "
         "i_related1 = %d WHERE i_id = %d" % (related, item),
         _cpu(5, scale)),
    ]


#: Interaction registry used by the emulated browsers.
INTERACTIONS: Dict[str, Callable[[TpcwContext, EbState, RandomStream,
                                  float], List[Step]]] = {
    "home": home,
    "new_products": new_products,
    "best_sellers": best_sellers,
    "product_detail": product_detail,
    "search_request": search_request,
    "search_results": search_results,
    "shopping_cart": shopping_cart,
    "customer_registration": customer_registration,
    "buy_request": buy_request,
    "buy_confirm": buy_confirm,
    "order_inquiry": order_inquiry,
    "order_display": order_display,
    "admin_request": admin_request,
    "admin_confirm": admin_confirm,
}
