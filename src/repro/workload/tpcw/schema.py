"""TPC-W schema: the online-bookstore tables.

Ten tables, with representative column sets whose nominal widths are
calibrated so that the population model reproduces the paper's Table 3
database sizes (100,000 items + 100 EBs -> ~0.8 GB, etc.).  Primary keys
are single integer columns, as required by the storage engine, and the
update statements the workload issues are always primary-key based — the
same access pattern the Java TPC-W kit uses.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...engine.schema import TableSchema
from ...engine.sqlmini import ColumnDef


def _columns(*specs: Tuple[str, str]) -> Tuple[ColumnDef, ...]:
    first = True
    columns = []
    for name, type_name in specs:
        columns.append(ColumnDef(name, type_name, primary_key=first))
        first = False
    return tuple(columns)


def customer_schema() -> TableSchema:
    """CUSTOMER: one row per registered customer (~420 B nominal)."""
    schema = TableSchema("customer", _columns(
        ("c_id", "INT"), ("c_uname", "VARCHAR"), ("c_passwd", "VARCHAR"),
        ("c_fname", "VARCHAR"), ("c_lname", "VARCHAR"), ("c_addr_id", "INT"),
        ("c_phone", "VARCHAR"), ("c_email", "VARCHAR"),
        ("c_since", "DATE"), ("c_last_login", "DATE"),
        ("c_login", "TIMESTAMP"), ("c_expiration", "TIMESTAMP"),
        ("c_discount", "FLOAT"), ("c_balance", "FLOAT"),
        ("c_ytd_pmt", "FLOAT"), ("c_birthdate", "DATE"),
        ("c_data", "TEXT")))
    schema.add_index("idx_customer_uname", "c_uname")
    return schema


def address_schema() -> TableSchema:
    """ADDRESS: two rows per customer (~190 B nominal)."""
    return TableSchema("address", _columns(
        ("addr_id", "INT"), ("addr_street1", "VARCHAR"),
        ("addr_street2", "VARCHAR"), ("addr_city", "VARCHAR"),
        ("addr_state", "VARCHAR"), ("addr_zip", "CHAR"),
        ("addr_co_id", "INT")))


def country_schema() -> TableSchema:
    """COUNTRY: fixed 92 rows."""
    return TableSchema("country", _columns(
        ("co_id", "INT"), ("co_name", "VARCHAR"),
        ("co_exchange", "FLOAT"), ("co_currency", "VARCHAR")))


def item_schema() -> TableSchema:
    """ITEM: the catalogue (~650 B nominal — long titles/descriptions)."""
    schema = TableSchema("item", _columns(
        ("i_id", "INT"), ("i_title", "VARCHAR"), ("i_a_id", "INT"),
        ("i_pub_date", "DATE"), ("i_publisher", "VARCHAR"),
        ("i_subject", "VARCHAR"), ("i_desc", "TEXT"),
        ("i_related1", "INT"), ("i_related2", "INT"),
        ("i_related3", "INT"), ("i_related4", "INT"),
        ("i_related5", "INT"), ("i_thumbnail", "TEXT"),
        ("i_image", "TEXT"), ("i_srp", "FLOAT"), ("i_cost", "FLOAT"),
        ("i_avail", "DATE"), ("i_stock", "INT"), ("i_isbn", "CHAR"),
        ("i_page", "INT"), ("i_backing", "VARCHAR"),
        ("i_dimensions", "VARCHAR"), ("i_pad", "TEXT")))
    schema.add_index("idx_item_subject", "i_subject")
    schema.add_index("idx_item_author", "i_a_id")
    return schema


def author_schema() -> TableSchema:
    """AUTHOR: one row per 4 items (~350 B nominal)."""
    return TableSchema("author", _columns(
        ("a_id", "INT"), ("a_fname", "VARCHAR"), ("a_lname", "VARCHAR"),
        ("a_mname", "VARCHAR"), ("a_dob", "DATE"), ("a_bio", "TEXT"),
        ("a_bio2", "TEXT"), ("a_bio3", "TEXT")))


def orders_schema() -> TableSchema:
    """ORDERS: 0.9 per customer initially (~230 B nominal)."""
    schema = TableSchema("orders", _columns(
        ("o_id", "INT"), ("o_c_id", "INT"), ("o_date", "DATE"),
        ("o_sub_total", "FLOAT"), ("o_tax", "FLOAT"), ("o_total", "FLOAT"),
        ("o_ship_type", "VARCHAR"), ("o_ship_date", "DATE"),
        ("o_bill_addr_id", "INT"), ("o_ship_addr_id", "INT"),
        ("o_status", "VARCHAR")))
    schema.add_index("idx_orders_customer", "o_c_id")
    return schema


def order_line_schema() -> TableSchema:
    """ORDER_LINE: three per order on average (~200 B nominal)."""
    schema = TableSchema("order_line", _columns(
        ("ol_id", "INT"), ("ol_o_id", "INT"), ("ol_i_id", "INT"),
        ("ol_qty", "INT"), ("ol_discount", "FLOAT"),
        ("ol_comments", "TEXT")))
    schema.add_index("idx_order_line_order", "ol_o_id")
    return schema


def cc_xacts_schema() -> TableSchema:
    """CC_XACTS: one card transaction per order (~210 B nominal)."""
    return TableSchema("cc_xacts", _columns(
        ("cx_o_id", "INT"), ("cx_type", "VARCHAR"), ("cx_num", "CHAR"),
        ("cx_name", "VARCHAR"), ("cx_expiry", "DATE"),
        ("cx_auth_id", "CHAR"), ("cx_xact_amt", "FLOAT"),
        ("cx_xact_date", "DATE"), ("cx_co_id", "INT")))


def shopping_cart_schema() -> TableSchema:
    """SHOPPING_CART: one per active EB session."""
    return TableSchema("shopping_cart", _columns(
        ("sc_id", "INT"), ("sc_time", "TIMESTAMP"),
        ("sc_sub_total", "FLOAT"), ("sc_total", "FLOAT")))


def shopping_cart_line_schema() -> TableSchema:
    """SHOPPING_CART_LINE: lines of active carts."""
    schema = TableSchema("shopping_cart_line", _columns(
        ("scl_id", "INT"), ("scl_sc_id", "INT"), ("scl_i_id", "INT"),
        ("scl_qty", "INT")))
    schema.add_index("idx_scl_cart", "scl_sc_id")
    return schema


def all_schemas() -> Dict[str, TableSchema]:
    """Every TPC-W table schema, keyed by table name."""
    schemas = [customer_schema(), address_schema(), country_schema(),
               item_schema(), author_schema(), orders_schema(),
               order_line_schema(), cc_xacts_schema(),
               shopping_cart_schema(), shopping_cart_line_schema()]
    return {schema.name: schema for schema in schemas}
