"""A small key-value workload for tests, examples, and property checks.

One ``kv`` table; clients run read-modify-write transactions (never blind
writes, per the paper's Section 3.1 assumption) mixed with read-only
transactions.  Deterministic under a seed, and every committed increment
is counted so tests can check the final state value-by-value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Generator

from ..core.middleware import Connection, Middleware
from ..engine.session import Session
from ..sim.rand import RandomStream

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.instance import DbmsInstance
    from ..sim.core import Environment


@dataclass
class KvWorkloadConfig:
    """Shape of the key-value workload."""

    keys: int = 50
    clients: int = 4
    transactions_per_client: int = 25
    #: Probability a transaction is read-only.
    read_only_ratio: float = 0.4
    #: Writes per update transaction.
    writes_per_txn: int = 2
    #: Mean think time between transactions (exponential).
    think_time: float = 0.01


@dataclass
class KvWorkloadResult:
    """What happened: per-key committed increments and counters."""

    committed_increments: Dict[int, int] = field(default_factory=dict)
    committed_txns: int = 0
    aborted_txns: int = 0
    read_only_txns: int = 0


def setup_kv_tenant(instance: "DbmsInstance", tenant: str,
                    keys: int) -> Generator[Any, Any, None]:
    """Create the ``kv`` table and populate ``keys`` rows."""
    instance.create_tenant(tenant)
    session = Session(instance, tenant)
    result = yield from session.execute(
        "CREATE TABLE kv (k INT PRIMARY KEY, v INT, tag VARCHAR)")
    assert result.ok, result.error
    for key in range(keys):
        yield from session.execute("BEGIN")
        result = yield from session.execute(
            "INSERT INTO kv (k, v, tag) VALUES (%d, 0, 'key%d')"
            % (key, key))
        assert result.ok, result.error
        result = yield from session.execute("COMMIT")
        assert result.ok, result.error


def kv_client(env: "Environment", middleware: Middleware, tenant: str,
              rng: RandomStream, config: KvWorkloadConfig,
              result: KvWorkloadResult) -> Generator[Any, Any, None]:
    """One client running the configured number of transactions."""
    conn = middleware.connect(tenant)
    for _txn_index in range(config.transactions_per_client):
        yield env.timeout(rng.exponential(config.think_time))
        if rng.random() < config.read_only_ratio:
            yield from _read_only_txn(middleware, conn, rng, config, result)
        else:
            yield from _update_txn(middleware, conn, rng, config, result)


def _read_only_txn(middleware: Middleware, conn: Connection,
                   rng: RandomStream, config: KvWorkloadConfig,
                   result: KvWorkloadResult) -> Generator[Any, Any, None]:
    response = yield from middleware.submit(conn, "BEGIN")
    if not response.ok:
        # BEGIN only fails under injected faults (node down, link down);
        # the client just counts the abort and retries next iteration.
        result.aborted_txns += 1
        return
    for _read in range(2):
        key = rng.randint(0, config.keys - 1)
        response = yield from middleware.submit(
            conn, "SELECT v FROM kv WHERE k = %d" % key)
        if not response.ok:
            result.aborted_txns += 1
            return
    response = yield from middleware.submit(conn, "COMMIT")
    if response.ok:
        result.read_only_txns += 1
    else:
        result.aborted_txns += 1


def _update_txn(middleware: Middleware, conn: Connection,
                rng: RandomStream, config: KvWorkloadConfig,
                result: KvWorkloadResult) -> Generator[Any, Any, None]:
    keys = sorted({rng.randint(0, config.keys - 1)
                   for _w in range(config.writes_per_txn)})
    response = yield from middleware.submit(conn, "BEGIN")
    if not response.ok:
        result.aborted_txns += 1
        return
    # never a blind write: read each key before updating it
    for key in keys:
        response = yield from middleware.submit(
            conn, "SELECT v FROM kv WHERE k = %d" % key)
        if not response.ok:
            result.aborted_txns += 1
            return
    for key in keys:
        response = yield from middleware.submit(
            conn, "UPDATE kv SET v = v + 1 WHERE k = %d" % key)
        if not response.ok:
            result.aborted_txns += 1
            return
    response = yield from middleware.submit(conn, "COMMIT")
    if response.ok:
        result.committed_txns += 1
        for key in keys:
            result.committed_increments[key] = (
                result.committed_increments.get(key, 0) + 1)
    else:
        result.aborted_txns += 1


def run_kv_clients(env: "Environment", middleware: Middleware,
                   tenant: str, config: KvWorkloadConfig,
                   seed: int = 0) -> KvWorkloadResult:
    """Spawn all clients; returns the (live) shared result object."""
    from ..sim.rand import StreamFactory

    result = KvWorkloadResult()
    streams = StreamFactory(seed)
    for index in range(config.clients):
        rng = streams.stream("kv-client-%d" % index)
        env.process(kv_client(env, middleware, tenant, rng, config, result),
                    name="kv-client-%d" % index)
    return result
