"""Exception hierarchy for the Madeus reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SqlError(ReproError):
    """Malformed mini-SQL text or an unsupported construct."""


class SchemaError(ReproError):
    """Unknown table/column, duplicate definitions, key violations."""


class TransactionError(ReproError):
    """Base for transaction-lifecycle errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and must be rolled back by the client.

    Under snapshot isolation with the first-updater-wins rule this is the
    normal outcome of a write-write conflict (Section 2.3 of the paper).
    """

    def __init__(self, reason: str = "serialization conflict"):
        super().__init__(reason)
        self.reason = reason


class InvalidTransactionState(TransactionError):
    """An operation was issued on a finished or unknown transaction."""


class NodeCrashed(ReproError):
    """The DBMS node is down: it crashed and has not been restarted yet.

    Committed state survives (the commit protocol installs versions only
    after the WAL flush), but every in-flight transaction and every new
    statement fails with this error until :meth:`DbmsInstance.restart`
    finishes WAL-replay recovery.
    """

    def __init__(self, node: str, reason: str = "node crashed"):
        super().__init__("%s: %s" % (node, reason))
        self.node = node
        self.reason = reason


class NetworkDown(ReproError):
    """The cluster link is (transiently) unavailable.

    Raised out of in-flight :meth:`Network.message` calls while a
    ``link_down`` fault is active, so callers see the outage mid-transfer
    rather than at the next send.
    """


class MigrationError(ReproError):
    """Live-migration orchestration failed (e.g. slave cannot catch up)."""


class SourceCrashed(MigrationError):
    """The master (source) node crashed mid-migration.

    Section 4.2: "if the master fails, Madeus aborts the migration" —
    the migration tears down cleanly and the tenant keeps its source
    ownership.  Nothing committed remotely is lost: the commit protocol
    installs versions only after the WAL flush, so every transaction the
    customer saw commit survives the crash and WAL-replay recovery.
    A crash that races the *handover* phase does not raise this — the
    two-step ownership switch rolls forward to the destination instead.
    """

    def __init__(self, node: str, phase: str):
        super().__init__(
            "source node %s crashed during %s; migration aborted "
            "(committed state is preserved on the source)"
            % (node, phase))
        self.node = node
        self.phase = phase


class CatchUpTimeout(MigrationError):
    """The slave failed to catch up with the master within the deadline.

    This reproduces the paper's "N/A" entry for B-CON under heavy workload
    (Section 5.3.2): serial commit propagation throughput falls below the
    master's commit rate, so the syncset backlog grows without bound.
    ``reason`` distinguishes the hard deadline (``"timeout"``) from the
    divergence watchdog firing early (``"diverging"``).
    """

    def __init__(self, message: str, backlog: int, elapsed: float,
                 reason: str = "timeout"):
        super().__init__(message)
        self.backlog = backlog
        self.elapsed = elapsed
        self.reason = reason


class RoutingError(ReproError):
    """No node hosts the requested tenant, or routing tables are stale."""


class RouterCrashed(ReproError):
    """The router shard carrying this connection died mid-request.

    The reply (if any) was lost in the shard's buffers; the client must
    treat the request outcome as *unknown* and reconnect to a surviving
    shard.  Requests the shard had not yet forwarded were never
    acknowledged, so dropping them loses nothing that was promised.
    """

    def __init__(self, shard: str):
        super().__init__("router shard %s crashed" % shard)
        self.shard = shard
