"""``python -m repro`` — run paper experiments from the shell."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
