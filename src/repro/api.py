"""The stable public API of the Madeus reproduction.

Import from here when building on the library; everything this module
exports follows the deprecation policy in README.md ("Public API"):
breaking changes are preceded by one release of ``DeprecationWarning``
shims.  Internal modules (``repro.core.middleware``, ``repro.engine``,
...) may reorganise without notice.

The surface is deliberately small:

* :class:`Middleware` / :class:`MiddlewareConfig` — the proxy itself;
* :class:`MigrationOptions` — per-migration knobs for
  :meth:`Middleware.migrate` (rates, standbys, pipelining, retries);
* :class:`MigrationReport` — what a finished migration reports;
* :class:`MigrationScheduler` / :class:`ScheduleOptions` /
  :class:`ScheduleReport` — run N tenant migrations concurrently under
  an admission policy (``fifo`` / ``round-robin`` / ``smallest-first``)
  with honest per-link bandwidth contention;
* :class:`TransferRates` — the dump/restore rate model;
* :func:`policy_by_name` — resolve ``"Madeus"`` / ``"B-ALL"`` / ... to a
  propagation policy;
* :func:`run_benchmark` — the ``repro bench`` harness, programmatically.
"""

from .core.middleware import (
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
    MigrationReport,
)
from .core.policy import policy_by_name
from .core.scheduler import (
    MigrationScheduler,
    ScheduleOptions,
    ScheduleReport,
)
from .engine.dump import TransferRates
from .experiments.bench import run_benchmark

__all__ = [
    "Middleware",
    "MiddlewareConfig",
    "MigrationOptions",
    "MigrationReport",
    "MigrationScheduler",
    "ScheduleOptions",
    "ScheduleReport",
    "TransferRates",
    "policy_by_name",
    "run_benchmark",
]
