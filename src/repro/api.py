"""The stable public API of the Madeus reproduction.

Import from here when building on the library; everything this module
exports follows the deprecation policy in README.md ("Public API"):
breaking changes are preceded by one release of ``DeprecationWarning``
shims.  Internal modules (``repro.core.middleware``, ``repro.engine``,
...) may reorganise without notice.

The surface, by layer:

**Mechanism** — migrate one tenant:

* :class:`Middleware` / :class:`MiddlewareConfig` — the proxy itself;
* :class:`MigrationOptions` — per-migration knobs for
  :meth:`Middleware.migrate` (rates, standbys, the snapshot
  ``strategy``, and the shared retry/resume knobs ``retry_limit`` /
  ``retry_base`` / ``retry_cap`` / ``resume``);
* :class:`SnapshotStrategy` — how the initial copy is produced
  (``SERIAL`` / ``PIPELINED`` / ``WATERMARK``), the same ``strategy``
  knob on all three options classes;
* :class:`MigrationReport` — what a finished migration reports;
* :class:`TransferRates` — the dump/restore rate model;
* :func:`policy_by_name` — resolve ``"Madeus"`` / ``"B-ALL"`` / ... to
  a propagation policy.

**Scheduling** — migrate N tenants:

* :class:`MigrationScheduler` / :class:`ScheduleOptions` /
  :class:`ScheduleReport` — run N tenant migrations concurrently under
  an admission policy (``fifo`` / ``round-robin`` / ``smallest-first``)
  with honest per-link bandwidth contention, in batch (``run``) or
  service (``start_service`` / ``submit`` / ``stop_service``) mode.

**Control plane** — decide which tenant moves where, continuously:

* :class:`Rebalancer` / :class:`RebalanceOptions` — the closed loop
  (sense, detect, plan, act) that keeps a fleet balanced, ranking
  moves by the Section 4.5.2 predicted migration cost;
* :class:`RebalanceReport` — samples, decisions, and per-move records
  (predicted vs observed cost) from a finished rebalancer;
* :class:`ClusterView` — one frozen sample of per-tenant rates and
  per-node loads, with the ``imbalance`` coefficient.

**Router tier** — what a *client connection* experiences:

* :class:`RouterFleet` / :class:`RouterShard` /
  :class:`RouterConfig` — the shardable, crashable connection tier in
  front of the middleware: persistent per-client connections,
  connection draining through handovers (in-flight requests quiesce,
  new ``BEGIN``\\ s park in a bounded queue with capped-backoff
  retry), seeded crash failover, and the per-request downtime
  histogram (``router.downtime``) the service-interruption argument
  rests on.  The fleet duck-types ``connect`` / ``submit``, so any
  workload written against :class:`Middleware` runs through it
  unchanged.

**Observability** — read what the system measured:

* :class:`MetricsRegistry` — counters and gauges, with the stable read
  API ``snapshot()`` / ``gauge_value(name, default)``;
* :class:`QuantileHistogram` — the sample-retaining histogram behind
  the router's per-request downtime metric (``p50``/``p90``/``p99``
  via nearest-rank ``quantile(q)``).

**Harness**:

* :func:`run_benchmark` — the ``repro bench`` harness,
  programmatically.

The three options classes (:class:`MigrationOptions`,
:class:`ScheduleOptions`, :class:`RebalanceOptions`) spell their
retry/backoff/resume knobs identically — ``retry_limit``,
``retry_base``, ``retry_cap``, ``resume`` — and share the
``strategy`` knob (a :class:`SnapshotStrategy` or its string
spelling), so a knob learned once applies everywhere.
"""

from .control import (
    ClusterView,
    RebalanceOptions,
    RebalanceReport,
    Rebalancer,
)
from .core.middleware import (
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
    MigrationReport,
)
from .core.policy import policy_by_name
from .core.scheduler import (
    MigrationScheduler,
    ScheduleOptions,
    ScheduleReport,
)
from .core.watermark import SnapshotStrategy
from .engine.dump import TransferRates
from .experiments.bench import run_benchmark
from .obs.metrics import MetricsRegistry, QuantileHistogram
from .router import RouterConfig, RouterFleet, RouterShard

__all__ = [
    "ClusterView",
    "MetricsRegistry",
    "Middleware",
    "MiddlewareConfig",
    "MigrationOptions",
    "MigrationReport",
    "MigrationScheduler",
    "QuantileHistogram",
    "RebalanceOptions",
    "RebalanceReport",
    "Rebalancer",
    "RouterConfig",
    "RouterFleet",
    "RouterShard",
    "ScheduleOptions",
    "ScheduleReport",
    "SnapshotStrategy",
    "TransferRates",
    "policy_by_name",
    "run_benchmark",
]
