"""Madeus reproduction: DBMS-transparent database live migration.

A full, from-scratch reproduction of *"Madeus: Database Live Migration
Middleware under Heavy Workloads for Cloud Environment"* (SIGMOD 2015)
on a deterministic discrete-event substrate:

* :mod:`repro.sim` — the simulation kernel (events, processes,
  resources, seeded randomness, monitors);
* :mod:`repro.engine` — a PostgreSQL-like storage engine: MVCC snapshot
  isolation with first-updater-wins, shared-process multi-tenancy, WAL
  with group commit, checkpointing, mini-SQL, dump/restore;
* :mod:`repro.cluster` / :mod:`repro.net` — nodes and the LAN;
* :mod:`repro.core` — **Madeus itself**: the LSIR, syncset
  buffers/list, workers, manager, conductor, players, and the three
  baseline propagation policies of Table 2;
* :mod:`repro.control` — the continuous control plane: load watching,
  hotspot detection, and the cost-model-driven :class:`Rebalancer`;
* :mod:`repro.router` — the client-facing connection tier: a
  :class:`RouterFleet` of crashable shards that drain connections
  through handovers and record per-request downtime histograms;
* :mod:`repro.workload` — TPC-W (schema, Table-3 population, the three
  mixes, emulated browsers) and a simple key-value workload;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import (Environment, Cluster, Middleware,
                       MiddlewareConfig, MADEUS)

    env = Environment()
    cluster = Cluster(env)
    cluster.add_node("node0")
    cluster.add_node("node1")
    middleware = Middleware(env, cluster, MiddlewareConfig(policy=MADEUS))
    # ... create a tenant, drive load, then:
    # report = yield from middleware.migrate("tenant", "node1")
"""

from .cluster import Cluster, Node, NodeSpec
from .control import (
    ClusterView,
    HotspotDetector,
    LoadWatcher,
    RebalanceOptions,
    RebalanceReport,
    Rebalancer,
)
from .core import (
    ALL_POLICIES,
    B_ALL,
    B_CON,
    B_MIN,
    MADEUS,
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
    MigrationReport,
    MigrationScheduler,
    PropagationPolicy,
    ScheduleOptions,
    ScheduleReport,
    SnapshotStrategy,
)
from .engine import DbmsInstance, Session, TenantDatabase, TransferRates, parse
from .errors import (
    CatchUpTimeout,
    MigrationError,
    NetworkDown,
    NodeCrashed,
    ReproError,
    RouterCrashed,
    RoutingError,
    SchemaError,
    SqlError,
    TransactionAborted,
)
from .faults import FaultInjector, FaultPlan, FaultSpec
from .obs import MetricsRegistry, Tracer, read_trace, write_trace
from .router import RouterConfig, RouterFleet, RouterShard
from .sim import Environment

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICIES",
    "B_ALL",
    "B_CON",
    "B_MIN",
    "CatchUpTimeout",
    "Cluster",
    "ClusterView",
    "DbmsInstance",
    "Environment",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HotspotDetector",
    "LoadWatcher",
    "MADEUS",
    "MetricsRegistry",
    "Middleware",
    "MiddlewareConfig",
    "MigrationError",
    "MigrationOptions",
    "MigrationReport",
    "MigrationScheduler",
    "NetworkDown",
    "Node",
    "NodeCrashed",
    "NodeSpec",
    "PropagationPolicy",
    "RebalanceOptions",
    "RebalanceReport",
    "Rebalancer",
    "ReproError",
    "RouterConfig",
    "RouterCrashed",
    "RouterFleet",
    "RouterShard",
    "RoutingError",
    "ScheduleOptions",
    "ScheduleReport",
    "SchemaError",
    "Session",
    "SnapshotStrategy",
    "SqlError",
    "TenantDatabase",
    "Tracer",
    "TransactionAborted",
    "TransferRates",
    "parse",
    "read_trace",
    "write_trace",
    "__version__",
]
