"""Plain-text tables and series for the experiment harness.

Every benchmark prints the rows/series the paper's tables and figures
report, side by side with the paper's published values where available.
These helpers keep the formatting uniform and machine-greppable.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Fixed-width table with a rule under the header."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != columns:
            raise ValueError("row %r has %d cells, expected %d"
                             % (row, len(row), columns))
        cells = [_render(cell) for cell in row]
        rendered_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(h).ljust(widths[i])
                       for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(cells)))
    return "\n".join(lines)


def _render(cell: Any) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN marks "not applicable"
            return "N/A"
        if abs(cell) >= 100:
            return "%.0f" % cell
        if abs(cell) >= 1:
            return "%.1f" % cell
        return "%.3f" % cell
    if cell is None:
        return "N/A"
    return str(cell)


def format_series(name: str, points: Sequence[Tuple[float, float]],
                  x_label: str = "t", y_label: str = "value",
                  max_points: int = 60) -> str:
    """A (downsampled) time series as two aligned columns.

    Timeline figures (7, 8, 10-19) are reported this way; ``max_points``
    keeps the output readable while preserving the shape.
    """
    if len(points) > max_points:
        stride = max(1, len(points) // max_points)
        points = list(points)[::stride]
    lines = ["%s  (%s -> %s)" % (name, x_label, y_label)]
    for x, y in points:
        lines.append("  %10.1f  %10.4f" % (x, y))
    return "\n".join(lines)


def sparkline(points: Sequence[Tuple[float, float]], width: int = 72) -> str:
    """A unicode sparkline of a series (quick visual shape check)."""
    if not points:
        return "(empty)"
    values = [y for _x, y in points]
    if len(values) > width:
        stride = max(1, len(values) // width)
        values = values[::stride]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    glyphs = " .:-=+*#%@"
    return "".join(glyphs[min(9, int((v - low) / span * 9.999))]
                   for v in values)


def shape_note(measured: float, paper: float, label: str) -> str:
    """One-line paper-vs-measured comparison with the ratio."""
    if paper == 0:
        return "%s: measured %.3g (paper: 0)" % (label, measured)
    return ("%s: measured %.3g vs paper %.3g (x%.2f)"
            % (label, measured, paper, measured / paper))
