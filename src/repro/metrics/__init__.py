"""Metrics: time-series probes, report formatting, and instruments.

The structured counter/gauge/histogram instruments live in
:mod:`repro.obs.metrics`; they are re-exported here because this is the
layer experiment code reaches for when it wants numbers out of a run.
"""

from ..obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from ..sim.monitor import CounterSeries, SampleSeries
from .report import format_series, format_table, shape_note, sparkline

__all__ = ["Counter", "CounterSeries", "Gauge", "Histogram",
           "MetricsRegistry", "SampleSeries", "format_series",
           "format_table", "shape_note", "sparkline"]
