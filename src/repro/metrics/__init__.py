"""Metrics: time-series probes and report formatting."""

from ..sim.monitor import CounterSeries, SampleSeries
from .report import format_series, format_table, shape_note, sparkline

__all__ = ["CounterSeries", "SampleSeries", "format_series",
           "format_table", "shape_note", "sparkline"]
