"""Simulated LAN: per-hop latency plus shared-link bandwidth.

The paper's testbed connects all machines over 1-Gbps Ethernet.  Customer
operations, syncset propagation, and the snapshot transfer all cross this
network; only the snapshot transfer is large enough for bandwidth to
matter, but modelling it keeps Step 2 honest on big databases.

The link can also degrade (see :mod:`repro.faults`): latency spikes and
bandwidth collapse multiply the effective cost of every hop, and a
transient outage (:meth:`Network.fail_link`) surfaces a
:class:`~repro.errors.NetworkDown` to in-flight :meth:`Network.message`
calls -- the transfer was under way when the cable was pulled, so the
caller finds out mid-flight, not at its next send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import NetworkDown, NodeCrashed
from ..sim.events import Interrupt
from ..sim.resources import Resource
from ..sim.sync import CLOSED

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import MetricsRegistry
    from ..sim.core import Environment


@dataclass
class NetworkSpec:
    """Latency/bandwidth envelope of the cluster LAN."""

    #: One-way message latency (switch + stack), ~0.1 ms on a quiet GbE.
    latency: float = 0.0001
    #: Aggregate link bandwidth in MB/s (1 Gbps ~ 125 MB/s).
    bandwidth_mb_s: float = 125.0
    #: Transfers larger than this are serialised on the shared link.
    bulk_threshold_mb: float = 1.0


class Network:
    """The cluster LAN; messages share one bulk-transfer channel."""

    def __init__(self, env: "Environment", spec: NetworkSpec | None = None):
        self.env = env
        self.spec = spec or NetworkSpec()
        self._bulk = Resource(env, capacity=1, name="net.bulk")
        # degradation state (see repro.faults): multiplicative so
        # overlapping faults compose instead of clobbering each other
        self.latency_factor = 1.0
        self.bandwidth_factor = 1.0
        self._down_count = 0
        # statistics
        self.messages = 0
        self.messages_failed = 0
        self.bytes_moved = 0.0
        self.outages = 0
        self._metrics: Optional["MetricsRegistry"] = None
        self._metrics_prefix = "net"

    # ------------------------------------------------------------------
    # fault surface
    # ------------------------------------------------------------------

    @property
    def is_down(self) -> bool:
        """True while at least one link outage is active."""
        return self._down_count > 0

    def fail_link(self) -> None:
        """Start an outage; nested outages stack until each is restored."""
        self._down_count += 1
        self.outages += 1
        if self._metrics is not None:
            self._metrics.counter(
                "%s.outages" % self._metrics_prefix).inc()

    def restore_link(self) -> None:
        """End one outage started by :meth:`fail_link`."""
        if self._down_count > 0:
            self._down_count -= 1

    def degrade(self, latency_scale: float = 1.0,
                bandwidth_scale: float = 1.0) -> None:
        """Multiply effective latency / divide effective bandwidth.

        Apply the inverse scale to undo one degradation, or call
        :meth:`restore_quality` to clear everything at once.
        """
        self.latency_factor *= latency_scale
        self.bandwidth_factor *= bandwidth_scale

    def restore_quality(self) -> None:
        """Reset latency/bandwidth degradation to the healthy baseline."""
        self.latency_factor = 1.0
        self.bandwidth_factor = 1.0

    def _check_link(self) -> None:
        if self._down_count > 0:
            self.messages_failed += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "%s.messages_failed" % self._metrics_prefix).inc()
            raise NetworkDown("cluster link is down")

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------

    def message(self, size_mb: float = 0.0) -> Generator[Any, Any, None]:
        """One request or response hop.

        Small messages only pay latency; bulk transfers additionally hold
        the shared link for their serialisation time.  Raises
        :class:`NetworkDown` if an outage is active when the hop starts
        *or* begins while the bytes are on the wire.
        """
        self._check_link()
        self.messages += 1
        self.bytes_moved += size_mb * 1e6
        yield self.env.timeout(self.spec.latency * self.latency_factor)
        self._check_link()
        bandwidth = self.spec.bandwidth_mb_s / self.bandwidth_factor
        if size_mb > self.spec.bulk_threshold_mb:
            grant = self._bulk.request()
            try:
                yield grant
                yield self.env.timeout(size_mb / bandwidth)
            finally:
                self._bulk.release(grant)
        elif size_mb > 0:
            yield self.env.timeout(size_mb / bandwidth)
        self._check_link()

    def round_trip(self, request_mb: float = 0.0,
                   response_mb: float = 0.0) -> Generator[Any, Any, None]:
        """A request hop followed by a response hop."""
        yield from self.message(request_mb)
        yield from self.message(response_mb)

    def pump_chunks(self, reader: Any, sink: Any
                    ) -> Generator[Any, Any, int]:
        """Bounded-buffer shipper for the pipelined snapshot path.

        Moves :class:`~repro.engine.dump.SnapshotChunk` objects from a
        :class:`~repro.core.pipeline.ChunkReader` across the link into a
        destination-side :class:`~repro.sim.Channel`, one bulk transfer
        per chunk, while later chunks are still being dumped.  The sink's
        bounded capacity is the back-pressure: a slow destination disk
        blocks :meth:`Channel.put`, which stops this pump from reading
        the feed, which in turn stalls the dump.

        Failure handling is link-shaped: a :class:`NetworkDown` (outage
        mid-transfer) or :class:`NodeCrashed` (stream torn down at
        either end) is *delivered into the sink* via ``fail`` so the
        consumer observes it at its next ``get``, and the pump exits
        quietly — the migration orchestrator owns retries.  Returns the
        number of chunks shipped.
        """
        shipped = 0
        try:
            while True:
                chunk = yield from reader.get()
                if chunk is CLOSED:
                    sink.close()
                    return shipped
                yield from self.message(chunk.size_mb)
                yield from sink.put(chunk)
                shipped += 1
                if self._metrics is not None:
                    self._metrics.counter(
                        "%s.chunks_shipped" % self._metrics_prefix).inc()
        except Interrupt:
            return shipped
        except (NetworkDown, NodeCrashed) as exc:
            sink.fail(exc)
            return shipped

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def bind_obs(self, metrics: "MetricsRegistry",
                 prefix: str = "net") -> None:
        """Mirror outage/failure counters into a metrics registry."""
        self._metrics = metrics
        self._metrics_prefix = prefix
