"""Simulated LAN: per-hop latency plus shared-link bandwidth.

The paper's testbed connects all machines over 1-Gbps Ethernet.  Customer
operations, syncset propagation, and the snapshot transfer all cross this
network; only the snapshot transfer is large enough for bandwidth to
matter, but modelling it keeps Step 2 honest on big databases.

Two bandwidth models coexist:

* :meth:`Network.message` — the original model: one cluster-wide bulk
  channel that serialises large transfers.  The paper-figure
  experiments run exactly one migration at a time, so this is all they
  need, and the path is kept untouched so their timings stay stable.
* :meth:`Network.bulk_transfer` — the per-link model behind the
  multi-tenant migration scheduler: every node has an egress and an
  ingress :class:`LinkPort`, and concurrent streams crossing the same
  port *split its bandwidth* (processor sharing) instead of each
  getting the full rate.  A stream's instantaneous rate is the minimum
  of its share on the source's egress and the destination's ingress
  port, re-evaluated whenever a stream joins or leaves either port —
  so two tenants migrating over the same source→destination pair each
  see half the link, while migrations between disjoint node pairs do
  not contend at all.  :meth:`Network.pump_chunks` uses this model
  when given a ``route``.

The link can also degrade (see :mod:`repro.faults`): latency spikes and
bandwidth collapse multiply the effective cost of every hop, and a
transient outage (:meth:`Network.fail_link`) surfaces a
:class:`~repro.errors.NetworkDown` to in-flight :meth:`Network.message`
calls -- the transfer was under way when the cable was pulled, so the
caller finds out mid-flight, not at its next send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

from ..errors import NetworkDown, NodeCrashed
from ..sim.events import Event, Interrupt
from ..sim.resources import Resource
from ..sim.sync import CLOSED

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import MetricsRegistry
    from ..sim.core import Environment

#: Residual megabytes below which a shared-link transfer is complete
#: (one thousandth of a byte; guards float accumulation).
_STREAM_EPS = 1e-9


@dataclass
class NetworkSpec:
    """Latency/bandwidth envelope of the cluster LAN."""

    #: One-way message latency (switch + stack), ~0.1 ms on a quiet GbE.
    latency: float = 0.0001
    #: Aggregate link bandwidth in MB/s (1 Gbps ~ 125 MB/s).
    bandwidth_mb_s: float = 125.0
    #: Transfers larger than this are serialised on the shared link.
    bulk_threshold_mb: float = 1.0


class _Stream:
    """One in-flight bulk transfer on the shared-link model."""

    __slots__ = ("size_mb", "remaining_mb", "changed")

    def __init__(self, size_mb: float):
        self.size_mb = size_mb
        self.remaining_mb = size_mb
        #: Event the ports trigger when membership changes; replaced by
        #: the transfer loop on every pacing iteration.
        self.changed: Optional[Event] = None


class LinkPort:
    """One direction of a node's network interface (egress or ingress).

    Concurrent bulk streams crossing the same port split its bandwidth
    equally (processor sharing).  The port does no pacing itself — it
    tracks membership, answers :meth:`share`, and pokes every member's
    ``changed`` event when the population shifts so in-flight transfers
    re-derive their rate.
    """

    def __init__(self, env: "Environment", name: str,
                 bandwidth_mb_s: float):
        self.env = env
        self.name = name
        self.bandwidth_mb_s = bandwidth_mb_s
        self._streams: List[_Stream] = []
        # statistics
        self.transfers = 0
        self.bytes_mb = 0.0
        self.max_streams = 0
        self._busy_time = 0.0
        self._busy_since: Optional[float] = None
        self._gauge: Any = None

    @property
    def active_streams(self) -> int:
        """Number of bulk streams currently crossing this port."""
        return len(self._streams)

    def share(self) -> float:
        """Instantaneous per-stream bandwidth under equal sharing."""
        return self.bandwidth_mb_s / max(1, len(self._streams))

    def utilisation(self, since: float = 0.0) -> float:
        """Fraction of sim time since ``since`` the port moved bytes."""
        busy = self._busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        horizon = self.env.now - since
        return busy / horizon if horizon > 0 else 0.0

    def join(self, stream: _Stream) -> None:
        if not self._streams:
            self._busy_since = self.env.now
        self._streams.append(stream)
        self.transfers += 1
        self.max_streams = max(self.max_streams, len(self._streams))
        if self._gauge is not None:
            self._gauge.set(len(self._streams))
        self.notify(exclude=stream)

    def leave(self, stream: _Stream) -> None:
        self._streams.remove(stream)
        self.bytes_mb += stream.size_mb - stream.remaining_mb
        if not self._streams and self._busy_since is not None:
            self._busy_time += self.env.now - self._busy_since
            self._busy_since = None
        if self._gauge is not None:
            self._gauge.set(len(self._streams))
        self.notify(exclude=stream)

    def notify(self, exclude: Optional[_Stream] = None) -> None:
        """Wake every paced transfer so it recomputes its rate."""
        for member in self._streams:
            if member is exclude:
                continue
            event = member.changed
            if event is not None and not event.triggered:
                event.succeed()


class Network:
    """The cluster LAN; messages share one bulk-transfer channel."""

    def __init__(self, env: "Environment", spec: NetworkSpec | None = None):
        self.env = env
        self.spec = spec or NetworkSpec()
        self._bulk = Resource(env, capacity=1, name="net.bulk")
        # degradation state (see repro.faults): multiplicative so
        # overlapping faults compose instead of clobbering each other
        self.latency_factor = 1.0
        self.bandwidth_factor = 1.0
        self._down_count = 0
        #: While True, a zero-payload :meth:`round_trip` coalesces its
        #: two latency hops into one ``2 * latency`` timeout — the same
        #: arrival time with half the kernel events.  Only valid while
        #: link state cannot change mid-flight, so the fault injector
        #: clears it before arming any network fault (outage or
        #: degradation), restoring the exact per-hop check timing.
        self.coalesce_hops = True
        # statistics
        self.messages = 0
        self.messages_failed = 0
        self.bytes_moved = 0.0
        self.outages = 0
        #: Per-node directional ports for the shared-link model, keyed
        #: by ``(node, "egress"|"ingress")`` and created on first use.
        self._ports: Dict[Tuple[str, str], LinkPort] = {}
        self._metrics: Optional["MetricsRegistry"] = None
        self._metrics_prefix = "net"

    # ------------------------------------------------------------------
    # fault surface
    # ------------------------------------------------------------------

    @property
    def is_down(self) -> bool:
        """True while at least one link outage is active."""
        return self._down_count > 0

    def fail_link(self) -> None:
        """Start an outage; nested outages stack until each is restored."""
        self._down_count += 1
        self.outages += 1
        if self._metrics is not None:
            self._metrics.counter(
                "%s.outages" % self._metrics_prefix).inc()

    def restore_link(self) -> None:
        """End one outage started by :meth:`fail_link`."""
        if self._down_count > 0:
            self._down_count -= 1

    def degrade(self, latency_scale: float = 1.0,
                bandwidth_scale: float = 1.0) -> None:
        """Multiply effective latency / divide effective bandwidth.

        Apply the inverse scale to undo one degradation, or call
        :meth:`restore_quality` to clear everything at once.
        """
        self.latency_factor *= latency_scale
        self.bandwidth_factor *= bandwidth_scale
        self._reprice_streams()

    def restore_quality(self) -> None:
        """Reset latency/bandwidth degradation to the healthy baseline."""
        self.latency_factor = 1.0
        self.bandwidth_factor = 1.0
        self._reprice_streams()

    def _reprice_streams(self) -> None:
        """Make in-flight shared-link transfers re-derive their rate."""
        for port in self._ports.values():
            port.notify()

    def _check_link(self) -> None:
        if self._down_count > 0:
            self.messages_failed += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "%s.messages_failed" % self._metrics_prefix).inc()
            raise NetworkDown("cluster link is down")

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------

    def message(self, size_mb: float = 0.0) -> Generator[Any, Any, None]:
        """One request or response hop.

        Small messages only pay latency; bulk transfers additionally hold
        the shared link for their serialisation time.  Raises
        :class:`NetworkDown` if an outage is active when the hop starts
        *or* begins while the bytes are on the wire.
        """
        self._check_link()
        self.messages += 1
        self.bytes_moved += size_mb * 1e6
        yield self.env.timeout(self.spec.latency * self.latency_factor)
        self._check_link()
        bandwidth = self.spec.bandwidth_mb_s / self.bandwidth_factor
        if size_mb > self.spec.bulk_threshold_mb:
            grant = self._bulk.request()
            try:
                yield grant
                yield self.env.timeout(size_mb / bandwidth)
            finally:
                self._bulk.release(grant)
        elif size_mb > 0:
            yield self.env.timeout(size_mb / bandwidth)
        self._check_link()

    def round_trip(self, request_mb: float = 0.0,
                   response_mb: float = 0.0) -> Generator[Any, Any, None]:
        """A request hop followed by a response hop.

        The common zero-payload case (an operation and its ack) pays
        exactly ``2 * latency`` either way; while :attr:`coalesce_hops`
        holds, it is billed as a single timeout instead of two chained
        hops, halving the event cost of every customer operation.
        """
        if request_mb == 0.0 and response_mb == 0.0 and self.coalesce_hops:
            self._check_link()
            self.messages += 2
            yield self.env.timeout(
                2.0 * self.spec.latency * self.latency_factor)
            self._check_link()
            return
        yield from self.message(request_mb)
        yield from self.message(response_mb)

    # ------------------------------------------------------------------
    # shared-link (per-port processor-sharing) model
    # ------------------------------------------------------------------

    def port(self, node: str, direction: str) -> LinkPort:
        """The named node's :class:`LinkPort` (``egress``/``ingress``).

        Ports are created lazily with the cluster link bandwidth, so a
        node that never takes part in a bulk transfer costs nothing.
        """
        if direction not in ("egress", "ingress"):
            raise ValueError("direction must be egress or ingress, got "
                             "%r" % (direction,))
        key = (node, direction)
        port = self._ports.get(key)
        if port is None:
            port = LinkPort(self.env, "%s.%s" % (node, direction),
                            self.spec.bandwidth_mb_s)
            if self._metrics is not None:
                port._gauge = self._metrics.gauge(
                    "%s.link.%s.streams" % (self._metrics_prefix,
                                            port.name))
            self._ports[key] = port
        return port

    def link_ports(self) -> Dict[str, LinkPort]:
        """Snapshot of all materialised ports, keyed by port name."""
        return {port.name: port for port in self._ports.values()}

    def bulk_transfer(self, source: str, destination: str,
                      size_mb: float) -> Generator[Any, Any, None]:
        """Ship ``size_mb`` from ``source`` to ``destination``.

        Unlike :meth:`message`, which serialises every large transfer on
        one cluster-wide channel, this shares bandwidth per *port*: the
        stream's instantaneous rate is the smaller of its equal share on
        the source's egress port and on the destination's ingress port,
        re-evaluated whenever another stream joins or leaves either port
        (or the link degrades).  Remaining bytes are carried across rate
        changes, so a stream never pays for bandwidth it did not get —
        and never double-pays after an interrupt, because membership is
        torn down in a ``finally``.

        Raises :class:`NetworkDown` under the same outage windows as
        :meth:`message`: at the start, after the latency hop, and at
        completion.
        """
        self._check_link()
        self.messages += 1
        yield self.env.timeout(self.spec.latency * self.latency_factor)
        self._check_link()
        if size_mb > 0:
            egress = self.port(source, "egress")
            ingress = self.port(destination, "ingress")
            stream = _Stream(size_mb)
            egress.join(stream)
            ingress.join(stream)
            try:
                while stream.remaining_mb > _STREAM_EPS:
                    rate = (min(egress.share(), ingress.share())
                            / self.bandwidth_factor)
                    stream.changed = Event(self.env)
                    started = self.env.now
                    done = self.env.timeout(stream.remaining_mb / rate)
                    try:
                        yield self.env.any_of([done, stream.changed])
                    finally:
                        # also runs on Interrupt/close, so a torn-down
                        # stream is still credited for the bytes it
                        # moved in its final partial interval
                        elapsed = self.env.now - started
                        stream.remaining_mb = max(
                            0.0, stream.remaining_mb - elapsed * rate)
                stream.remaining_mb = 0.0  # absorb the epsilon tail
            finally:
                # The single accounting path, crash/interrupt included:
                # the network-wide byte counter moves with the actual
                # bytes the stream carried, never the advertised size —
                # a stream torn down mid-flight (caller interrupt or a
                # node crash unwinding the pump) credits only its
                # partial progress, exactly like the per-port counters
                # credited in leave().
                self.bytes_moved += (stream.size_mb
                                     - stream.remaining_mb) * 1e6
                stream.changed = None
                egress.leave(stream)
                ingress.leave(stream)
        self._check_link()

    def pump_chunks(self, reader: Any, sink: Any,
                    route: Optional[Tuple[str, str]] = None
                    ) -> Generator[Any, Any, int]:
        """Bounded-buffer shipper for the pipelined snapshot path.

        Moves :class:`~repro.engine.dump.SnapshotChunk` objects from a
        :class:`~repro.core.pipeline.ChunkReader` across the link into a
        destination-side :class:`~repro.sim.Channel`, one bulk transfer
        per chunk, while later chunks are still being dumped.  The sink's
        bounded capacity is the back-pressure: a slow destination disk
        blocks :meth:`Channel.put`, which stops this pump from reading
        the feed, which in turn stalls the dump.

        Failure handling is link-shaped: a :class:`NetworkDown` (outage
        mid-transfer) or :class:`NodeCrashed` (stream torn down at
        either end) is *delivered into the sink* via ``fail`` so the
        consumer observes it at its next ``get``, and the pump exits
        quietly — the migration orchestrator owns retries.  Returns the
        number of chunks shipped.

        With ``route=(source, destination)`` each chunk crosses the
        shared-link model (:meth:`bulk_transfer`) and contends with
        other streams on those ports; without it, chunks use the legacy
        cluster-wide channel of :meth:`message`.
        """
        shipped = 0
        try:
            while True:
                chunk = yield from reader.get()
                if chunk is CLOSED:
                    sink.close()
                    return shipped
                if route is not None:
                    yield from self.bulk_transfer(
                        route[0], route[1], chunk.size_mb)
                else:
                    yield from self.message(chunk.size_mb)
                yield from sink.put(chunk)
                shipped += 1
                if self._metrics is not None:
                    self._metrics.counter(
                        "%s.chunks_shipped" % self._metrics_prefix).inc()
        except Interrupt:
            return shipped
        except (NetworkDown, NodeCrashed) as exc:
            sink.fail(exc)
            return shipped

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def bind_obs(self, metrics: "MetricsRegistry",
                 prefix: str = "net") -> None:
        """Mirror outage/failure counters into a metrics registry."""
        self._metrics = metrics
        self._metrics_prefix = prefix
        for port in self._ports.values():
            port._gauge = metrics.gauge(
                "%s.link.%s.streams" % (prefix, port.name))
