"""Simulated LAN: per-hop latency plus shared-link bandwidth.

The paper's testbed connects all machines over 1-Gbps Ethernet.  Customer
operations, syncset propagation, and the snapshot transfer all cross this
network; only the snapshot transfer is large enough for bandwidth to
matter, but modelling it keeps Step 2 honest on big databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from ..sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment


@dataclass
class NetworkSpec:
    """Latency/bandwidth envelope of the cluster LAN."""

    #: One-way message latency (switch + stack), ~0.1 ms on a quiet GbE.
    latency: float = 0.0001
    #: Aggregate link bandwidth in MB/s (1 Gbps ~ 125 MB/s).
    bandwidth_mb_s: float = 125.0
    #: Transfers larger than this are serialised on the shared link.
    bulk_threshold_mb: float = 1.0


class Network:
    """The cluster LAN; messages share one bulk-transfer channel."""

    def __init__(self, env: "Environment", spec: NetworkSpec | None = None):
        self.env = env
        self.spec = spec or NetworkSpec()
        self._bulk = Resource(env, capacity=1, name="net.bulk")
        # statistics
        self.messages = 0
        self.bytes_moved = 0.0

    def message(self, size_mb: float = 0.0) -> Generator[Any, Any, None]:
        """One request or response hop.

        Small messages only pay latency; bulk transfers additionally hold
        the shared link for their serialisation time.
        """
        self.messages += 1
        self.bytes_moved += size_mb * 1e6
        yield self.env.timeout(self.spec.latency)
        if size_mb > self.spec.bulk_threshold_mb:
            grant = self._bulk.request()
            yield grant
            yield self.env.timeout(size_mb / self.spec.bandwidth_mb_s)
            self._bulk.release(grant)
        elif size_mb > 0:
            yield self.env.timeout(size_mb / self.spec.bandwidth_mb_s)

    def round_trip(self, request_mb: float = 0.0,
                   response_mb: float = 0.0) -> Generator[Any, Any, None]:
        """A request hop followed by a response hop."""
        yield from self.message(request_mb)
        yield from self.message(response_mb)
