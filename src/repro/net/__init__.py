"""Simulated cluster network (1-GbE-style LAN)."""

from .network import LinkPort, Network, NetworkSpec

__all__ = ["LinkPort", "Network", "NetworkSpec"]
