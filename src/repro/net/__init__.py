"""Simulated cluster network (1-GbE-style LAN)."""

from .network import Network, NetworkSpec

__all__ = ["Network", "NetworkSpec"]
