"""Counters, gauges, and histograms behind one registry.

The :class:`MetricsRegistry` is the structured replacement for the
ad-hoc stat dataclasses scattered through the stack
(:class:`~repro.core.propagation.PropagationStats`, the executor/WAL
counters on :class:`~repro.engine.instance.DbmsInstance` and
:class:`~repro.engine.wal.WalWriter`): those dataclasses stay for
backwards compatibility, and :meth:`MetricsRegistry.absorb` mirrors
them into named instruments so they reach the trace export alongside
the live-instrumented values.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable record (the ``metric`` line of the JSONL)."""
        return {"type": "metric", "kind": "counter", "name": self.name,
                "value": self.value}


class Gauge:
    """A value that can move both ways; tracks its high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0
        self.max_value: float = 0

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1) -> None:
        """Adjust the current value by ``amount``."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        """Adjust the current value by ``-amount``."""
        self.set(self.value - amount)

    def reset(self) -> None:
        """Zero the value and the high-water mark."""
        self.value = 0
        self.max_value = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable record (the ``metric`` line of the JSONL)."""
        return {"type": "metric", "kind": "gauge", "name": self.name,
                "value": self.value, "max": self.max_value}


class Histogram:
    """Streaming summary of an observed distribution (count/sum/min/max)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0.0 when empty)."""
        if not self.count:
            return 0.0
        return self.total / self.count

    def reset(self) -> None:
        """Forget every sample."""
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable record (the ``metric`` line of the JSONL)."""
        return {"type": "metric", "kind": "histogram", "name": self.name,
                "count": self.count, "sum": self.total, "min": self.min,
                "max": self.max, "mean": self.mean}


class QuantileHistogram(Histogram):
    """A histogram that keeps its samples for exact quantiles.

    The streaming :class:`Histogram` deliberately stores only
    count/sum/min/max; per-request *downtime* distributions need tail
    percentiles (the paper's service-interruption argument rests on
    what the worst requests saw, not on the mean), so this subclass
    retains every observation.  Intended for bounded sample counts —
    one observation per blocked client request, not per simulated
    packet.
    """

    __slots__ = ("samples",)

    def __init__(self, name: str):
        super().__init__(name)
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample, retaining it for quantile queries."""
        super().observe(value)
        self.samples.append(value)

    def quantile(self, q: float) -> float:
        """Exact q-quantile (nearest-rank) of the samples; 0.0 if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile %r outside [0, 1]" % (q,))
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def reset(self) -> None:
        """Forget every sample."""
        super().reset()
        self.samples = []

    def to_dict(self) -> Dict[str, Any]:
        """JSON record: the streaming summary plus tail percentiles."""
        record = super().to_dict()
        record["kind"] = "quantile_histogram"
        record["p50"] = self.quantile(0.50)
        record["p90"] = self.quantile(0.90)
        record["p99"] = self.quantile(0.99)
        return record


class MetricsRegistry:
    """Named instruments, created on first use.

    Names are dotted paths (``wal.node1.flushes``,
    ``propagation.rounds``); one name is always one instrument kind —
    asking for an existing name with a different kind raises.
    """

    def __init__(self):
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, cls: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError("metric %r is a %s, not a %s"
                            % (name, type(instrument).__name__,
                               cls.__name__))
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram)

    def quantile_histogram(self, name: str) -> QuantileHistogram:
        """Get or create the sample-retaining histogram ``name``."""
        return self._get(name, QuantileHistogram)

    # ------------------------------------------------------------------
    def absorb(self, prefix: str, stats: Any) -> None:
        """Mirror a stats dataclass (or mapping) into gauges.

        Each numeric field becomes the gauge ``<prefix>.<field>`` set to
        the field's current value, so repeated calls track a cumulative
        dataclass without double counting.
        """
        if is_dataclass(stats) and not isinstance(stats, type):
            items = [(f.name, getattr(stats, f.name))
                     for f in fields(stats)]
        elif isinstance(stats, dict):
            items = list(stats.items())
        else:
            raise TypeError("cannot absorb %r" % (stats,))
        for key, value in items:
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            self.gauge("%s.%s" % (prefix, key)).set(value)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Every instrument name, sorted."""
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Any]:
        """The instrument called ``name``, if it exists."""
        return self._instruments.get(name)

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time flat ``{name: value}`` mapping.

        The stable read API (with :meth:`gauge_value`) for code built on
        top of the registry — the LoadWatcher, dashboards, tests —
        instead of reaching into instrument internals.  Counters and
        gauges contribute their current value; histograms contribute
        their mean.  The full per-instrument records (high-water marks,
        sample counts) stay available via :meth:`get` /
        ``instrument.to_dict()`` and the trace export.
        """
        flat: Dict[str, float] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                flat[name] = instrument.mean
            else:
                flat[name] = instrument.value
        return flat

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """The current value of ``name``, or ``default`` when absent.

        Reads any instrument that carries a point value (gauges and
        counters); a histogram — which has no single current value —
        also yields ``default``.  Never creates the instrument, so
        sampling loops can probe names that may not exist yet without
        polluting the registry.
        """
        instrument = self._instruments.get(name)
        if instrument is None or isinstance(instrument, Histogram):
            return default
        return instrument.value

    def reset(self) -> None:
        """Reset every instrument in place (handles stay valid)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments
