"""Span-based tracing against the simulated clock.

A :class:`Tracer` records *spans* (named intervals with attributes and
parent links) and *events* (named instants) against any clock — normally
a :class:`~repro.sim.core.Environment`, so every timestamp is simulated
time and traces are exactly reproducible for a fixed seed.

Spans come in kinds:

``migration``
    one end-to-end live migration (the root of a phase tree);
``phase``
    one migration step — ``dump``, ``restore``, ``catch-up``,
    ``handover`` — always a child of a ``migration`` span;
``round``
    one conductor propagation round (Algorithm 4);
``fault``
    one injected fault's active window, from injection to recovery (an
    open end means the fault never healed within the run);
``span``
    anything else.

Simulation code is generator-based, so the primary API is explicit
``start()`` / ``finish()``; a ``span()`` context manager exists for
synchronous sections (setup, export, analysis).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

#: Span kinds with dedicated rendering in the timeline view.
MIGRATION = "migration"
PHASE = "phase"
ROUND = "round"
#: One injected fault's active window (open end = never recovered).
FAULT = "fault"
SPAN = "span"

#: The canonical migration phase names, in lifecycle order.
PHASE_ORDER = ("dump", "restore", "catch-up", "handover")


class Span:
    """One named interval; ``end`` stays ``None`` while the span is open."""

    __slots__ = ("span_id", "name", "kind", "start", "end", "parent_id",
                 "attrs")

    def __init__(self, span_id: int, name: str, kind: str, start: float,
                 parent_id: Optional[int] = None,
                 attrs: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs or {})

    @property
    def open(self) -> bool:
        """Whether the span has not been finished yet."""
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        """Span length in simulated seconds (``None`` while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable record (the ``span`` line of the JSONL)."""
        return {"type": "span", "id": self.span_id, "name": self.name,
                "kind": self.kind, "start": self.start, "end": self.end,
                "parent": self.parent_id, "attrs": self.attrs}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return ("Span(%d, %r, kind=%r, start=%r, end=%r)"
                % (self.span_id, self.name, self.kind, self.start,
                   self.end))


class TraceEvent:
    """One named instant with attributes."""

    __slots__ = ("time", "name", "attrs")

    def __init__(self, time: float, name: str,
                 attrs: Optional[Dict[str, Any]] = None):
        self.time = time
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs or {})

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable record (the ``event`` line of the JSONL)."""
        return {"type": "event", "time": self.time, "name": self.name,
                "attrs": self.attrs}


class Tracer:
    """Records spans and events against a clock.

    ``clock`` is either an object with a ``now`` attribute (the
    simulation :class:`~repro.sim.core.Environment`) or a zero-argument
    callable returning the current time.

    ``max_records`` bounds memory under pathological workloads: once the
    combined span+event count reaches it, further records are counted in
    :attr:`dropped` instead of stored (finishing already-open spans still
    works).
    """

    def __init__(self, clock: Union[Callable[[], float], Any],
                 max_records: int = 200000):
        if callable(clock):
            self._clock = clock
        else:
            self._clock = lambda: clock.now
        self.max_records = max_records
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._next_id = 1

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The tracer's current clock reading."""
        return self._clock()

    def _full(self) -> bool:
        return len(self.spans) + len(self.events) >= self.max_records

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def start(self, name: str, kind: str = SPAN,
              parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Open a span at the current clock reading."""
        span = Span(self._next_id, name, kind, self._clock(),
                    parent_id=parent.span_id if parent is not None
                    else None,
                    attrs=attrs)
        self._next_id += 1
        if self._full():
            self.dropped += 1
        else:
            self.spans.append(span)
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        """Close a span at the current clock reading, merging ``attrs``."""
        if span.end is None:
            span.end = self._clock()
        span.attrs.update(attrs)
        return span

    def phase(self, name: str, parent: Optional[Span] = None,
              **attrs: Any) -> Span:
        """Open a migration-phase span."""
        return self.start(name, kind=PHASE, parent=parent, **attrs)

    @contextmanager
    def span(self, name: str, kind: str = SPAN,
             parent: Optional[Span] = None,
             **attrs: Any) -> Iterator[Span]:
        """Context manager for synchronous (non-yielding) sections."""
        span = self.start(name, kind=kind, parent=parent, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> TraceEvent:
        """Record an instantaneous event."""
        event = TraceEvent(self._clock(), name, attrs)
        if self._full():
            self.dropped += 1
        else:
            self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def find(self, name: Optional[str] = None,
             kind: Optional[str] = None,
             parent: Optional[Span] = None) -> List[Span]:
        """Spans matching every given criterion, in start order."""
        matches = []
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if kind is not None and span.kind != kind:
                continue
            if parent is not None and span.parent_id != parent.span_id:
                continue
            matches.append(span)
        matches.sort(key=lambda s: (s.start, s.span_id))
        return matches

    def phases(self, parent: Optional[Span] = None) -> List[Span]:
        """All phase spans (optionally under one migration)."""
        return self.find(kind=PHASE, parent=parent)

    def children(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in start order."""
        return self.find(parent=span)

    def clear(self) -> None:
        """Drop every recorded span and event (span ids keep counting)."""
        self.spans.clear()
        self.events.clear()
        self.dropped = 0


def check_phase_order(spans: List[Span]) -> List[str]:
    """Validate migration phase spans; returns human-readable problems.

    For each migration (grouped by ``parent_id``) the phases present must
    appear in :data:`PHASE_ORDER`, each phase must be finished with a
    non-negative duration, and each phase must start no earlier than its
    predecessor ended.  An empty return value means the trace is clean.

    Pipelined exception: consecutive phases that both carry a truthy
    ``pipelined`` attribute (dump/restore on the streamed snapshot path)
    are *expected* to overlap — start order is still enforced, the
    no-overlap rule is waived for exactly that pair.
    """
    problems: List[str] = []
    groups: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        if span.kind == PHASE:
            groups.setdefault(span.parent_id, []).append(span)
    if not groups:
        return ["no phase spans found"]
    rank = {name: index for index, name in enumerate(PHASE_ORDER)}
    for parent_id, phases in sorted(groups.items(),
                                    key=lambda item: item[0] or -1):
        phases.sort(key=lambda s: (s.start, s.span_id))
        label = ("migration %s" % parent_id if parent_id is not None
                 else "orphan phases")
        previous: Optional[Span] = None
        for phase in phases:
            if phase.name not in rank:
                problems.append("%s: unknown phase %r"
                                % (label, phase.name))
                continue
            if phase.end is None:
                problems.append("%s: phase %r never finished"
                                % (label, phase.name))
                continue
            if phase.duration is not None and phase.duration < 0:
                problems.append("%s: phase %r has negative duration"
                                % (label, phase.name))
            if previous is not None:
                if rank[phase.name] <= rank[previous.name]:
                    problems.append(
                        "%s: phase %r started after %r (expected order: "
                        "%s)" % (label, previous.name, phase.name,
                                 " -> ".join(PHASE_ORDER)))
                overlap_ok = (phase.attrs.get("pipelined")
                              and previous.attrs.get("pipelined"))
                if (previous.end is not None
                        and phase.start < previous.end
                        and not overlap_ok):
                    problems.append(
                        "%s: phase %r started at %g before %r ended "
                        "at %g" % (label, phase.name, phase.start,
                                   previous.name, previous.end))
            previous = phase
    return problems
