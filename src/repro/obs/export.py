"""JSON-lines trace export and import.

One ``trace.jsonl`` file carries a whole run: a ``meta`` line, one
``span`` line per span, one ``event`` line per event, and one ``metric``
line per instrument.  The format is append-friendly, greppable, and —
because every timestamp is simulated time — byte-stable across runs for
a fixed seed (modulo the metadata the caller chooses to embed).

The reader is forgiving: unknown record types and trailing blank lines
are skipped, so the format can grow fields without breaking old tools.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, TextIO, Union

from .metrics import MetricsRegistry
from .trace import Span, TraceEvent, Tracer

#: Format version stamped into the meta line.
FORMAT_VERSION = 1


def trace_records(tracer: Tracer,
                  metrics: Optional[MetricsRegistry] = None,
                  meta: Optional[Dict[str, Any]] = None
                  ) -> Iterable[Dict[str, Any]]:
    """Yield every record of a trace, meta line first."""
    header: Dict[str, Any] = {"type": "meta", "version": FORMAT_VERSION,
                              "clock": "sim"}
    if tracer.dropped:
        header["dropped"] = tracer.dropped
    if meta:
        header.update(meta)
    yield header
    for span in sorted(tracer.spans, key=lambda s: (s.start, s.span_id)):
        yield span.to_dict()
    for event in sorted(tracer.events, key=lambda e: e.time):
        yield event.to_dict()
    if metrics is not None:
        for name in metrics.names():
            yield metrics.get(name).to_dict()


def write_trace(path_or_file: Union[str, TextIO], tracer: Tracer,
                metrics: Optional[MetricsRegistry] = None,
                meta: Optional[Dict[str, Any]] = None) -> int:
    """Write a trace as JSON lines; returns the record count."""
    count = 0
    if hasattr(path_or_file, "write"):
        for record in trace_records(tracer, metrics, meta):
            path_or_file.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
        return count
    with open(path_or_file, "w") as handle:
        for record in trace_records(tracer, metrics, meta):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


@dataclass
class TraceData:
    """A parsed ``trace.jsonl``."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    #: Metric records by name (plain dicts, as exported).
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def find_spans(self, name: Optional[str] = None,
                   kind: Optional[str] = None) -> List[Span]:
        """Spans matching the given criteria, in start order."""
        matches = [s for s in self.spans
                   if (name is None or s.name == name)
                   and (kind is None or s.kind == kind)]
        matches.sort(key=lambda s: (s.start, s.span_id))
        return matches

    def metric_value(self, name: str,
                     key: str = "value") -> Optional[float]:
        """One field of one metric record, or ``None`` if absent."""
        record = self.metrics.get(name)
        if record is None:
            return None
        return record.get(key)


def _span_from_dict(record: Dict[str, Any]) -> Span:
    span = Span(int(record["id"]), record["name"],
                record.get("kind", "span"), float(record["start"]),
                parent_id=record.get("parent"),
                attrs=record.get("attrs") or {})
    end = record.get("end")
    span.end = float(end) if end is not None else None
    return span


def read_trace(path_or_file: Union[str, TextIO]) -> TraceData:
    """Parse a ``trace.jsonl`` back into spans, events, and metrics."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file) as handle:
            lines = handle.read().splitlines()
    data = TraceData()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        record_type = record.get("type")
        if record_type == "meta":
            data.meta.update({k: v for k, v in record.items()
                              if k != "type"})
        elif record_type == "span":
            data.spans.append(_span_from_dict(record))
        elif record_type == "event":
            data.events.append(TraceEvent(float(record["time"]),
                                          record["name"],
                                          record.get("attrs") or {}))
        elif record_type == "metric":
            data.metrics[record["name"]] = record
        # unknown record types are skipped (forward compatibility)
    data.spans.sort(key=lambda s: (s.start, s.span_id))
    data.events.sort(key=lambda e: e.time)
    return data
