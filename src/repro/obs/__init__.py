"""Observability: span tracing, metrics, JSONL export, timeline views.

The subsystem is deliberately tiny and dependency-free:

* :class:`Tracer` records spans (phases, propagation rounds) and events
  against the simulated clock;
* :class:`MetricsRegistry` holds counters/gauges/histograms and absorbs
  the legacy stat dataclasses;
* :func:`write_trace` / :func:`read_trace` round-trip everything through
  a ``trace.jsonl`` file;
* :mod:`repro.obs.timeline` renders parsed traces for ``repro trace``.
"""

from .export import (
    FORMAT_VERSION,
    TraceData,
    read_trace,
    trace_records,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    MIGRATION,
    PHASE,
    PHASE_ORDER,
    ROUND,
    SPAN,
    Span,
    TraceEvent,
    Tracer,
    check_phase_order,
)

__all__ = ["Counter", "FORMAT_VERSION", "Gauge", "Histogram",
           "MetricsRegistry", "MIGRATION", "PHASE", "PHASE_ORDER",
           "ROUND", "SPAN", "Span", "TraceData", "TraceEvent", "Tracer",
           "check_phase_order", "read_trace", "trace_records",
           "write_trace"]
