"""Render a trace as a phase timeline and summary tables.

Used by the ``repro trace`` CLI subcommand and by tests; everything
returns plain strings built on the same fixed-width table helpers the
experiment reports use, so trace output stays machine-greppable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..metrics.report import format_table
from .export import TraceData
from .trace import MIGRATION, PHASE, ROUND, Span

#: Width of the ASCII gantt bars.
BAR_WIDTH = 48


def _bar(span: Span, t0: float, t1: float, width: int) -> str:
    """An ASCII gantt bar for ``span`` over the window [t0, t1]."""
    window = (t1 - t0) or 1.0
    end = span.end if span.end is not None else t1
    left = int((span.start - t0) / window * width)
    right = max(left + 1, int((end - t0) / window * width))
    left = min(left, width - 1)
    right = min(right, width)
    return (" " * left + "#" * (right - left)
            + " " * (width - right))


def render_timeline(data: TraceData, width: int = BAR_WIDTH) -> str:
    """The migration/phase spans as an ASCII gantt chart."""
    bars = [s for s in data.spans if s.kind in (MIGRATION, PHASE)]
    if not bars:
        return "(no migration or phase spans in this trace)"
    t0 = min(s.start for s in bars)
    t1 = max(s.end if s.end is not None else s.start for s in bars)
    lines = ["phase timeline  (window %.3f s .. %.3f s)" % (t0, t1)]
    for span in bars:
        label = span.name if span.kind == PHASE else "[%s]" % span.name
        duration = ("%10.3f" % span.duration
                    if span.duration is not None else "      open")
        lines.append("  %-12s |%s| %s s"
                     % (label, _bar(span, t0, t1, width), duration))
    return "\n".join(lines)


def render_phase_table(data: TraceData) -> str:
    """Start/end/duration of every phase span, with attributes."""
    rows: List[List[Any]] = []
    for span in data.find_spans(kind=PHASE):
        rows.append([span.name, span.start, span.end, span.duration,
                     _format_attrs(span.attrs)])
    if not rows:
        return "(no phase spans)"
    return format_table(
        ["phase", "start [s]", "end [s]", "duration [s]", "attributes"],
        rows, title="migration phases")


def render_span_summary(data: TraceData) -> str:
    """Per-(kind, name) span counts and total duration."""
    groups: Dict[Any, List[Span]] = {}
    for span in data.spans:
        groups.setdefault((span.kind, span.name), []).append(span)
    rows = []
    for (kind, name), spans in sorted(groups.items()):
        closed = [s.duration for s in spans if s.duration is not None]
        rows.append([kind, name, len(spans),
                     sum(closed) if closed else 0.0,
                     (sum(closed) / len(closed)) if closed else 0.0])
    if not rows:
        return "(no spans)"
    return format_table(
        ["kind", "name", "count", "total [s]", "mean [s]"],
        rows, title="span summary")


def render_metrics_table(data: TraceData) -> str:
    """Every exported metric as one row."""
    rows = []
    for name in sorted(data.metrics):
        record = data.metrics[name]
        kind = record.get("kind", "?")
        if kind == "histogram":
            detail = ("count=%s mean=%.3g min=%s max=%s"
                      % (record.get("count"), record.get("mean") or 0.0,
                         record.get("min"), record.get("max")))
            value: Any = record.get("sum")
        elif kind == "quantile_histogram":
            detail = ("count=%s p50=%.3g p90=%.3g p99=%.3g max=%.3g"
                      % (record.get("count"), record.get("p50") or 0.0,
                         record.get("p90") or 0.0,
                         record.get("p99") or 0.0,
                         record.get("max") or 0.0))
            value = record.get("sum")
        elif kind == "gauge":
            detail = "max=%s" % record.get("max")
            value = record.get("value")
        else:
            detail = ""
            value = record.get("value")
        rows.append([name, kind, value, detail])
    if not rows:
        return "(no metrics)"
    return format_table(["metric", "kind", "value", "detail"], rows,
                        title="metrics")


def render_round_summary(data: TraceData) -> str:
    """One line summarising the conductor rounds, if any."""
    rounds = data.find_spans(kind=ROUND)
    if not rounds:
        return "(no propagation rounds recorded)"
    closed = [s.duration for s in rounds if s.duration is not None]
    groups = [s.attrs.get("group", 0) for s in rounds]
    return ("propagation rounds: %d  (mean length %.4f s, "
            "mean group size %.2f, max group %d)"
            % (len(rounds),
               (sum(closed) / len(closed)) if closed else 0.0,
               (sum(groups) / len(groups)) if groups else 0.0,
               max(groups) if groups else 0))


def render_report(data: TraceData,
                  source: Optional[str] = None) -> str:
    """The full ``repro trace`` report for one parsed trace."""
    parts: List[str] = []
    if source:
        parts.append("trace: %s" % source)
    if data.meta:
        interesting = {k: v for k, v in data.meta.items()
                       if k not in ("version", "clock")}
        if interesting:
            parts.append("meta: " + ", ".join(
                "%s=%s" % (k, v) for k, v in sorted(interesting.items())))
    parts.append("")
    parts.append(render_timeline(data))
    parts.append("")
    parts.append(render_phase_table(data))
    parts.append("")
    parts.append(render_round_summary(data))
    parts.append("")
    parts.append(render_span_summary(data))
    parts.append("")
    parts.append(render_metrics_table(data))
    return "\n".join(parts)


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    return " ".join("%s=%s" % (key, _short(value))
                    for key, value in sorted(attrs.items()))


def _short(value: Any) -> str:
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)
