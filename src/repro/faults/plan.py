"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of named :class:`FaultSpec`
records — *what* breaks, *where*, *when*, and for *how long* — that the
:class:`~repro.faults.injector.FaultInjector` schedules on the simulated
clock.  Keeping the plan declarative (and JSON round-trippable) makes
chaos scenarios seedable, diffable, and replayable: the same plan plus
the same workload seed reproduces the same run exactly.

Fault kinds
-----------

``crash``
    Kill the DBMS instance on ``target`` at a statement boundary; with
    ``duration > 0`` it restarts after WAL-replay recovery.
``link_down``
    Transient cluster-link outage for ``duration`` seconds; in-flight
    and new :meth:`Network.message` calls raise ``NetworkDown``.
``latency``
    Multiply the one-way network latency by ``factor`` for ``duration``.
``bandwidth``
    Divide the network bandwidth by ``factor`` for ``duration``
    (bandwidth collapse).
``disk_stall``
    Occupy the disk head of ``target`` for ``duration`` seconds (queued
    I/O waits; nothing errors).

``at`` is an offset in simulated seconds — from injector start when
``phase`` is ``None``, otherwise from the moment the named migration
phase (``dump`` / ``restore`` / ``catch-up`` / ``handover``) first opens.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional

CRASH = "crash"
LINK_DOWN = "link_down"
LATENCY = "latency"
BANDWIDTH = "bandwidth"
DISK_STALL = "disk_stall"

#: Every fault kind the injector knows how to schedule.
FAULT_KINDS = (CRASH, LINK_DOWN, LATENCY, BANDWIDTH, DISK_STALL)

#: Kinds that hit one node (and therefore require a ``target``).
NODE_KINDS = (CRASH, DISK_STALL)

#: The phase names a spec may anchor to (repro.obs.trace.PHASE_ORDER).
PHASES = ("dump", "restore", "catch-up", "handover")


@dataclass(frozen=True)
class FaultSpec:
    """One named fault to inject."""

    name: str
    kind: str
    #: Offset in simulated seconds (from injector start / phase open).
    at: float = 0.0
    #: Node name for node faults; ignored by network faults.
    target: str = ""
    #: Outage / downtime / stall length; 0 means permanent for ``crash``
    #: and ``link_down`` (never recovered within the run).
    duration: float = 0.0
    #: Degradation severity: latency multiplier or bandwidth divisor.
    factor: float = 10.0
    #: Arm when this migration phase opens instead of at absolute time.
    phase: Optional[str] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on a malformed spec."""
        if not self.name:
            raise ValueError("fault needs a non-empty name")
        if self.kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (one of %s)"
                             % (self.kind, ", ".join(FAULT_KINDS)))
        if self.kind in NODE_KINDS and not self.target:
            raise ValueError("fault %r (%s) needs a target node"
                             % (self.name, self.kind))
        if self.at < 0:
            raise ValueError("fault %r: negative offset %r"
                             % (self.name, self.at))
        if self.duration < 0:
            raise ValueError("fault %r: negative duration %r"
                             % (self.name, self.duration))
        if self.kind in (LATENCY, BANDWIDTH) and self.factor <= 0:
            raise ValueError("fault %r: factor must be positive"
                             % self.name)
        if self.kind == DISK_STALL and self.duration <= 0:
            raise ValueError("fault %r: a disk stall needs a positive "
                             "duration" % self.name)
        if self.phase is not None and self.phase not in PHASES:
            raise ValueError("fault %r: unknown phase %r (one of %s)"
                             % (self.name, self.phase, ", ".join(PHASES)))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable record."""
        return asdict(self)


@dataclass
class FaultPlan:
    """An ordered, validated collection of faults."""

    faults: List[FaultSpec] = field(default_factory=list)

    def add(self, name: str, kind: str, **kwargs: Any) -> FaultSpec:
        """Append a new spec (validated immediately) and return it."""
        spec = FaultSpec(name=name, kind=kind, **kwargs)
        spec.validate()
        self.faults.append(spec)
        return spec

    def validate(self) -> None:
        """Validate every spec and reject duplicate fault names."""
        seen = set()
        for spec in self.faults:
            spec.validate()
            if spec.name in seen:
                raise ValueError("duplicate fault name %r" % spec.name)
            seen.add(spec.name)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The plan as plain records (for JSON export / logging)."""
        return [spec.to_dict() for spec in self.faults]

    @classmethod
    def from_dicts(cls, records: Iterable[Dict[str, Any]]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dicts` output."""
        plan = cls([FaultSpec(**record) for record in records])
        plan.validate()
        return plan

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)
