"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of named :class:`FaultSpec`
records — *what* breaks, *where*, *when*, and for *how long* — that the
:class:`~repro.faults.injector.FaultInjector` schedules on the simulated
clock.  Keeping the plan declarative (and JSON round-trippable) makes
chaos scenarios seedable, diffable, and replayable: the same plan plus
the same workload seed reproduces the same run exactly.

Fault kinds
-----------

``crash``
    Kill the DBMS instance on ``target`` at a statement boundary; with
    ``duration > 0`` it restarts after WAL-replay recovery.
``link_down``
    Transient cluster-link outage for ``duration`` seconds; in-flight
    and new :meth:`Network.message` calls raise ``NetworkDown``.
``latency``
    Multiply the one-way network latency by ``factor`` for ``duration``.
``bandwidth``
    Divide the network bandwidth by ``factor`` for ``duration``
    (bandwidth collapse).
``disk_stall``
    Occupy the disk head of ``target`` for ``duration`` seconds (queued
    I/O waits; nothing errors).
``router_crash``
    Kill the router shard named ``target``: parked and in-flight client
    requests fail with unknown outcome and clients reconnect to a
    surviving shard; with ``duration > 0`` the shard restarts (empty,
    cold routing cache) after ``duration`` seconds.

``at`` is an offset in simulated seconds — from injector start when
``phase`` is ``None``, otherwise from the moment the named migration
phase (``dump`` / ``restore`` / ``catch-up`` / ``handover``) first opens.

Overlapping and chained faults
------------------------------

A plan may compose any number of concurrent faults; each spec arms
independently, so two specs with overlapping windows simply overlap
(e.g. a ``link_down`` on the ship route *while* a standby crashes).
``after`` chains a spec to another fault in the same plan: the spec
waits until the named fault is *injected* — or, with
``after_event="recovered"``, until it has *healed* — before its own
``at`` offset starts counting.  That expresses fault-during-recovery
races ("crash the destination the moment the network outage ends")
declaratively, and :class:`FaultPlan.validate` rejects unknown
references, cycles, and waits on a recovery that can never happen
(a permanent fault).  Trigger ordering stays deterministic: the
injector arms specs in a seedable order and every trigger is a
simulation event, so the same plan + seed replays identically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Iterable, List, Optional

CRASH = "crash"
LINK_DOWN = "link_down"
LATENCY = "latency"
BANDWIDTH = "bandwidth"
DISK_STALL = "disk_stall"
ROUTER_CRASH = "router_crash"

#: Every fault kind the injector knows how to schedule.
FAULT_KINDS = (CRASH, LINK_DOWN, LATENCY, BANDWIDTH, DISK_STALL,
               ROUTER_CRASH)

#: Kinds that hit one node (and therefore require a ``target``).
NODE_KINDS = (CRASH, DISK_STALL)

#: Kinds whose ``target`` names a router shard instead of a node.
ROUTER_KINDS = (ROUTER_CRASH,)

#: The phase names a spec may anchor to (repro.obs.trace.PHASE_ORDER).
PHASES = ("dump", "restore", "catch-up", "handover")

#: Lifecycle moments of another fault a spec may chain to via ``after``.
AFTER_EVENTS = ("injected", "recovered")


@dataclass(frozen=True)
class FaultSpec:
    """One named fault to inject."""

    name: str
    kind: str
    #: Offset in simulated seconds (from injector start / phase open).
    at: float = 0.0
    #: Node name for node faults; ignored by network faults.
    target: str = ""
    #: Outage / downtime / stall length; 0 means permanent for ``crash``
    #: and ``link_down`` (never recovered within the run).
    duration: float = 0.0
    #: Degradation severity: latency multiplier or bandwidth divisor.
    factor: float = 10.0
    #: Arm when this migration phase opens instead of at absolute time.
    phase: Optional[str] = None
    #: Chain to another fault in the plan: wait until that fault fires
    #: (or heals, with ``after_event="recovered"``) before ``at`` runs.
    after: Optional[str] = None
    #: Which lifecycle moment of ``after`` to wait for.
    after_event: str = "injected"

    @property
    def permanent(self) -> bool:
        """Whether this fault never heals within the run.

        Disk stalls always end (their validation requires a positive
        duration); every other kind with ``duration == 0`` holds for
        the rest of the run and never emits ``fault.recovered``.
        """
        return self.kind != DISK_STALL and self.duration == 0

    def validate(self) -> None:
        """Raise ``ValueError`` on a malformed spec."""
        if not self.name:
            raise ValueError("fault needs a non-empty name")
        if self.kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (one of %s)"
                             % (self.kind, ", ".join(FAULT_KINDS)))
        if self.kind in NODE_KINDS and not self.target:
            raise ValueError("fault %r (%s) needs a target node"
                             % (self.name, self.kind))
        if self.kind in ROUTER_KINDS and not self.target:
            raise ValueError("fault %r (%s) needs a target router shard"
                             % (self.name, self.kind))
        if self.at < 0:
            raise ValueError("fault %r: negative offset %r"
                             % (self.name, self.at))
        if self.duration < 0:
            raise ValueError("fault %r: negative duration %r"
                             % (self.name, self.duration))
        if self.kind in (LATENCY, BANDWIDTH) and self.factor <= 0:
            raise ValueError("fault %r: factor must be positive"
                             % self.name)
        if self.kind == DISK_STALL and self.duration <= 0:
            raise ValueError("fault %r: a disk stall needs a positive "
                             "duration" % self.name)
        if self.phase is not None and self.phase not in PHASES:
            raise ValueError("fault %r: unknown phase %r (one of %s)"
                             % (self.name, self.phase, ", ".join(PHASES)))
        if self.after_event not in AFTER_EVENTS:
            raise ValueError(
                "fault %r: unknown after_event %r (one of %s)"
                % (self.name, self.after_event, ", ".join(AFTER_EVENTS)))
        if self.after is not None and self.after == self.name:
            raise ValueError("fault %r cannot chain to itself"
                             % self.name)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable record."""
        return asdict(self)


@dataclass
class FaultPlan:
    """An ordered, validated collection of faults."""

    faults: List[FaultSpec] = field(default_factory=list)

    def add(self, name: str, kind: str, **kwargs: Any) -> FaultSpec:
        """Append a new spec (validated immediately) and return it."""
        spec = FaultSpec(name=name, kind=kind, **kwargs)
        spec.validate()
        self.faults.append(spec)
        return spec

    def validate(self) -> None:
        """Validate every spec and the ``after`` dependency graph.

        Beyond per-spec validation and duplicate names, this rejects
        chains that can never fire: references to unknown faults,
        dependency cycles, and ``after_event="recovered"`` waits on a
        permanent fault (one that never heals).
        """
        by_name: Dict[str, FaultSpec] = {}
        for spec in self.faults:
            spec.validate()
            if spec.name in by_name:
                raise ValueError("duplicate fault name %r" % spec.name)
            by_name[spec.name] = spec
        for spec in self.faults:
            if spec.after is None:
                continue
            upstream = by_name.get(spec.after)
            if upstream is None:
                raise ValueError(
                    "fault %r chains after unknown fault %r"
                    % (spec.name, spec.after))
            if spec.after_event == "recovered" and upstream.permanent:
                raise ValueError(
                    "fault %r waits for recovery of %r, which is "
                    "permanent and never recovers"
                    % (spec.name, spec.after))
        # Cycle check: follow the (single-parent) ``after`` links.
        for spec in self.faults:
            slow = spec
            visited = {spec.name}
            while slow.after is not None:
                slow = by_name[slow.after]
                if slow.name in visited:
                    raise ValueError(
                        "fault dependency cycle through %r" % slow.name)
                visited.add(slow.name)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The plan as plain records (for JSON export / logging)."""
        return [spec.to_dict() for spec in self.faults]

    @classmethod
    def from_dicts(cls, records: Iterable[Dict[str, Any]]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dicts` output.

        A record with keys :class:`FaultSpec` does not know raises a
        named ``ValueError`` (not a bare dataclass ``TypeError``), so a
        typo in a hand-written plan points at the offending fault.
        """
        known = {f.name for f in fields(FaultSpec)}
        specs = []
        for record in records:
            unknown = sorted(set(record) - known)
            if unknown:
                raise ValueError(
                    "fault %r has unknown key%s %s (known: %s)"
                    % (record.get("name", "<unnamed>"),
                       "s" if len(unknown) > 1 else "",
                       ", ".join(repr(key) for key in unknown),
                       ", ".join(sorted(known))))
            specs.append(FaultSpec(**record))
        plan = cls(specs)
        plan.validate()
        return plan

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)
