"""Fault injection: declarative chaos plans on the simulated clock.

``repro.faults`` schedules node crashes (with WAL-replay recovery),
network degradation and outages, and disk stalls against a live cluster,
driven by a seedable declarative plan.  See :mod:`repro.faults.plan` for
the fault vocabulary, :mod:`repro.faults.injector` for scheduling, and
:mod:`repro.faults.generate` for drawing whole chaos scenarios from a
:class:`FailureModel` distribution (MTBF/MTTR per node, link flaps,
correlated bursts) instead of staging them by hand.
"""

from .generate import FailureModel, generate_plan
from .injector import FaultInjector
from .plan import (
    AFTER_EVENTS,
    BANDWIDTH,
    CRASH,
    DISK_STALL,
    FAULT_KINDS,
    LATENCY,
    LINK_DOWN,
    ROUTER_CRASH,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "AFTER_EVENTS",
    "BANDWIDTH",
    "CRASH",
    "DISK_STALL",
    "FAULT_KINDS",
    "LATENCY",
    "LINK_DOWN",
    "ROUTER_CRASH",
    "FailureModel",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "generate_plan",
]
