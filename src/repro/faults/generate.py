"""Seeded fault-plan generation from a failure model.

Hand-written :class:`~repro.faults.plan.FaultPlan`\\ s stage *one*
scenario; a soak run needs *draws* from a failure-model distribution —
per-node crash/recovery processes, link flaps, optional degradation and
disk-stall streams, and correlated crash bursts — over a long horizon.
:func:`generate_plan` turns a :class:`FailureModel` plus a seed into an
ordinary declarative plan, so a generated scenario keeps every property
hand-written plans have: JSON round-trippable, diffable, replayable,
and validated up front.

Determinism: the only randomness source is one ``random.Random`` seeded
from the caller's seed, draws happen in a fixed order (nodes sorted,
streams in a fixed sequence), and timestamps are rounded to microseconds
— the same model + seed + node list always yields the byte-identical
plan.

Modelling choices, kept deliberately simple:

* Inter-fault gaps and downtimes are exponential (the classic
  MTBF/MTTR renewal model).  Gaps are measured *between* windows, so
  two windows of the same stream never overlap — a node is not crashed
  twice at once, and the (single, global) cluster link is not downed
  twice at once.
* Downtimes are floored at a small positive value: a zero duration
  would mean *permanent* in the plan vocabulary, which is not what a
  recovery-time draw of ~0 means.
* A correlated burst rides on an existing crash: with probability
  ``burst_probability`` per primary crash, one *other* node crashes
  within ``burst_spread`` seconds of it — the rack-level correlated
  failure the fault-tolerance literature warns about.  A burst draw
  that would overlap the victim's own crash schedule is skipped, not
  re-rolled, to keep draws aligned across model tweaks.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from .plan import (
    BANDWIDTH,
    CRASH,
    DISK_STALL,
    LATENCY,
    LINK_DOWN,
    ROUTER_CRASH,
    FaultPlan,
)

#: Downtime floor: a draw below this becomes this, never 0 (permanent).
MIN_DURATION = 0.5


@dataclass(frozen=True)
class FailureModel:
    """Failure-rate parameters a soak scenario is drawn from.

    All times are simulated seconds; a rate of ``0`` disables that
    fault stream entirely.  ``*_mtbf`` is the mean gap between
    consecutive windows of one stream (per node for node faults),
    ``*_mttr`` the mean length of each window.
    """

    #: Mean time between crashes, per node (0 = no crashes).
    node_mtbf: float = 3600.0
    #: Mean crash downtime (WAL-replay restart happens at window end).
    node_mttr: float = 60.0
    #: Mean time between cluster-link outages (0 = no link flaps).
    link_mtbf: float = 0.0
    #: Mean link outage length.
    link_mttr: float = 10.0
    #: Mean time between degradation windows (0 = none); windows
    #: alternate latency inflation and bandwidth collapse.
    degrade_mtbf: float = 0.0
    #: Mean degradation window length.
    degrade_mttr: float = 60.0
    #: Severity of degradation windows (latency multiplier / bandwidth
    #: divisor).
    degrade_factor: float = 4.0
    #: Mean time between disk stalls, per node (0 = none).
    disk_stall_mtbf: float = 0.0
    #: Mean disk stall length.
    disk_stall_mttr: float = 2.0
    #: Mean time between router-shard crashes, per shard (0 = none);
    #: draws only apply when ``generate_plan`` is given router names.
    router_mtbf: float = 0.0
    #: Mean router-shard downtime (the shard restarts empty).
    router_mttr: float = 5.0
    #: Chance each primary crash drags one other node down with it.
    burst_probability: float = 0.0
    #: Correlated crash lands within this many seconds of its primary.
    burst_spread: float = 30.0
    #: Hard cap on generated faults (earliest kept), a runaway guard.
    max_faults: int = 1000

    def validate(self) -> None:
        """Raise ``ValueError`` on a nonsensical model."""
        for name in ("node_mtbf", "node_mttr", "link_mtbf", "link_mttr",
                     "degrade_mtbf", "degrade_mttr", "disk_stall_mtbf",
                     "disk_stall_mttr", "router_mtbf", "router_mttr",
                     "burst_spread"):
            if getattr(self, name) < 0:
                raise ValueError("FailureModel.%s must be >= 0" % name)
        if not 0 <= self.burst_probability <= 1:
            raise ValueError("burst_probability must be in [0, 1]")
        if self.degrade_factor <= 1:
            raise ValueError("degrade_factor must be > 1")
        if self.max_faults < 1:
            raise ValueError("max_faults must be >= 1")

    def to_dict(self) -> Dict[str, float]:
        """JSON-serialisable record (for the soak report artifact)."""
        return {
            "node_mtbf": self.node_mtbf, "node_mttr": self.node_mttr,
            "link_mtbf": self.link_mtbf, "link_mttr": self.link_mttr,
            "degrade_mtbf": self.degrade_mtbf,
            "degrade_mttr": self.degrade_mttr,
            "degrade_factor": self.degrade_factor,
            "disk_stall_mtbf": self.disk_stall_mtbf,
            "disk_stall_mttr": self.disk_stall_mttr,
            "router_mtbf": self.router_mtbf,
            "router_mttr": self.router_mttr,
            "burst_probability": self.burst_probability,
            "burst_spread": self.burst_spread,
            "max_faults": self.max_faults,
        }


def _derive_rng(seed: Union[int, str], stream: str) -> random.Random:
    """One independent, deterministic RNG per fault stream."""
    return random.Random(zlib.crc32(
        ("faultgen:%s:%s" % (seed, stream)).encode("utf-8")))


def _windows(rng: random.Random, mtbf: float, mttr: float,
             horizon: float) -> List[Tuple[float, float]]:
    """Non-overlapping ``(start, duration)`` windows of one stream."""
    out: List[Tuple[float, float]] = []
    clock = 0.0
    while True:
        clock += rng.expovariate(1.0 / mtbf)
        if clock >= horizon:
            return out
        duration = max(MIN_DURATION, rng.expovariate(1.0 / mttr))
        out.append((round(clock, 6), round(duration, 6)))
        clock += duration


def generate_plan(model: FailureModel, nodes: Sequence[str],
                  horizon: float,
                  seed: Union[int, str] = 0,
                  routers: Sequence[str] = ()) -> FaultPlan:
    """Draw one chaos scenario from ``model`` over ``horizon`` seconds.

    ``nodes`` are the node names eligible for node faults (crashes,
    disk stalls); link and degradation streams are cluster-global,
    matching the single shared-link network model.  ``routers`` names
    the router shards eligible for ``router_crash`` windows (ignored
    when ``router_mtbf`` is 0, and vice versa — an empty shard list
    silently disables the stream, so node-only callers are untouched).
    Returns a validated :class:`FaultPlan`, deterministically — same
    arguments, same plan; the router stream draws from its own derived
    RNGs, so adding shards never perturbs the node/link/disk draws.
    """
    model.validate()
    if not nodes:
        raise ValueError("generate_plan needs at least one node")
    if sorted(set(nodes)) != sorted(nodes):
        raise ValueError("duplicate node names: %r" % (list(nodes),))
    if sorted(set(routers)) != sorted(routers):
        raise ValueError("duplicate router names: %r" % (list(routers),))
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    plan = FaultPlan()
    busy: Dict[str, List[Tuple[float, float]]] = {name: []
                                                 for name in nodes}
    # Per-node crash streams (sorted node order keeps draws stable).
    crashes: List[Tuple[float, float, str]] = []
    if model.node_mtbf > 0:
        for node in sorted(nodes):
            rng = _derive_rng(seed, "crash:%s" % node)
            for index, (at, duration) in enumerate(
                    _windows(rng, model.node_mtbf, model.node_mttr,
                             horizon)):
                plan.add("crash.%s.%d" % (node, index), CRASH, at=at,
                         target=node, duration=duration)
                busy[node].append((at, at + duration))
                crashes.append((at, duration, node))
    # Correlated bursts: each primary crash may drag another node down.
    if model.burst_probability > 0 and len(nodes) > 1:
        rng = _derive_rng(seed, "burst")
        for index, (at, _duration, node) in enumerate(sorted(crashes)):
            if rng.random() >= model.burst_probability:
                continue
            victim = rng.choice(sorted(name for name in nodes
                                       if name != node))
            burst_at = round(at + rng.uniform(0.0, model.burst_spread),
                             6)
            burst_len = round(max(MIN_DURATION, rng.expovariate(
                1.0 / model.node_mttr)), 6)
            if burst_at + burst_len >= horizon:
                continue
            if any(burst_at < end and start < burst_at + burst_len
                   for start, end in busy[victim]):
                continue  # skip, don't re-roll: keeps draws aligned
            plan.add("burst.%s.%d" % (victim, index), CRASH,
                     at=burst_at, target=victim, duration=burst_len)
            busy[victim].append((burst_at, burst_at + burst_len))
    # Cluster-link flap stream (global: one link state to flip).
    if model.link_mtbf > 0:
        rng = _derive_rng(seed, "link")
        for index, (at, duration) in enumerate(
                _windows(rng, model.link_mtbf, model.link_mttr,
                         horizon)):
            plan.add("flap.link.%d" % index, LINK_DOWN, at=at,
                     duration=duration)
    # Degradation stream, alternating latency and bandwidth windows.
    if model.degrade_mtbf > 0:
        rng = _derive_rng(seed, "degrade")
        for index, (at, duration) in enumerate(
                _windows(rng, model.degrade_mtbf, model.degrade_mttr,
                         horizon)):
            kind = LATENCY if index % 2 == 0 else BANDWIDTH
            plan.add("degrade.%s.%d" % (kind, index), kind, at=at,
                     duration=duration, factor=model.degrade_factor)
    # Per-node disk stall streams.
    if model.disk_stall_mtbf > 0:
        for node in sorted(nodes):
            rng = _derive_rng(seed, "disk:%s" % node)
            for index, (at, duration) in enumerate(
                    _windows(rng, model.disk_stall_mtbf,
                             model.disk_stall_mttr, horizon)):
                plan.add("stall.%s.%d" % (node, index), DISK_STALL,
                         at=at, target=node, duration=duration)
    # Per-shard router crash streams.
    if model.router_mtbf > 0 and routers:
        for shard in sorted(routers):
            rng = _derive_rng(seed, "router:%s" % shard)
            for index, (at, duration) in enumerate(
                    _windows(rng, model.router_mtbf, model.router_mttr,
                             horizon)):
                plan.add("rcrash.%s.%d" % (shard, index), ROUTER_CRASH,
                         at=at, target=shard, duration=duration)
    plan.faults.sort(key=lambda spec: (spec.at, spec.name))
    if len(plan.faults) > model.max_faults:
        del plan.faults[model.max_faults:]
    plan.validate()
    return plan
