"""Scheduled fault injection on the simulated clock.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into simulation processes: one
arming process per fault, which waits for its trigger (absolute time, or
a named migration phase opening plus an offset), injects the fault
against the live cluster, and — for bounded faults — heals it after
``duration`` seconds.

Every injection emits a ``fault.injected`` trace event, opens a
``fault``-kind span named after the spec (closed again on recovery, so
overlapping faults show up as overlapping spans — permanent faults leave
theirs open), and bumps the ``faults.injected`` (and
``faults.injected.<kind>``) counters plus the ``faults.active`` gauge;
recoveries mirror that with ``fault.recovered`` / ``faults.recovered``.
That makes chaos runs auditable purely from the exported trace, which is
what ``scripts/check_trace.py`` gates on in CI.

Multi-fault plans: specs arm independently (overlap is the norm), and a
spec with ``after=<name>`` waits on a trigger event the named fault
succeeds when it injects (or, with ``after_event="recovered"``, heals).
Arming order is deterministic — plan order, or a seeded shuffle with
``seed=`` — so chains and ties replay identically for a fixed seed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from ..obs.trace import FAULT, PHASE
from ..sim.events import Event
from .plan import (
    BANDWIDTH,
    CRASH,
    DISK_STALL,
    LATENCY,
    LINK_DOWN,
    ROUTER_CRASH,
    FaultPlan,
    FaultSpec,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..obs.metrics import MetricsRegistry
    from ..obs.trace import Tracer
    from ..sim.core import Environment


class FaultInjector:
    """Schedules the faults of a plan against a cluster."""

    #: How often a phase-anchored fault re-checks the tracer for its
    #: trigger span, in simulated seconds.
    POLL_INTERVAL = 0.05

    def __init__(self, env: "Environment", cluster: "Cluster",
                 plan: FaultPlan,
                 tracer: Optional["Tracer"] = None,
                 metrics: Optional["MetricsRegistry"] = None,
                 seed: Optional[int] = None,
                 routers: Optional[Dict[str, Any]] = None):
        self.env = env
        self.cluster = cluster
        self.plan = plan
        #: Router shards by name (``RouterFleet.shard_map()``), the
        #: targets of ``router_crash`` specs.
        self.routers: Dict[str, Any] = routers or {}
        # Fail fast: a malformed plan is a construction error, not
        # something to discover only when the run calls start().
        plan.validate()
        for spec in plan:
            if spec.kind == ROUTER_CRASH and spec.target not in self.routers:
                raise ValueError(
                    "fault %r targets unknown router shard %r "
                    "(known: %s)"
                    % (spec.name, spec.target,
                       ", ".join(sorted(self.routers)) or "<none>"))
        self.tracer = tracer
        self.metrics = metrics
        #: Shuffle the arming order deterministically (None = plan
        #: order).  Arming order breaks simultaneous-trigger ties, so a
        #: seed explores different interleavings while every individual
        #: run stays exactly reproducible.
        self.seed = seed
        #: (sim time, spec) pairs, in injection order.
        self.injected: List[tuple] = []
        self.recovered: List[tuple] = []
        self._started = False
        #: Per-fault lifecycle triggers for ``after`` chains:
        #: (fault name, "injected" | "recovered") -> Event.
        self._triggers: Dict[tuple, Event] = {}
        #: Open ``fault``-kind span per injected fault name.
        self._spans: Dict[str, Any] = {}
        #: Injected-but-not-healed specs by name; what :meth:`close`
        #: drains at run end.
        self._active: Dict[str, FaultSpec] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Validate the plan and spawn one arming process per fault."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self.plan.validate()
        if any(spec.phase is not None for spec in self.plan) \
                and self.tracer is None:
            raise ValueError("phase-anchored faults need a tracer")
        self._started = True
        specs = list(self.plan)
        if any(spec.kind in (LINK_DOWN, LATENCY, BANDWIDTH)
               for spec in specs):
            # Link state may now flip mid-flight; disable the network's
            # coalesced round-trip fast path so every hop keeps its own
            # outage/degradation check at the exact per-hop timestamps.
            self.cluster.network.coalesce_hops = False
        if self.seed is not None:
            random.Random(self.seed).shuffle(specs)
        for spec in specs:
            self.env.process(self._arm(spec), name="fault.%s" % spec.name)

    def trigger(self, name: str, moment: str = "injected") -> Event:
        """The simulation event that fires when fault ``name`` reaches
        ``moment`` (``"injected"`` or ``"recovered"``).

        Already-passed moments return an already-triggered event, so
        late subscribers (and ``after`` chains armed in any order) never
        miss their trigger.
        """
        key = (name, moment)
        event = self._triggers.get(key)
        if event is None:
            event = Event(self.env, name="fault.%s.%s" % (name, moment))
            self._triggers[key] = event
        return event

    def _fire_trigger(self, name: str, moment: str) -> None:
        event = self.trigger(name, moment)
        if not event.triggered:
            event.succeed()

    # ------------------------------------------------------------------
    def _arm(self, spec: FaultSpec) -> Generator[Any, Any, None]:
        if spec.phase is not None:
            while not self._phase_open(spec.phase):
                yield self.env.timeout(self.POLL_INTERVAL)
        if spec.after is not None:
            yield self.trigger(spec.after, spec.after_event)
        if spec.at > 0:
            yield self.env.timeout(spec.at)
        yield from self._inject(spec)

    def _phase_open(self, phase_name: str) -> bool:
        for span in reversed(self.tracer.spans):
            if span.kind == PHASE and span.name == phase_name:
                return True
        return False

    # ------------------------------------------------------------------
    def _inject(self, spec: FaultSpec) -> Generator[Any, Any, None]:
        self.injected.append((self.env.now, spec))
        self._active[spec.name] = spec
        self._record("fault.injected", spec)
        if self.tracer is not None:
            self._spans[spec.name] = self.tracer.start(
                spec.name, kind=FAULT, fault_kind=spec.kind,
                target=spec.target, duration=spec.duration,
                after=spec.after or "")
        if self.metrics is not None:
            self.metrics.counter("faults.injected").inc()
            self.metrics.counter("faults.injected.%s" % spec.kind).inc()
            self.metrics.gauge("faults.active").inc()
        self._fire_trigger(spec.name, "injected")
        if spec.kind == CRASH:
            yield from self._run_crash(spec)
        elif spec.kind == LINK_DOWN:
            yield from self._run_link_down(spec)
        elif spec.kind == LATENCY:
            yield from self._run_degrade(spec, latency=True)
        elif spec.kind == BANDWIDTH:
            yield from self._run_degrade(spec, latency=False)
        elif spec.kind == DISK_STALL:
            yield from self._run_disk_stall(spec)
        elif spec.kind == ROUTER_CRASH:
            yield from self._run_router_crash(spec)

    def _record(self, event_name: str, spec: FaultSpec) -> None:
        if self.tracer is not None:
            self.tracer.event(event_name, fault=spec.name, kind=spec.kind,
                              target=spec.target, duration=spec.duration)

    def close(self) -> None:
        """Retire faults still active at run end; idempotent.

        Permanent faults (``duration == 0``) never heal, so without
        this the ``faults.active`` gauge reports phantom active faults
        after the horizon closes — a soak run's final metrics would
        look like an outage in progress.  Each still-active fault gets
        its span finished with ``outcome="unrecovered"``, one
        ``fault.unrecovered`` event, a ``faults.unrecovered`` counter
        bump, and a gauge decrement.  Chain triggers do *not* fire —
        an unrecovered fault still never "recovered".
        """
        if self._closed:
            return
        self._closed = True
        for name in sorted(self._active):
            spec = self._active.pop(name)
            self._record("fault.unrecovered", spec)
            span = self._spans.pop(spec.name, None)
            if span is not None:
                self.tracer.finish(span, outcome="unrecovered")
            if self.metrics is not None:
                self.metrics.counter("faults.unrecovered").inc()
                self.metrics.gauge("faults.active").dec()

    def _heal(self, spec: FaultSpec) -> None:
        self.recovered.append((self.env.now, spec))
        self._active.pop(spec.name, None)
        self._record("fault.recovered", spec)
        span = self._spans.pop(spec.name, None)
        if span is not None:
            self.tracer.finish(span, outcome="recovered")
        if self.metrics is not None:
            self.metrics.counter("faults.recovered").inc()
            self.metrics.gauge("faults.active").dec()
        self._fire_trigger(spec.name, "recovered")

    # -- kind handlers -------------------------------------------------
    def _run_crash(self, spec: FaultSpec) -> Generator[Any, Any, None]:
        instance = self.cluster.node(spec.target).instance
        instance.crash()
        if spec.duration > 0:
            yield self.env.timeout(spec.duration)
            yield from instance.restart()
            self._heal(spec)

    def _run_link_down(self, spec: FaultSpec) -> Generator[Any, Any, None]:
        net = self.cluster.network
        net.fail_link()
        if spec.duration > 0:
            yield self.env.timeout(spec.duration)
            net.restore_link()
            self._heal(spec)

    def _run_degrade(self, spec: FaultSpec,
                     latency: bool) -> Generator[Any, Any, None]:
        net = self.cluster.network
        if latency:
            net.degrade(latency_scale=spec.factor)
        else:
            net.degrade(bandwidth_scale=spec.factor)
        if spec.duration > 0:
            yield self.env.timeout(spec.duration)
            if latency:
                net.degrade(latency_scale=1.0 / spec.factor)
            else:
                net.degrade(bandwidth_scale=1.0 / spec.factor)
            self._heal(spec)

    def _run_disk_stall(self, spec: FaultSpec) -> Generator[Any, Any, None]:
        disk = self.cluster.node(spec.target).instance.disk
        yield from disk.stall(spec.duration)
        self._heal(spec)

    def _run_router_crash(self, spec: FaultSpec
                          ) -> Generator[Any, Any, None]:
        shard = self.routers[spec.target]
        shard.crash()
        if spec.duration > 0:
            yield self.env.timeout(spec.duration)
            shard.restart()
            self._heal(spec)
