"""Cost-model-driven move planning.

The planner is the *deciding* leg of the control plane.  Given a
:class:`~repro.control.watcher.ClusterView` and the detector's hot
list, it picks (tenant, destination) moves that drain the hot nodes
into the least-loaded cold ones, and ranks the candidates by predicted
migration cost from the paper's Section 4.5.2 model: the dump/restore
transfer term plus :func:`~repro.experiments.costmodel.cost_madeus`
over :func:`~repro.experiments.costmodel.parameters_from_run`
parameters fed from the view's live counters (commit and WAL-flush
rates).  Cheapest moves first — under a concurrent-move budget, the
moves that finish fastest rebalance the cluster soonest.

Two memories keep the plan sane across rounds:

* *tenant cooldown* — a tenant just moved (or just scheduled) is not
  eligible again until its cooldown expires, so the planner can never
  ping-pong one tenant between nodes;
* *excluded destinations* — a node that failed a move (crashed under
  restore) is skipped as a target until its exclusion TTL expires,
  mirroring the scheduler's per-job excluded-destination memory at the
  fleet level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence

from ..experiments.costmodel import cost_madeus, parameters_from_run
from .watcher import ClusterView

if TYPE_CHECKING:  # pragma: no cover
    from ..core.middleware import Middleware


@dataclass(frozen=True)
class PlannedMove:
    """One candidate migration the planner proposes."""

    tenant: str
    source: str
    destination: str
    #: Windowed commit rate of the tenant at planning time.
    rate: float
    #: Tenant size at planning time (drives the transfer term).
    size_mb: float
    #: Predicted migration cost in sim seconds (transfer + Eq. 2).
    predicted_cost: float


class Planner:
    """Rank (tenant, destination) moves by predicted migration cost."""

    def __init__(self, middleware: "Middleware", *,
                 cooldown: float = 30.0, exclusion_ttl: float = 60.0,
                 est_reads_per_txn: float = 2.0,
                 est_writes_per_txn: float = 2.0,
                 fsync_latency: float = 0.005,
                 dump_mb_s: float = 40.0, restore_mb_s: float = 10.0,
                 read_cost: float = 0.003, write_cost: float = 0.004):
        self.middleware = middleware
        self.cooldown = cooldown
        self.exclusion_ttl = exclusion_ttl
        self.est_reads_per_txn = est_reads_per_txn
        self.est_writes_per_txn = est_writes_per_txn
        self.fsync_latency = fsync_latency
        self.dump_mb_s = dump_mb_s
        self.restore_mb_s = restore_mb_s
        self.read_cost = read_cost
        self.write_cost = write_cost
        #: Tenant -> sim time its move cooldown expires.
        self._moved_until: Dict[str, float] = {}
        #: Node -> sim time its destination exclusion expires.
        self._excluded_until: Dict[str, float] = {}

    # -- memories ------------------------------------------------------
    def note_move(self, tenant: str, now: float) -> None:
        """Start ``tenant``'s cooldown (called at submit time)."""
        self._moved_until[tenant] = now + self.cooldown

    def in_cooldown(self, tenant: str, now: float) -> bool:
        """Whether ``tenant`` moved within the last cooldown window."""
        return now < self._moved_until.get(tenant, -1.0)

    def exclude_destination(self, node: str, now: float) -> None:
        """Bar ``node`` as a move target for one exclusion TTL."""
        self._excluded_until[node] = now + self.exclusion_ttl

    def is_excluded(self, node: str, now: float) -> bool:
        """Whether ``node`` is currently barred as a target."""
        return now < self._excluded_until.get(node, -1.0)

    # -- cost ----------------------------------------------------------
    def predicted_cost(self, view: ClusterView, tenant: str,
                       size_mb: float) -> float:
        """Predicted migration cost for moving ``tenant`` now.

        Transfer term (dump + restore of the snapshot at the configured
        rates) plus the Section 4.5.2 catch-up cost (Eq. 2) of the
        operations the tenant commits *during* that transfer, with the
        group-commit split estimated from the source node's live
        commit/flush rates (more flushes per commit -> fewer grouped
        commits -> costlier catch-up).
        """
        transfer = (size_mb / self.dump_mb_s
                    + size_mb / self.restore_mb_s)
        rate = view.tenant_rates.get(tenant, 0.0)
        total_txns = int(math.ceil(rate * transfer))
        if total_txns <= 0:
            return transfer
        source = view.tenant_nodes.get(tenant, "")
        node_rate = view.node_loads.get(source, 0.0)
        flush_rate = view.node_flush_rates.get(source, 0.0)
        if node_rate > 0:
            flushes_per_commit = min(1.0, flush_rate / node_rate)
        else:
            flushes_per_commit = 1.0
        flush_count = int(math.ceil(total_txns * flushes_per_commit))
        params = parameters_from_run(
            total_txns=total_txns,
            reads_per_txn=self.est_reads_per_txn,
            writes_per_txn=self.est_writes_per_txn,
            flush_count=min(total_txns, flush_count),
            fsync_latency=self.fsync_latency,
            read_cost=self.read_cost, write_cost=self.write_cost)
        return transfer + cost_madeus(params)

    def _tenant_size(self, tenant: str, source: str) -> float:
        instance = self.middleware.cluster.node(source).instance
        return instance.tenant(tenant).size_mb()

    # -- planning ------------------------------------------------------
    def plan(self, view: ClusterView, hot_nodes: Sequence[str], *,
             now: float, in_flight: Sequence[str] = (),
             budget: int = 1) -> List[PlannedMove]:
        """Moves to submit this round, cheapest-predicted-cost first.

        One move per hot node per round (the paper's migrate-the-heavy-
        tenant rule from Section 5.6: drain the heaviest eligible
        tenant, re-observe, repeat), capped at ``budget`` moves.  A
        move is only proposed when it actually helps — the destination,
        credited with the tenant's rate, must stay strictly below the
        source's remaining load.
        """
        if budget <= 0 or not hot_nodes:
            return []
        busy = set(in_flight)
        adjusted = dict(view.node_loads)
        candidates: List[PlannedMove] = []
        hot_set = set(hot_nodes)
        for hot in hot_nodes:
            move = self._best_move_from(view, hot, hot_set, busy,
                                        adjusted, now)
            if move is None:
                continue
            candidates.append(move)
            adjusted[move.source] -= move.rate
            adjusted[move.destination] += move.rate
            busy.add(move.tenant)
        candidates.sort(key=lambda m: (m.predicted_cost, m.tenant))
        return candidates[:budget]

    def _best_move_from(self, view: ClusterView, hot: str,
                        hot_set: set, busy: set,
                        adjusted: Dict[str, float],
                        now: float):
        """Heaviest eligible tenant on ``hot`` -> least-loaded target."""
        for tenant in view.tenants_on(hot):
            rate = view.tenant_rates.get(tenant, 0.0)
            if rate <= 0:
                break  # heaviest-first: the rest are idle too
            if tenant in busy or self.in_cooldown(tenant, now):
                continue
            destination = self._best_destination(
                hot, hot_set, adjusted, rate, now)
            if destination is None:
                return None
            size_mb = self._tenant_size(tenant, hot)
            return PlannedMove(
                tenant=tenant, source=hot, destination=destination,
                rate=rate, size_mb=size_mb,
                predicted_cost=self.predicted_cost(view, tenant,
                                                   size_mb))
        return None

    def _best_destination(self, source: str, hot_set: set,
                          adjusted: Dict[str, float], rate: float,
                          now: float):
        """Least-loaded live, cold, non-excluded node that helps."""
        best = None
        best_load = None
        for node in sorted(adjusted):
            if node == source or node in hot_set:
                continue
            if self.is_excluded(node, now):
                continue
            if self.middleware.cluster.node(node).instance.crashed:
                continue
            load = adjusted[node]
            if best_load is None or load < best_load:
                best, best_load = node, load
        if best is None:
            return None
        # Only move when it lowers the load *variance*: the target
        # credited with the tenant must end strictly below the source
        # *after* losing it (D + r < S - r).  The looser D + r < S
        # would still shrink the pairwise max but lets the planner
        # churn moves that leave the imbalance coefficient unchanged
        # or worse.
        if best_load + rate >= adjusted[source] - rate - 1e-12:
            return None
        return best
