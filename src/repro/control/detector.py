"""Hotspot detection with hysteresis.

A node is *hot* when its load has exceeded ``enter_ratio`` times the
cluster mean for ``sustain`` consecutive samples; it stays hot until
load drops below ``exit_ratio`` times the mean.  The enter threshold
sits strictly above the exit threshold, and leaving the hot state
starts a ``cooldown`` window during which the node cannot re-enter —
the classic two-threshold-plus-dwell shape that keeps a borderline node
from ping-ponging tenants back and forth.

All comparisons are strict, so a load sitting *exactly* on a threshold
never changes state: hysteresis with a dead band, not a knife edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .watcher import ClusterView


@dataclass
class _NodeState:
    """Per-node detector memory."""

    streak: int = 0
    hot: bool = False
    cooling_until: float = field(default=-1.0)


class HotspotDetector:
    """Classify nodes hot/cold from successive :class:`ClusterView`.

    Call :meth:`observe` once per watcher sample; it returns the nodes
    currently hot, sorted by load (heaviest first) for deterministic
    downstream planning.
    """

    def __init__(self, enter_ratio: float = 1.5,
                 exit_ratio: float = 1.1, sustain: int = 2,
                 cooldown: float = 30.0, min_load: float = 0.0):
        if enter_ratio <= exit_ratio:
            raise ValueError("enter_ratio must exceed exit_ratio "
                             "(hysteresis needs a dead band)")
        if sustain < 1:
            raise ValueError("sustain must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.enter_ratio = enter_ratio
        self.exit_ratio = exit_ratio
        self.sustain = sustain
        self.cooldown = cooldown
        self.min_load = min_load
        self._nodes: Dict[str, _NodeState] = {}

    def _state(self, node: str) -> _NodeState:
        state = self._nodes.get(node)
        if state is None:
            state = _NodeState()
            self._nodes[node] = state
        return state

    # ------------------------------------------------------------------
    def observe(self, view: ClusterView) -> List[str]:
        """Fold one sample into the per-node state machines.

        Returns the currently-hot nodes, heaviest first.
        """
        loads = view.node_loads
        mean = (sum(loads.values()) / len(loads)) if loads else 0.0
        now = view.at
        hot: List[str] = []
        for node in sorted(loads):
            load = loads[node]
            state = self._state(node)
            if state.hot:
                if load < self.exit_ratio * mean:
                    state.hot = False
                    state.streak = 0
                    state.cooling_until = now + self.cooldown
                else:
                    hot.append(node)
                continue
            if now < state.cooling_until:
                # Cooling off after leaving the hot state: the streak
                # does not accumulate, so a node never re-enters within
                # one cooldown window.
                state.streak = 0
                continue
            if (mean > 0 and load > self.enter_ratio * mean
                    and load > self.min_load):
                state.streak += 1
                if state.streak >= self.sustain:
                    state.hot = True
                    hot.append(node)
            else:
                state.streak = 0
        return sorted(hot, key=lambda name: (-loads[name], name))

    # ------------------------------------------------------------------
    def is_hot(self, node: str) -> bool:
        """Whether ``node`` is currently classified hot."""
        state = self._nodes.get(node)
        return state is not None and state.hot

    def cooling_until(self, node: str) -> float:
        """Sim time the node's post-hot cooldown ends (-1 if never hot)."""
        state = self._nodes.get(node)
        return state.cooling_until if state is not None else -1.0
