"""The control plane: load watching, hotspot detection, rebalancing.

The layer ROADMAP item 1 calls "the control plane itself": a
continuous loop above the migration mechanism that *decides* which
tenant moves where, using the paper's Section 4.5.2 cost model to rank
candidates.  Sensing (:class:`LoadWatcher`), classification
(:class:`HotspotDetector`), decision (:class:`Planner`), and actuation
(:class:`Rebalancer`, driving a service-mode
:class:`~repro.core.scheduler.MigrationScheduler`) are separate pieces
so each is testable alone.
"""

from .detector import HotspotDetector
from .planner import PlannedMove, Planner
from .rebalancer import (
    MoveRecord,
    RebalanceOptions,
    RebalanceReport,
    Rebalancer,
)
from .watcher import ClusterView, LoadWatcher, imbalance_coefficient

__all__ = [
    "ClusterView",
    "HotspotDetector",
    "LoadWatcher",
    "MoveRecord",
    "PlannedMove",
    "Planner",
    "RebalanceOptions",
    "RebalanceReport",
    "Rebalancer",
    "imbalance_coefficient",
]
