"""Sampling cluster load into rolling windows.

The :class:`LoadWatcher` is the *sensing* leg of the control plane: it
periodically asks the middleware to publish its per-tenant counters and
per-link utilisation (:meth:`Middleware.publish_load_gauges`), reads
them back exclusively through the stable
:meth:`~repro.obs.metrics.MetricsRegistry.gauge_value` API, converts
the cumulative counters into *rates* (commits per sim second over the
sample interval), and smooths each rate over a rolling window.  The
rest of the control plane never touches raw counters: the hotspot
detector and planner consume the immutable :class:`ClusterView` the
watcher produces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..core.middleware import Middleware


def imbalance_coefficient(loads: Dict[str, float]) -> float:
    """Coefficient of variation (std/mean) of per-node loads.

    The gate metric of the rebalance experiment: 0 means perfectly
    even, larger means one node carries disproportionate load.  Defined
    as 0.0 when the cluster is idle (mean load <= 0) — an idle cluster
    is trivially balanced.
    """
    values = list(loads.values())
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean <= 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return variance ** 0.5 / mean


@dataclass(frozen=True)
class ClusterView:
    """One immutable, point-in-time reading of cluster load.

    Everything downstream decision code needs, so the detector and
    planner are pure functions of a view instead of re-reading gauges
    themselves (and possibly seeing a torn sample).
    """

    #: Sim time the sample was taken.
    at: float
    #: Samples in the rolling window (rates below are window means).
    window: int
    #: Tenant -> windowed mean commit rate (commits / sim second).
    tenant_rates: Dict[str, float] = field(default_factory=dict)
    #: Tenant -> master node at sample time.
    tenant_nodes: Dict[str, str] = field(default_factory=dict)
    #: Node -> summed windowed tenant rate (0.0 for idle nodes).
    node_loads: Dict[str, float] = field(default_factory=dict)
    #: Node -> windowed mean WAL flush rate (flushes / sim second).
    node_flush_rates: Dict[str, float] = field(default_factory=dict)
    #: Conductor concurrent-players gauge (propagation pressure).
    players: float = 0.0
    #: Link-port name -> busy fraction since the previous sample.
    link_utilisation: Dict[str, float] = field(default_factory=dict)

    @property
    def imbalance(self) -> float:
        """Load-imbalance coefficient across :attr:`node_loads`."""
        return imbalance_coefficient(self.node_loads)

    def tenants_on(self, node: str) -> List[str]:
        """Tenants mastered on ``node``, heaviest first."""
        names = [name for name, host in self.tenant_nodes.items()
                 if host == node]
        return sorted(names,
                      key=lambda name: (-self.tenant_rates.get(name,
                                                               0.0),
                                        name))


class LoadWatcher:
    """Sample per-tenant/per-node load into rolling windows.

    Passive: :meth:`sample_once` takes one reading and returns the
    refreshed :class:`ClusterView`; the caller (the
    :class:`~repro.control.rebalancer.Rebalancer` loop, or a test)
    decides the cadence.  All iteration is over sorted names, so a
    seeded run samples deterministically.
    """

    def __init__(self, middleware: "Middleware",
                 nodes: Optional[List[str]] = None,
                 window: int = 5):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.middleware = middleware
        self.env = middleware.env
        self.nodes = sorted(nodes if nodes is not None
                            else middleware.cluster.nodes)
        self.window = window
        self._last_at: Optional[float] = None
        self._last_commits: Dict[str, float] = {}
        self._last_flushes: Dict[str, float] = {}
        self._rates: Dict[str, Deque[float]] = {}
        self._flush_rates: Dict[str, Deque[float]] = {}
        self._view = ClusterView(at=self.env.now, window=window,
                                 node_loads={name: 0.0
                                             for name in self.nodes})

    # ------------------------------------------------------------------
    def _window_for(self, store: Dict[str, Deque[float]],
                    key: str) -> Deque[float]:
        bucket = store.get(key)
        if bucket is None:
            bucket = deque(maxlen=self.window)
            store[key] = bucket
        return bucket

    @staticmethod
    def _mean(bucket: Deque[float]) -> float:
        if not bucket:
            return 0.0
        return sum(bucket) / len(bucket)

    def sample_once(self) -> ClusterView:
        """Take one reading and return the refreshed view.

        The first sample only establishes the counter baselines (rates
        need two points); it reports zero rates rather than guessing.
        """
        middleware = self.middleware
        metrics = self.middleware.metrics
        now = self.env.now
        since = self._last_at if self._last_at is not None else 0.0
        middleware.publish_load_gauges(since=since)
        elapsed = now - since if self._last_at is not None else 0.0

        tenant_rates: Dict[str, float] = {}
        tenant_nodes: Dict[str, str] = {}
        for tenant in middleware.tenants():
            commits = metrics.gauge_value("tenant.%s.commits" % tenant)
            last = self._last_commits.get(tenant)
            bucket = self._window_for(self._rates, tenant)
            if last is not None and elapsed > 0:
                bucket.append(max(0.0, commits - last) / elapsed)
            self._last_commits[tenant] = commits
            tenant_rates[tenant] = self._mean(bucket)
            tenant_nodes[tenant] = middleware.route(tenant)

        node_loads = {name: 0.0 for name in self.nodes}
        for tenant, rate in tenant_rates.items():
            host = tenant_nodes[tenant]
            if host in node_loads:
                node_loads[host] += rate

        node_flush_rates: Dict[str, float] = {}
        for node in self.nodes:
            flushes = metrics.gauge_value("%s.wal.flushes" % node)
            last = self._last_flushes.get(node)
            bucket = self._window_for(self._flush_rates, node)
            if last is not None and elapsed > 0:
                bucket.append(max(0.0, flushes - last) / elapsed)
            self._last_flushes[node] = flushes
            node_flush_rates[node] = self._mean(bucket)

        link_utilisation: Dict[str, float] = {}
        for name in sorted(
                middleware.cluster.network.link_ports()):
            link_utilisation[name] = metrics.gauge_value(
                "net.link.%s.utilisation" % name)

        self._last_at = now
        self._view = ClusterView(
            at=now, window=self.window, tenant_rates=tenant_rates,
            tenant_nodes=tenant_nodes, node_loads=node_loads,
            node_flush_rates=node_flush_rates,
            players=metrics.gauge_value("propagation.players"),
            link_utilisation=link_utilisation)
        return self._view

    def view(self) -> ClusterView:
        """The most recent :class:`ClusterView` (empty before sampling)."""
        return self._view
