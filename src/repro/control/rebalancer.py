"""The continuous rebalancer: sense -> detect -> plan -> act.

:class:`Rebalancer` closes the loop that ROADMAP item 1 left open: it
wires the :class:`~repro.control.watcher.LoadWatcher` (sampling load
from the obs gauges), the
:class:`~repro.control.detector.HotspotDetector` (hysteresis, so a
borderline node never ping-pongs), and the
:class:`~repro.control.planner.Planner` (Section 4.5.2 cost-ranked
moves) onto a service-mode
:class:`~repro.core.scheduler.MigrationScheduler` — every chosen move
is submitted live with the scheduler's full retry/resume machinery
(``resume=True`` by default) and a max-concurrent-moves budget.

The decision loop emits three trace markers per round, all under the
``rebalance.`` prefix so gates can audit the control plane from the
trace alone:

* ``rebalance.decide`` (span) — one planning round: hot nodes seen,
  moves chosen;
* ``rebalance.submit`` (event) — one move handed to the scheduler,
  with its predicted cost;
* ``rebalance.settle`` (event) — that move's job finished: outcome and
  observed cost, for the predicted-vs-observed error the report
  carries.

All knobs live on :class:`RebalanceOptions`, which follows the
repo-wide option-dataclass convention (every field ``None`` = "use the
default", :meth:`RebalanceOptions.resolve` fills them in) and shares
the ``retry_limit`` / ``retry_base`` / ``retry_cap`` / ``resume`` knob
names with :class:`~repro.core.scheduler.ScheduleOptions` and
:class:`~repro.core.middleware.MigrationOptions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Generator, List, Optional, Set

from ..core.middleware import Middleware, MigrationOptions
from ..core.scheduler import (
    MigrationScheduler,
    ScheduleOptions,
    ScheduleReport,
)
from ..core.watermark import SnapshotStrategy
from ..engine.dump import TransferRates
from ..errors import MigrationError
from ..obs.trace import SPAN
from .detector import HotspotDetector
from .planner import PlannedMove, Planner
from .watcher import ClusterView, LoadWatcher


@dataclass(frozen=True)
class RebalanceOptions:
    """Per-rebalancer knobs, following the repo's options convention.

    Every field defaults to ``None`` meaning "use the default";
    :meth:`resolve` fills them in, so callers only name what they
    change.  The retry/backoff/resume knobs use the same names as
    :class:`~repro.core.scheduler.ScheduleOptions` and
    :class:`~repro.core.middleware.MigrationOptions` and are passed
    through to the underlying scheduler.
    """

    # -- sensing -------------------------------------------------------
    #: Sim seconds between load samples (default 1.0).
    sample_interval: Optional[float] = None
    #: Samples in the rolling rate window (default 5).
    window: Optional[int] = None
    #: Planning cadence: decide every N samples (default 2).
    decide_every: Optional[int] = None
    # -- hotspot detection (hysteresis) --------------------------------
    #: Hot when load > enter_ratio * cluster mean ... (default 1.5)
    enter_ratio: Optional[float] = None
    #: ... for sustain consecutive samples (default 2); cold again when
    #: load < exit_ratio * mean (default 1.1; must be < enter_ratio).
    exit_ratio: Optional[float] = None
    sustain: Optional[int] = None
    #: Sim seconds a node (after cooling) and a tenant (after moving)
    #: are left alone (default 30.0) — the anti-ping-pong dwell.
    cooldown: Optional[float] = None
    #: Absolute load floor below which a node is never hot (default 0).
    min_node_load: Optional[float] = None
    # -- planning / actuation ------------------------------------------
    #: Moves in flight at once (default 2).
    max_concurrent_moves: Optional[int] = None
    #: Sim seconds a failed destination stays barred (default 60.0).
    exclusion_ttl: Optional[float] = None
    #: Workload shape fed to the Section 4.5.2 cost model.
    est_reads_per_txn: Optional[float] = None
    est_writes_per_txn: Optional[float] = None
    fsync_latency: Optional[float] = None
    # -- shared retry/backoff/resume knobs -----------------------------
    #: Scheduler re-attempts per move (default 2).
    retry_limit: Optional[int] = None
    #: Capped exponential backoff between attempts (defaults 0.5/5.0).
    retry_base: Optional[float] = None
    retry_cap: Optional[float] = None
    #: Resume crash-parked migrations from their journal (default True
    #: — the control plane always journals its moves).
    resume: Optional[bool] = None
    #: Snapshot strategy for every move — the same knob as
    #: :attr:`~repro.core.middleware.MigrationOptions.strategy` and
    #: :attr:`~repro.core.scheduler.ScheduleOptions.strategy`.
    strategy: Optional[SnapshotStrategy] = None
    #: Per-move migration knobs (default resumable migrations).
    migration: Optional[MigrationOptions] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "strategy", SnapshotStrategy.coerce(self.strategy))

    def resolve(self) -> "RebalanceOptions":
        """A copy with every ``None`` replaced by its default."""
        sample_interval = (self.sample_interval
                           if self.sample_interval is not None else 1.0)
        if sample_interval <= 0:
            raise ValueError("sample_interval must be > 0")
        window = self.window if self.window is not None else 5
        if window < 1:
            raise ValueError("window must be >= 1")
        decide_every = (self.decide_every
                        if self.decide_every is not None else 2)
        if decide_every < 1:
            raise ValueError("decide_every must be >= 1")
        max_moves = (self.max_concurrent_moves
                     if self.max_concurrent_moves is not None else 2)
        if max_moves < 1:
            raise ValueError("max_concurrent_moves must be >= 1")
        retry_limit = (self.retry_limit
                       if self.retry_limit is not None else 2)
        if retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        resume = self.resume if self.resume is not None else True
        migration = self.migration
        if migration is None:
            migration = MigrationOptions(resume=True)
        if self.strategy is not None and migration.strategy is None:
            migration = replace(migration, strategy=self.strategy)
        return replace(
            self, sample_interval=sample_interval, window=window,
            decide_every=decide_every,
            enter_ratio=(self.enter_ratio
                         if self.enter_ratio is not None else 1.5),
            exit_ratio=(self.exit_ratio
                        if self.exit_ratio is not None else 1.1),
            sustain=self.sustain if self.sustain is not None else 2,
            cooldown=(self.cooldown
                      if self.cooldown is not None else 30.0),
            min_node_load=(self.min_node_load
                           if self.min_node_load is not None else 0.0),
            max_concurrent_moves=max_moves,
            exclusion_ttl=(self.exclusion_ttl
                           if self.exclusion_ttl is not None else 60.0),
            est_reads_per_txn=(self.est_reads_per_txn
                               if self.est_reads_per_txn is not None
                               else 2.0),
            est_writes_per_txn=(self.est_writes_per_txn
                                if self.est_writes_per_txn is not None
                                else 2.0),
            fsync_latency=(self.fsync_latency
                           if self.fsync_latency is not None
                           else 0.005),
            retry_limit=retry_limit,
            retry_base=(self.retry_base
                        if self.retry_base is not None else 0.5),
            retry_cap=(self.retry_cap
                       if self.retry_cap is not None else 5.0),
            resume=resume, migration=migration)


@dataclass
class MoveRecord:
    """One move through its whole life: decided -> submitted -> settled."""

    tenant: str
    source: str
    destination: str
    decided_at: float
    #: Planner's Section 4.5.2 prediction, sim seconds.
    predicted_cost: float
    #: Windowed commit rate and size that drove the decision.
    rate: float = 0.0
    size_mb: float = 0.0
    #: Scheduler outcome ("pending" until settled).
    outcome: str = "pending"
    attempts: int = 0
    resumes: int = 0
    settled_at: Optional[float] = None
    #: Measured end-to-end migration time of the ok attempt.
    observed_cost: Optional[float] = None

    @property
    def cost_error(self) -> Optional[float]:
        """Relative |predicted - observed| / observed, once settled ok."""
        if self.observed_cost is None or self.observed_cost <= 0:
            return None
        return (abs(self.predicted_cost - self.observed_cost)
                / self.observed_cost)


@dataclass
class RebalanceReport:
    """Everything one rebalancer run reports."""

    started_at: float = 0.0
    ended_at: float = 0.0
    #: Load samples taken and planning rounds run.
    samples: int = 0
    decisions: int = 0
    #: Every move decided, in decision order.
    moves: List[MoveRecord] = field(default_factory=list)
    #: The underlying scheduler's report (set by :meth:`Rebalancer.stop`).
    schedule: Optional[ScheduleReport] = None

    @property
    def moves_submitted(self) -> int:
        """Moves handed to the scheduler."""
        return len(self.moves)

    @property
    def moves_ok(self) -> int:
        """Moves whose migration finished ok."""
        return sum(1 for move in self.moves if move.outcome == "ok")

    @property
    def mean_cost_error(self) -> float:
        """Mean relative predicted-vs-observed cost error (ok moves)."""
        errors = [move.cost_error for move in self.moves
                  if move.cost_error is not None]
        if not errors:
            return 0.0
        return sum(errors) / len(errors)


class Rebalancer:
    """Keep a cluster balanced by migrating tenants off hot nodes.

    Usage::

        rebalancer = Rebalancer(middleware, RebalanceOptions(
            cooldown=20.0, max_concurrent_moves=2))
        rebalancer.start()                      # spawns the loop
        env.run(until=300.0)
        report = yield from rebalancer.stop()   # inside a process
        # or: proc = env.process(rebalancer.stop()); env.run();
        #     report = proc.value
    """

    def __init__(self, middleware: Middleware,
                 options: Optional[RebalanceOptions] = None,
                 nodes: Optional[List[str]] = None):
        self.middleware = middleware
        self.env = middleware.env
        self.options = (options or RebalanceOptions()).resolve()
        opts = self.options
        self.watcher = LoadWatcher(middleware, nodes=nodes,
                                   window=opts.window)
        self.detector = HotspotDetector(
            enter_ratio=opts.enter_ratio, exit_ratio=opts.exit_ratio,
            sustain=opts.sustain, cooldown=opts.cooldown,
            min_load=opts.min_node_load)
        rates = (opts.migration.rates
                 if opts.migration is not None
                 and opts.migration.rates is not None
                 else TransferRates())
        self.planner = Planner(
            middleware, cooldown=opts.cooldown,
            exclusion_ttl=opts.exclusion_ttl,
            est_reads_per_txn=opts.est_reads_per_txn,
            est_writes_per_txn=opts.est_writes_per_txn,
            fsync_latency=opts.fsync_latency,
            dump_mb_s=rates.dump_mb_s, restore_mb_s=rates.restore_mb_s)
        self.scheduler = MigrationScheduler(middleware, ScheduleOptions(
            max_concurrent=opts.max_concurrent_moves,
            migration=opts.migration, retry_limit=opts.retry_limit,
            retry_base=opts.retry_base, retry_cap=opts.retry_cap,
            resume=opts.resume))
        self.report = RebalanceReport()
        self._running = False
        self._in_flight: Set[str] = set()
        self._settlers: List[Any] = []

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the control loop is live."""
        return self._running

    def in_flight(self) -> List[str]:
        """Tenants with a move currently in flight, sorted."""
        return sorted(self._in_flight)

    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, None]:
        """Process body: the sense/detect/plan/act loop.

        Runs until :meth:`stop` clears the flag; usually spawned via
        :meth:`start`.
        """
        if self._running:
            raise MigrationError("rebalancer is already running")
        self._running = True
        self.scheduler.start_service()
        self.report.started_at = self.env.now
        opts = self.options
        samples_since_decide = 0
        while self._running:
            yield self.env.timeout(opts.sample_interval)
            if not self._running:
                break
            view = self.watcher.sample_once()
            hot = self.detector.observe(view)
            self.report.samples += 1
            samples_since_decide += 1
            if samples_since_decide >= opts.decide_every:
                samples_since_decide = 0
                self._decide(view, hot)

    def start(self, name: str = "rebalancer") -> Any:
        """Spawn :meth:`run` as a process."""
        return self.env.process(self.run(), name=name)

    def stop(self) -> Generator[Any, Any, RebalanceReport]:
        """Process body: stop deciding, drain every move, and report."""
        if not self._running:
            raise MigrationError("rebalancer is not running")
        self._running = False
        schedule = yield from self.scheduler.stop_service()
        live = [settler for settler in self._settlers
                if not settler.triggered]
        if live:
            yield self.env.all_of(live)
        self.report.schedule = schedule
        self.report.ended_at = self.env.now
        return self.report

    # ------------------------------------------------------------------
    def _decide(self, view: ClusterView, hot: List[str]) -> None:
        """One planning round: rank moves, submit within budget."""
        tracer = self.middleware.tracer
        span = tracer.start("rebalance.decide", kind=SPAN,
                            hot=list(hot),
                            imbalance=round(view.imbalance, 6),
                            in_flight=len(self._in_flight))
        budget = (self.options.max_concurrent_moves
                  - len(self._in_flight))
        moves = self.planner.plan(view, hot, now=self.env.now,
                                  in_flight=self.in_flight(),
                                  budget=budget)
        for move in moves:
            self._submit(move)
        self.report.decisions += 1
        tracer.finish(span, submitted=len(moves))

    def _submit(self, move: PlannedMove) -> None:
        """Hand one planned move to the scheduler and watch it settle."""
        record = MoveRecord(
            tenant=move.tenant, source=move.source,
            destination=move.destination, decided_at=self.env.now,
            predicted_cost=move.predicted_cost, rate=move.rate,
            size_mb=move.size_mb)
        self.report.moves.append(record)
        self.planner.note_move(move.tenant, self.env.now)
        self._in_flight.add(move.tenant)
        self.middleware.tracer.event(
            "rebalance.submit", tenant=move.tenant,
            source=move.source, destination=move.destination,
            predicted_cost=round(move.predicted_cost, 6))
        player = self.scheduler.submit(move.tenant, move.destination)
        self._settlers.append(self.env.process(
            self._settle(record, player),
            name="rebalance.settle.%s" % move.tenant))

    def _settle(self, record: MoveRecord,
                player: Any) -> Generator[Any, Any, None]:
        """Wait for one move's job and fold the outcome back in."""
        outcome = yield player
        record.outcome = outcome.outcome
        record.attempts = outcome.attempts
        record.resumes = outcome.resumes
        record.settled_at = self.env.now
        if outcome.outcome == "ok" and outcome.report is not None:
            record.observed_cost = outcome.report.migration_time
        for node in outcome.excluded_destinations:
            # Fleet-level excluded-destination memory: a node that died
            # under one move is no target for the next rounds either.
            self.planner.exclude_destination(node, self.env.now)
        self._in_flight.discard(record.tenant)
        self.middleware.tracer.event(
            "rebalance.settle", tenant=record.tenant,
            destination=record.destination, outcome=record.outcome,
            attempts=record.attempts,
            predicted_cost=round(record.predicted_cost, 6),
            observed_cost=(round(record.observed_cost, 6)
                           if record.observed_cost is not None
                           else None))
