"""The shardable router fleet: assignment, reconnect, crash recovery.

The fleet duck-types the two-method surface workloads already use on
:class:`~repro.core.middleware.Middleware` (``connect`` / ``submit``),
so ``kv_client`` and the TPC-W drivers run through the router tier
unchanged.  What it adds is the crash story: a request on a dead shard
surfaces as an error with *unknown outcome* (never a silent loss or a
duplicate reply — the dead shard's reply is dropped, the fleet returns
exactly one response per request), the connection's middleware half is
disconnected so no server-side transaction stays wedged, and the client
is rebound to a surviving shard chosen by a seeded reconnect policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from ..engine.session import SessionResult
from ..errors import RouterCrashed
from ..sim.rand import StreamFactory
from .shard import RouterConfig, RouterConnection, RouterShard

if TYPE_CHECKING:  # pragma: no cover
    from ..core.middleware import Middleware
    from ..obs.metrics import MetricsRegistry
    from ..obs.trace import Tracer
    from ..sim.core import Environment


class RouterFleet:
    """N router shards plus the client-side reconnect policy."""

    def __init__(self, env: "Environment", middleware: "Middleware",
                 shards: int = 2,
                 config: Optional[RouterConfig] = None,
                 seed: int = 0,
                 tracer: Optional["Tracer"] = None,
                 metrics: Optional["MetricsRegistry"] = None):
        if shards < 1:
            raise ValueError("a router fleet needs at least one shard")
        self.env = env
        self.middleware = middleware
        self.config = config or RouterConfig()
        self.tracer = tracer if tracer is not None else middleware.tracer
        self.metrics = (metrics if metrics is not None
                        else middleware.metrics)
        self.shards: List[RouterShard] = [
            RouterShard(env, middleware, "router%d" % index,
                        config=self.config, tracer=self.tracer,
                        metrics=self.metrics)
            for index in range(shards)]
        #: Seeded reconnect policy: same seed, same failover choices.
        self._rng = StreamFactory(seed).stream("router-reconnect")
        self._next = 0

    # ------------------------------------------------------------------
    def shard(self, name: str) -> RouterShard:
        """The shard called ``name`` (fault targeting)."""
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise KeyError("no router shard %r" % name)

    def shard_map(self) -> Dict[str, RouterShard]:
        """``{name: shard}`` — the ``routers=`` argument of the
        :class:`~repro.faults.injector.FaultInjector`."""
        return {shard.name: shard for shard in self.shards}

    def alive_shards(self) -> List[RouterShard]:
        """Every shard currently up."""
        return [shard for shard in self.shards if not shard.crashed]

    def invalidate(self, tenant: str) -> None:
        """Drop ``tenant``'s cached route on every live shard (the
        scheduler pushes this after each completed migration)."""
        for shard in self.shards:
            if not shard.crashed:
                shard.invalidate(tenant)

    # ------------------------------------------------------------------
    # the Middleware-shaped surface workloads drive
    # ------------------------------------------------------------------
    def connect(self, tenant: str) -> RouterConnection:
        """Open a persistent client connection, assigned round-robin."""
        inner = self.middleware.connect(tenant)
        alive = self.alive_shards()
        pool = alive if alive else self.shards
        shard = pool[self._next % len(pool)]
        self._next += 1
        self.metrics.counter("router.connections").inc()
        return RouterConnection(tenant, inner, shard)

    def submit(self, conn: RouterConnection, sql: str,
               cpu_cost: Optional[float] = None
               ) -> Generator[Any, Any, SessionResult]:
        """Proxy one statement through the connection's shard."""
        if conn.shard.crashed:
            mid_txn = conn.inner.in_active_txn
            dead = conn.shard.name
            reconnected = yield from self._reconnect(conn)
            if not reconnected:
                return SessionResult(kind="error",
                                     error="no live router shard")
            if mid_txn:
                # The shard died between statements of an open
                # transaction; the reconnect rolled it back.  Silently
                # continuing on the new shard would commit a torn
                # transaction, so the client is told instead.
                self.metrics.counter("router.crash_errors").inc()
                return SessionResult(
                    kind="error",
                    error="router shard %s died mid-transaction; "
                          "transaction outcome unknown" % dead)
        try:
            result = yield from conn.shard.handle(conn, sql, cpu_cost)
        except RouterCrashed as exc:
            self.metrics.counter("router.crash_errors").inc()
            yield from self._reconnect(conn)
            return SessionResult(
                kind="error",
                error="%s; request outcome unknown" % exc)
        return result

    # ------------------------------------------------------------------
    def _reconnect(self, conn: RouterConnection
                   ) -> Generator[Any, Any, bool]:
        """Rebind ``conn`` to a surviving shard (seeded choice).

        The abandoned middleware connection is disconnected first so a
        transaction left open by the dead shard rolls back instead of
        wedging the next handover drain.  Returns False (leaving the
        connection on its dead shard) when no shard survives; the next
        submit retries, so clients ride out a full-fleet outage.
        """
        start = self.env.now
        alive = self.alive_shards()
        if not alive:
            return False
        shard = self._rng.choice(alive)
        self.middleware.disconnect(conn.inner)
        conn.inner = self.middleware.connect(conn.tenant)
        conn.shard = shard
        self.metrics.counter("router.reconnects").inc()
        self.tracer.event("router.reconnect", tenant=conn.tenant,
                          shard=shard.name)
        # The reconnect handshake is one client -> router round trip.
        yield from self.middleware.cluster.network.round_trip()
        blocked = self.env.now - start
        self.metrics.counter("router.blocked_requests").inc()
        self.metrics.quantile_histogram("router.downtime").observe(
            blocked)
        return True

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters for the ``router.summary`` trace event."""
        def value(name: str) -> float:
            instrument = self.metrics.get(name)
            return instrument.value if instrument is not None else 0

        downtime = self.metrics.get("router.downtime")
        record: Dict[str, Any] = {
            "shards": len(self.shards),
            "requests": value("router.requests"),
            "connections": value("router.connections"),
            "reconnects": value("router.reconnects"),
            "crashes": value("router.crashes"),
            "restarts": value("router.restarts"),
            "crash_errors": value("router.crash_errors"),
            "acks_dropped": value("router.acks_dropped"),
            "stale_routes": value("router.stale_routes"),
            "park_rejects": value("router.park_rejects"),
            "park_timeouts": value("router.park_timeouts"),
            "blocked_requests": value("router.blocked_requests"),
        }
        if downtime is not None:
            record["downtime"] = downtime.to_dict()
        return record
