"""Client-facing router tier in front of the middleware.

The paper argues Madeus migrations are "live" because clients keep
working through them — but middleware wall-clock never measures what a
*client connection* experiences.  This package adds the missing tier: a
fleet of :class:`RouterShard` processes holding persistent client
connections, consulting :meth:`~repro.core.middleware.Middleware.owners`
for tenant placement, and performing *connection draining* during a
handover — in-flight requests quiesce through the middleware, new
``BEGIN``\\ s park in a bounded router-side queue with capped-backoff
retry, and every blocked request contributes to a per-request downtime
histogram (:class:`~repro.obs.metrics.QuantileHistogram`), the metric
the service-interruption argument actually rests on.

Router shards are first-class fault targets: a ``router_crash`` fault
kills a shard mid-anything, its clients reconnect to a surviving shard
under a seeded policy, replies in the dead shard's buffers surface as
*unknown outcome* errors (never silently lost, never duplicated), and
stale routing entries are detected against the handover journal and
retried rather than silently misrouted.
"""

from .shard import RouterConfig, RouterConnection, RouterShard
from .fleet import RouterFleet

__all__ = [
    "RouterConfig",
    "RouterConnection",
    "RouterShard",
    "RouterFleet",
]
