"""One router shard: routing cache, connection draining, crash surface.

A shard is deliberately thin — real SQL routers (MaxScale, Vitess
vtgate) do shallow statement inspection and keep a routing cache that
can go stale; the correctness burden is *detecting* staleness and
surviving the shard's own death, which is exactly what this models.
Requests execute on the client's simulation process (``yield from
shard.handle(...)``), so a shard crash is observed at yield boundaries:
parked requests wake and fail un-acknowledged, and a reply obtained
just before the crash is dropped in the shard's buffers and surfaced as
:class:`~repro.errors.RouterCrashed` (outcome unknown) — never as a
silent loss or a duplicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional, Tuple

from ..engine.session import SessionResult
from ..engine.sqlmini import Begin, Commit, parse
from ..errors import RouterCrashed
from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..core.middleware import Connection, Middleware
    from ..obs.metrics import MetricsRegistry
    from ..obs.trace import Tracer
    from ..sim.core import Environment


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of the router tier (shared by every shard)."""

    #: Max ``BEGIN``\ s one shard parks while a tenant drains; the next
    #: one is rejected (bounded queue, like a listen backlog).
    park_capacity: int = 32
    #: How long a parked ``BEGIN`` waits for the handover to finish
    #: before it is failed back to the client.
    park_timeout: float = 30.0
    #: Capped exponential backoff between drain re-checks.
    retry_base: float = 0.05
    retry_cap: float = 1.0

    def validate(self) -> None:
        """Raise ``ValueError`` on a nonsensical configuration."""
        if self.park_capacity < 1:
            raise ValueError("park_capacity must be >= 1")
        if self.park_timeout <= 0:
            raise ValueError("park_timeout must be positive")
        if self.retry_base <= 0 or self.retry_cap < self.retry_base:
            raise ValueError("need 0 < retry_base <= retry_cap")


class RouterConnection:
    """One client connection as the router tier sees it.

    Wraps the middleware-level :class:`~repro.core.middleware.Connection`
    plus the shard currently carrying it; the fleet rebinds both when
    the shard dies.
    """

    __slots__ = ("tenant", "inner", "shard")

    def __init__(self, tenant: str, inner: "Connection",
                 shard: "RouterShard"):
        self.tenant = tenant
        self.inner = inner
        self.shard = shard


class RouterShard:
    """A crashable connection proxy in front of the middleware."""

    def __init__(self, env: "Environment", middleware: "Middleware",
                 name: str, config: Optional[RouterConfig] = None,
                 tracer: Optional["Tracer"] = None,
                 metrics: Optional["MetricsRegistry"] = None):
        self.env = env
        self.middleware = middleware
        self.name = name
        self.config = config or RouterConfig()
        self.config.validate()
        self.tracer = tracer if tracer is not None else middleware.tracer
        self.metrics = (metrics if metrics is not None
                        else middleware.metrics)
        self.crashed = False
        self._crash_event = Event(env, name="router.%s.crash" % name)
        #: Cached tenant -> owner entries; deliberately allowed to go
        #: stale so the detection path is exercised.
        self._routing: Dict[str, str] = {}
        #: Currently parked BEGINs (the bounded queue occupancy).
        self.parked = 0

    # ------------------------------------------------------------------
    # fault surface
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the shard: parked and in-flight requests observe it at
        their next yield boundary; the routing cache is lost."""
        if self.crashed:
            return
        self.crashed = True
        self._routing.clear()
        self.metrics.counter("router.crashes").inc()
        self.tracer.event("router.crash", shard=self.name,
                          parked=self.parked)
        if not self._crash_event.triggered:
            self._crash_event.succeed()

    def restart(self) -> None:
        """Bring the shard back empty: no connections, cold cache."""
        if not self.crashed:
            return
        self.crashed = False
        self._crash_event = Event(self.env,
                                  name="router.%s.crash" % self.name)
        self.metrics.counter("router.restarts").inc()
        self.tracer.event("router.restart", shard=self.name)

    def invalidate(self, tenant: str) -> None:
        """Drop the cached route for ``tenant`` (control-plane push)."""
        self._routing.pop(tenant, None)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def handle(self, conn: RouterConnection, sql: str,
               cpu_cost: Optional[float] = None
               ) -> Generator[Any, Any, SessionResult]:
        """Proxy one statement; raises :class:`RouterCrashed` if this
        shard dies while the request is in its hands."""
        if self.crashed:
            raise RouterCrashed(self.name)
        self.metrics.counter("router.requests").inc()
        statement = parse(sql)
        blocked = 0.0
        if isinstance(statement, Begin):
            # The routing decision point: resolve (and, if stale,
            # re-resolve) the owner, then admit or park.
            blocked += yield from self._route(conn.tenant)
            if self.middleware.draining(conn.tenant):
                if self.parked >= self.config.park_capacity:
                    self.metrics.counter("router.park_rejects").inc()
                    self._observe_downtime(blocked)
                    return SessionResult(
                        kind="error",
                        error="router %s: park queue full" % self.name)
                waited, timed_out = yield from self._park(conn.tenant)
                blocked += waited
                if timed_out:
                    self.metrics.counter("router.park_timeouts").inc()
                    self.tracer.event("router.park_timeout",
                                      shard=self.name, tenant=conn.tenant,
                                      waited=waited)
                    self._observe_downtime(blocked)
                    return SessionResult(
                        kind="error",
                        error="router %s: parked request timed out "
                              "after %.1f s" % (self.name, waited))
                # The handover may have moved the owner while we waited.
                blocked += yield from self._route(conn.tenant)
        result = yield from self.middleware.submit(conn.inner, sql,
                                                   cpu_cost)
        if self.crashed:
            # The reply is sitting in a dead shard's buffers.  An
            # executed COMMIT took effect without anyone being told:
            # count it so tests can bound effects by acks + drops.
            if isinstance(statement, Commit) and result.ok:
                self.metrics.counter("router.acks_dropped").inc()
            raise RouterCrashed(self.name)
        if blocked > 0:
            self._observe_downtime(blocked)
        return result

    # ------------------------------------------------------------------
    def _route(self, tenant: str) -> Generator[Any, Any, float]:
        """Resolve the owner; pay for (and count) stale cache entries.

        A stale entry means the BEGIN bounces off the old master, which
        answers "not the owner" — one wasted round trip, a counter, and
        a retry against the authoritative placement.  Never a silent
        misroute: the loop only exits once the cached entry matches the
        journal-resolved owner at the instant of the check.
        """
        blocked = 0.0
        owner = self.middleware.owners(tenant)[0]
        cached = self._routing.get(tenant)
        while cached is not None and cached != owner:
            start = self.env.now
            self.metrics.counter("router.stale_routes").inc()
            self.tracer.event("router.stale_route", shard=self.name,
                              tenant=tenant, cached=cached, owner=owner)
            yield from self.middleware.cluster.network.round_trip()
            if self.crashed:
                raise RouterCrashed(self.name)
            blocked += self.env.now - start
            cached = owner
            owner = self.middleware.owners(tenant)[0]
        self._routing[tenant] = owner
        return blocked

    def _park(self, tenant: str
              ) -> Generator[Any, Any, Tuple[float, bool]]:
        """Hold one BEGIN in the bounded queue until the drain ends.

        Returns ``(waited_seconds, timed_out)``.  Capped exponential
        backoff between re-checks keeps parked requests from stampeding
        the instant the gate reopens; a shard crash wakes every parked
        request immediately (they were never acknowledged, so failing
        them loses nothing).
        """
        start = self.env.now
        deadline = start + self.config.park_timeout
        attempt = 0
        self.parked += 1
        self.metrics.gauge("router.parked").inc()
        self.tracer.event("router.parked", shard=self.name,
                          tenant=tenant, queue=self.parked)
        try:
            while self.middleware.draining(tenant):
                now = self.env.now
                if now >= deadline:
                    return now - start, True
                delay = min(self.config.retry_cap,
                            self.config.retry_base * (2 ** attempt))
                delay = min(delay, deadline - now)
                attempt += 1
                yield self.env.any_of([self.env.timeout(delay),
                                       self._crash_event])
                if self.crashed:
                    raise RouterCrashed(self.name)
            return self.env.now - start, False
        finally:
            self.parked -= 1
            self.metrics.gauge("router.parked").dec()

    def _observe_downtime(self, blocked: float) -> None:
        self.metrics.counter("router.blocked_requests").inc()
        self.metrics.quantile_histogram("router.downtime").observe(
            blocked)
