"""Figure 9: Madeus migration time versus database size, heavy workload.

Shape checks (paper: 101 / 496 / 1365 / 3536 s for 0.8 / 3.1 / 6.2 /
12 GB): migration time grows *superlinearly* with database size — the
restore (inserts + attribute alters + index builds) is slower than the
dump, and the longer it takes the more syncsets pile up.
"""

import pytest

from repro.experiments import dbsize


def test_fig09_migration_time_vs_size(benchmark, profile, publish):
    results = benchmark.pedantic(
        dbsize.run_figure9, kwargs={"profile": profile},
        rounds=1, iterations=1)
    publish("fig09_dbsize", dbsize.report_fig9(results, profile))
    times = [r.migration_time for r in results]
    sizes = [r.size_mb for r in results]
    assert all(t is not None for t in times)
    # monotone growth
    assert times == sorted(times)
    # superlinear: time ratio exceeds size ratio between the extreme
    # points (paper: 35x time for 15x size)
    size_ratio = sizes[-1] / sizes[0]
    time_ratio = times[-1] / times[0]
    assert time_ratio > size_ratio * 1.2
    # per-step growth factors echo the paper's (4.9, 2.75, 2.59)
    for earlier, later in zip(times, times[1:]):
        assert later / earlier > 1.8
    benchmark.extra_info["migration_s_by_size_gb"] = {
        round(s / 1000.0, 2): round(t, 1)
        for s, t in zip(sizes, times)}
