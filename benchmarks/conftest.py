"""Shared fixtures for the benchmark harness.

Benchmarks default to the ``quick`` profile (windows and database sizes
scaled down ~8x, EBs ~10x with proportionally shorter think times, so
utilisation and every qualitative shape are preserved).  Set
``REPRO_PROFILE=paper`` to run at full paper scale.

Every benchmark writes its rendered report to
``benchmarks/results/<name>.txt`` (in addition to stdout), so the
regenerated tables and series survive pytest's output capture.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get_profile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def profile():
    """The experiment profile benchmarks run at."""
    return get_profile()


@pytest.fixture(scope="session")
def results_dir():
    """Directory collecting the rendered per-figure reports."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Callable writing a named report to disk and stdout."""
    def _publish(name: str, text: str) -> None:
        path = os.path.join(results_dir, "%s.txt" % name)
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)
    return _publish
