"""Figures 7 and 8: response-time and throughput timelines during a
Madeus migration under heavy workload.

Shape checks (paper):

* response time *during* migration is only slightly above normal
  operation (the paper calls the overhead "quite small");
* throughput during migration stays close to normal;
* the run completes with a consistent switch-over;
* with checkpointing enabled, at least one checkpoint fires (the
  "whisker" the paper points out exceeds migration overhead).
"""

import pytest

from repro.experiments import performance

_CACHE = {}


def _timeline(profile):
    if "result" not in _CACHE:
        _CACHE["result"] = performance.run_timeline(profile,
                                                    paper_ebs=700,
                                                    checkpoints=True)
    return _CACHE["result"]


def test_fig07_response_timeline(benchmark, profile, publish):
    result = benchmark.pedantic(_timeline, args=(profile,),
                                rounds=1, iterations=1)
    publish("fig07_response_timeline",
            performance.report_fig7(result, profile))
    assert result.report is not None
    assert result.report.consistent is True
    # migration overhead is small: during-migration mean RT within 2x
    # of the pre-migration mean (paper: "only slightly longer")
    assert result.rt_during < 2.0 * max(result.rt_before, 1e-9)
    benchmark.extra_info["rt_ms"] = {
        "before": round(result.rt_before * 1000, 1),
        "during": round(result.rt_during * 1000, 1),
        "after": round(result.rt_after * 1000, 1)}


def test_fig08_throughput_timeline(benchmark, profile, publish):
    result = benchmark.pedantic(_timeline, args=(profile,),
                                rounds=1, iterations=1)
    publish("fig08_throughput_timeline",
            performance.report_fig8(result, profile))
    # throughput during migration within 25% of normal processing
    assert result.tput_during > 0.75 * result.tput_before
    # the slave was warm at switch-over: post-migration throughput does
    # not collapse
    assert result.tput_after > 0.7 * result.tput_before
    # at least one checkpoint fired during the run
    assert result.checkpoints >= 1
    benchmark.extra_info["tput"] = {
        "before": round(result.tput_before, 1),
        "during": round(result.tput_during, 1),
        "after": round(result.tput_after, 1)}
