"""Ablations: isolating each design choice DESIGN.md calls out.

1. LSIR ingredients — recovering the four middlewares of Table 2 from
   one parameterised propagator at the medium workload shows each
   feature's marginal contribution (MIN, CON-FW, CON-COM).
2. Group commit — disabling the slave DBMS's group commit removes most
   of Madeus's CON-COM advantage, demonstrating the paper's causal
   claim that concurrent commit propagation matters *because* it
   enables group commit.
"""

import pytest

from repro.cluster.node import NodeSpec
from repro.core.policy import (B_ALL, B_CON, B_MIN, MADEUS,
                               PropagationPolicy)
from repro.experiments import TenantSetup, build_testbed
from repro.experiments.migration_time import run_one
from repro.metrics.report import format_table

ABLATION_EBS = 400


def _migrate_with_group_commit(profile, group_commit):
    """Madeus migration with the slave's group commit toggled."""
    testbed = build_testbed(
        profile, [TenantSetup("A", "node0", paper_ebs=700)],
        policy=MADEUS)
    # rebuild node1 without group commit by flipping the WAL flag
    testbed.node("node1").instance.wal.group_commit = group_commit
    warmup = max(2.0, profile.duration(30.0))
    testbed.run(until=warmup)
    outcome = testbed.migrate_async("A", "node1")
    cap = warmup + profile.catchup_deadline + profile.duration(600.0)
    testbed.run_until(lambda: "done" in outcome, step=5.0, cap=cap)
    return outcome.get("report")


def test_ablation_lsir_ingredients(benchmark, profile, publish):
    """Each added LSIR feature must not hurt, and the full rule wins."""
    def run_ladder():
        return {policy.name: run_one(policy, ABLATION_EBS, profile)
                for policy in (B_ALL, B_MIN, B_CON, MADEUS)}
    ladder = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    rows = []
    for name in ("B-ALL", "B-MIN", "B-CON", "Madeus"):
        result = ladder[name]
        rows.append([name,
                     result.migration_time
                     if result.migration_time is not None else None,
                     result.syncsets, result.mean_group_size])
    publish("ablation_lsir", format_table(
        ["policy (cumulative features)", "migration [s]", "syncsets",
         "group size"],
        rows,
        title="Ablation - LSIR ingredients at %d paper-EBs (profile=%s)"
              % (ABLATION_EBS, profile.name)))
    # MIN helps: fewer operations to replay -> faster than B-ALL
    assert ladder["B-MIN"].migration_time < \
        ladder["B-ALL"].migration_time
    # CON-FW *without* CON-COM hurts (commit mutex competition): the
    # paper's surprising B-CON result
    assert (ladder["B-CON"].migration_time is None
            or ladder["B-CON"].migration_time
            > ladder["B-MIN"].migration_time)
    # the full LSIR wins
    assert ladder["Madeus"].migration_time < \
        ladder["B-MIN"].migration_time


def test_ablation_group_commit(benchmark, profile, publish):
    """Madeus with the slave's group commit disabled loses (much of)
    its advantage — CON-COM matters because of group commit."""
    def run_pair():
        with_gc = _migrate_with_group_commit(profile, True)
        without_gc = _migrate_with_group_commit(profile, False)
        return with_gc, without_gc
    with_gc, without_gc = benchmark.pedantic(run_pair, rounds=1,
                                             iterations=1)
    assert with_gc is not None and without_gc is not None
    rows = [
        ["enabled", with_gc.migration_time, with_gc.slave_flush_count,
         with_gc.slave_mean_group_size],
        ["disabled", without_gc.migration_time,
         without_gc.slave_flush_count,
         without_gc.slave_mean_group_size],
    ]
    publish("ablation_group_commit", format_table(
        ["slave group commit", "migration [s]", "WAL flushes",
         "mean group"],
        rows,
        title="Ablation - slave group commit under Madeus at 700 "
              "paper-EBs (profile=%s)" % profile.name))
    # grouping actually happened when enabled
    assert with_gc.slave_mean_group_size > 1.0
    assert without_gc.slave_mean_group_size == pytest.approx(1.0)
    # and it paid off in catch-up time
    assert with_gc.catchup_time <= without_gc.catchup_time * 1.05
    assert with_gc.slave_flush_count < without_gc.slave_flush_count
