"""Figure 6: migration time of B-ALL / B-MIN / B-CON / Madeus under
light / medium / heavy workloads.

Shape checks against the paper (values at paper scale in parentheses):

* all four are close at light workload (~110 s);
* Madeus is near-flat across workloads (110/104/101) and the fastest at
  medium and heavy;
* B-ALL and B-MIN grow with load (304/959 and 221/332), with B-ALL the
  slower of the two;
* B-CON is slower than B-ALL at medium (703 vs 304) and fails to catch
  up at heavy (N/A);
* Madeus's advantage at heavy is large (paper: 9.5x vs B-ALL).
"""

import math

import pytest

from repro.core.policy import B_ALL, B_CON, B_MIN, MADEUS
from repro.experiments import migration_time

RESULTS = {}


@pytest.mark.parametrize("policy", [MADEUS, B_MIN, B_ALL, B_CON],
                         ids=lambda p: p.name)
def test_fig06_policy_row(benchmark, profile, policy):
    """One Figure-6 row: migrate at 100/400/700 paper-EBs."""
    row = benchmark.pedantic(
        migration_time.run_figure6,
        kwargs={"profile": profile, "eb_counts": (100, 400, 700),
                "policies": (policy,)},
        rounds=1, iterations=1)
    RESULTS[policy.name] = {r.paper_ebs: r for r in row}
    benchmark.extra_info["migration_s"] = {
        r.paper_ebs: (round(r.migration_time, 1)
                      if r.migration_time is not None else "N/A")
        for r in row}
    for result in row:
        if result.migration_time is not None:
            assert result.consistent is True


def test_fig06_shape(benchmark, publish, profile):
    """Cross-policy shape assertions over the grid collected above."""
    assert set(RESULTS) == {"Madeus", "B-MIN", "B-ALL", "B-CON"}, (
        "run the per-policy benchmarks first (pytest runs this file "
        "in order)")

    def time_of(policy, ebs):
        return RESULTS[policy][ebs].migration_time
    benchmark(time_of, "Madeus", 700)  # trivially timed lookup

    rows = []
    for name in ("B-ALL", "B-MIN", "B-CON", "Madeus"):
        cells = [time_of(name, ebs) for ebs in (100, 400, 700)]
        rows.append([name] + [c if c is not None else math.nan
                              for c in cells])
    from repro.metrics.report import format_table
    publish("fig06_migration_time", format_table(
        ["middleware", "100 EBs [s]", "400 EBs [s]", "700 EBs [s]"],
        rows, title="Figure 6 - migration time (profile=%s)"
        % profile.name))

    # light workload: all within 1.5x of each other
    light = [time_of(p, 100) for p in RESULTS]
    assert max(light) < 1.5 * min(light)
    # Madeus wins at medium and heavy
    for ebs in (400, 700):
        madeus = time_of("Madeus", ebs)
        for other in ("B-ALL", "B-MIN", "B-CON"):
            other_time = time_of(other, ebs)
            assert other_time is None or madeus < other_time
    # Madeus near-flat: heavy within 1.4x of light
    assert time_of("Madeus", 700) < 1.4 * time_of("Madeus", 100)
    # B-ALL and B-MIN grow with load; B-ALL slower than B-MIN
    assert time_of("B-ALL", 700) > time_of("B-ALL", 400) \
        > time_of("B-ALL", 100)
    assert time_of("B-MIN", 700) > time_of("B-MIN", 400)
    assert time_of("B-ALL", 700) > time_of("B-MIN", 700)
    # B-CON: slower than B-ALL at medium, N/A at heavy
    assert time_of("B-CON", 400) > time_of("B-ALL", 400)
    assert time_of("B-CON", 700) is None
    # the headline factor: Madeus much faster than B-ALL at heavy
    # (paper: 9.5x; require at least 4x)
    assert time_of("B-ALL", 700) > 4.0 * time_of("Madeus", 700)


def test_fig06_group_commit_grows_with_load(benchmark):
    """Mechanism check: Madeus's slave-side commit grouping increases
    with workload (the paper's explanation for the flat/decreasing
    curve)."""
    def fetch():
        return (RESULTS["Madeus"][100].mean_group_size,
                RESULTS["Madeus"][700].mean_group_size)
    light_group, heavy_group = benchmark(fetch)
    assert heavy_group > light_group
