"""Figures 10-19 and Section 5.6: the multi-tenant hot-spot experiment.

Case 1 (Figures 10-13): migrate the heavy tenant B off the hot node.
Case 2 (Figures 14-19): migrate a light tenant C instead.

Shape checks (paper):

* Case 1: light tenant A's response time *improves* after migration
  (the hot spot is resolved); tenant B improves on the fresh node;
  B's migration takes ~100 s (paper scale);
* Case 2: A and B stay slow (the hot spot remains: 900 EBs still hit
  node 0); only C improves; C's migration takes *longer* than B's
  (~130 s vs ~100 s);
* Section 5.6's answer — migrate the heavy tenant — follows from the
  measurements.
"""

import pytest

from repro.experiments import multitenant

_CACHE = {}


def _case(profile, tenant):
    if tenant not in _CACHE:
        _CACHE[tenant] = multitenant.run_case(tenant, profile)
    return _CACHE[tenant]


def test_fig10_13_case1_migrate_heavy(benchmark, profile, publish):
    case = benchmark.pedantic(_case, args=(profile, "B"),
                              rounds=1, iterations=1)
    publish("fig10_13_case1",
            multitenant.report_case(case, profile, "Figures 10-13"))
    assert case.report is not None
    assert case.report.consistent is True
    a = case.tenants["A"]
    b = case.tenants["B"]
    # the hot spot resolves: A gets faster once B is gone
    assert a.rt_after < a.rt_before
    # B improves on the empty node
    assert b.rt_after < b.rt_before
    # B's throughput does not collapse during migration
    assert b.tput_during > 0.6 * b.tput_before
    # A's responsiveness survives the migration window (paper: "the
    # response time of tenant A was not affected by migration")
    assert a.rt_during < 2.5 * a.rt_before
    benchmark.extra_info["case1_rt_ms"] = {
        t: [round(s.rt_before * 1000, 1), round(s.rt_during * 1000, 1),
            round(s.rt_after * 1000, 1)]
        for t, s in case.tenants.items()}


def test_fig14_19_case2_migrate_light(benchmark, profile, publish):
    case = benchmark.pedantic(_case, args=(profile, "C"),
                              rounds=1, iterations=1)
    publish("fig14_19_case2",
            multitenant.report_case(case, profile, "Figures 14-19"))
    assert case.report is not None
    assert case.report.consistent is True
    a = case.tenants["A"]
    b = case.tenants["B"]
    c = case.tenants["C"]
    # the hot spot remains: A and B see no big improvement
    assert a.rt_after > 0.6 * a.rt_before
    assert b.rt_after > 0.6 * b.rt_before
    # C improves dramatically alone on node 1
    assert c.rt_after < c.rt_before
    benchmark.extra_info["case2_rt_ms"] = {
        t: [round(s.rt_before * 1000, 1), round(s.rt_after * 1000, 1)]
        for t, s in case.tenants.items()}


def test_sec56_which_migration_is_better(benchmark, profile, publish):
    case1 = _case(profile, "B")
    case2 = _case(profile, "C")
    answer, reasons = benchmark(
        multitenant.which_migration_is_better, case1, case2)
    lines = ["Section 5.6 - which tenant should be migrated? -> "
             "the %s one" % answer]
    lines += ["  - %s" % reason for reason in reasons]
    lines.append("  case 1 (heavy B) migration: %.1f s"
                 % case1.migration_time)
    lines.append("  case 2 (light C) migration: %.1f s"
                 % case2.migration_time)
    publish("sec56_answer", "\n".join(lines))
    # the paper's conclusion
    assert answer == "heavy"
    # The paper additionally measured the heavy migration as *shorter*
    # (100 s vs 130 s) thanks to warm-cache effects; our substrate
    # reproduces the near-flatness but not the inversion (documented in
    # EXPERIMENTS.md), so the check here is the operational one: the
    # heavy migration is not substantially longer despite B carrying
    # 3.5x the load of C.
    assert case1.migration_time < 1.2 * case2.migration_time
