"""Figure 5: response time vs EBs and the light/medium/heavy banding.

Shape checks (paper):

* response time grows monotonically (after noise) with EBs;
* 100-300 EBs band light, 400-600 medium, 700-1000 heavy under the
  profile-scaled 2-second rule;
* throughput saturates past the knee.
"""

from repro.experiments import preliminary

EB_SWEEP = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)


def test_fig05_preliminary_sweep(benchmark, profile, publish):
    points = benchmark.pedantic(
        preliminary.run_preliminary,
        kwargs={"profile": profile, "eb_counts": EB_SWEEP},
        rounds=1, iterations=1)
    publish("fig05_preliminary", preliminary.report(points, profile))

    by_ebs = {p.paper_ebs: p for p in points}
    # banding matches the paper's reading of Figure 5
    matches = preliminary.bands_match(points)
    mismatched = [ebs for ebs, ok in matches.items() if not ok]
    assert len(mismatched) <= 1, (
        "band mismatches vs paper: %r" % mismatched)
    # monotone-ish growth: the heavy end is far above the light end
    assert by_ebs[1000].mean_response_time > \
        10 * by_ebs[100].mean_response_time
    # throughput saturates: 1000 EBs does not beat 700 EBs by much
    assert by_ebs[1000].throughput <= by_ebs[700].throughput * 1.15
    benchmark.extra_info["rt_ms_by_ebs"] = {
        p.paper_ebs: round(p.mean_response_time * 1000, 1)
        for p in points}
