"""Table 2: the middleware feature matrix.

Regenerates the MIN / CON-FW / CON-COM matrix from the policy objects
and checks it against the paper's table exactly.
"""

from repro.core import feature_matrix
from repro.experiments.migration_time import report_table2

PAPER_TABLE2 = {
    "B-ALL": (False, False, False),
    "B-MIN": (True, False, False),
    "B-CON": (True, True, False),
    "Madeus": (True, True, True),
}


def test_table2_feature_matrix(benchmark, publish):
    matrix = benchmark(feature_matrix)
    for name, (min_set, con_fw, con_com) in PAPER_TABLE2.items():
        assert matrix[name]["MIN"] is min_set
        assert matrix[name]["CON-FW"] is con_fw
        assert matrix[name]["CON-COM"] is con_com
    publish("table2_features", report_table2())
