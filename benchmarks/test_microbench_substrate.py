"""Classic microbenchmarks of the substrates (multi-round timing).

These are honest pytest-benchmark measurements of the building blocks:
kernel event throughput, parser speed, MVCC reads, and engine statement
execution.  They guard against performance regressions that would make
the paper-scale experiments impractical.
"""

import pytest

from repro.engine import DbmsInstance, Session, parse
from repro.engine.mvcc import VersionChain
from repro.sim import Environment


def test_kernel_event_throughput(benchmark):
    """Ping-pong processes: events processed per second."""
    def run():
        env = Environment()

        def ping(env):
            for _i in range(2000):
                yield env.timeout(1)
        env.process(ping(env))
        env.process(ping(env))
        env.run()
        return env.now
    result = benchmark(run)
    assert result == 2000


def test_parser_throughput(benchmark):
    sql = ("SELECT i_id, i_title, i_srp FROM item "
           "WHERE i_subject = 'subject7' ORDER BY i_title LIMIT 50")
    statement = benchmark(parse, sql)
    assert statement.table == "item"


def test_version_chain_read(benchmark):
    chain = VersionChain()
    for csn in range(1, 201):
        chain.install(csn, {"v": csn})
    row = benchmark(chain.read, 100)
    assert row == {"v": 100}


def test_engine_point_select(benchmark):
    env = Environment()
    instance = DbmsInstance(env, "n0")
    instance.create_tenant("T")
    session = Session(instance, "T")

    def setup(env):
        yield from session.execute(
            "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        yield from session.execute("BEGIN")
        for key in range(100):
            yield from session.execute(
                "INSERT INTO kv (k, v) VALUES (%d, %d)" % (key, key))
        yield from session.execute("COMMIT")
    env.process(setup(env))
    env.run()
    statement = parse("SELECT v FROM kv WHERE k = 42")

    def run_select():
        def proc(env):
            result = yield from session.execute(statement, cpu_cost=0.0)
            return result
        process = env.process(proc(env))
        env.run()
        return process.value
    result = benchmark(run_select)
    assert result.rows[0]["v"] == 42


def test_update_commit_cycle(benchmark):
    env = Environment()
    instance = DbmsInstance(env, "n0")
    instance.create_tenant("T")
    session = Session(instance, "T")

    def setup(env):
        yield from session.execute(
            "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        yield from session.execute("BEGIN")
        yield from session.execute("INSERT INTO kv (k, v) VALUES (0, 0)")
        yield from session.execute("COMMIT")
    env.process(setup(env))
    env.run()

    def cycle():
        def proc(env):
            yield from session.execute("BEGIN")
            yield from session.execute("SELECT v FROM kv WHERE k = 0")
            yield from session.execute(
                "UPDATE kv SET v = v + 1 WHERE k = 0")
            result = yield from session.execute("COMMIT")
            return result
        process = env.process(proc(env))
        env.run()
        return process.value
    result = benchmark(cycle)
    assert result.ok
