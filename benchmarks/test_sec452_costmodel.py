"""Section 4.5.2: the analytic LSIR cost model, cross-checked against a
measured propagation run.

Checks: Equation 4 equals Eq 3 - Eq 2 exactly; the gap is non-negative
and grows with load; and parameters extracted from a *real* simulated
migration (replay counters + WAL flush counts) satisfy the same
inequalities.
"""

import pytest

from repro.experiments.costmodel import (CostParameters, cost_all,
                                         cost_gap, cost_madeus,
                                         gap_identity_holds,
                                         gap_is_monotone_in_load,
                                         parameters_from_run)
from repro.experiments import TenantSetup, build_testbed
from repro.metrics.report import format_table


def test_sec452_cost_model(benchmark, profile, publish):
    def measured_parameters():
        testbed = build_testbed(
            profile, [TenantSetup("A", "node0", paper_ebs=700)])
        warmup = max(2.0, profile.duration(30.0))
        testbed.run(until=warmup)
        outcome = testbed.migrate_async("A", "node1")
        cap = warmup + profile.catchup_deadline + profile.duration(300.0)
        testbed.run_until(lambda: "done" in outcome, step=5.0, cap=cap)
        report = outcome["report"]
        ops_per_txn = (report.operations_propagated
                       / max(1, report.syncsets_propagated))
        fsync = testbed.node("node1").instance.disk.spec.fsync_latency
        return report, parameters_from_run(
            total_txns=report.syncsets_propagated,
            reads_per_txn=2.2,
            writes_per_txn=max(0.0, ops_per_txn - 2.0),
            flush_count=report.slave_flush_count,
            fsync_latency=fsync)
    report, params = benchmark.pedantic(measured_parameters,
                                        rounds=1, iterations=1)
    madeus_cost = cost_madeus(params)
    all_cost = cost_all(params)
    gap = cost_gap(params)
    rows = [
        ["N_total (syncsets)", params.total_txns],
        ["N' (grouped commits)", params.group_commits],
        ["C_madeus [s]", madeus_cost],
        ["C_ALL [s]", all_cost],
        ["gap = C_ALL - C_madeus [s]", gap],
        ["identity Eq4 == Eq3-Eq2", gap_identity_holds(params)],
        ["monotone in load", gap_is_monotone_in_load(params)],
    ]
    publish("sec452_costmodel", format_table(
        ["quantity", "value"], rows,
        title="Section 4.5.2 - LSIR cost model from a measured run "
              "(profile=%s)" % profile.name))
    assert gap_identity_holds(params)
    assert gap >= 0
    assert all_cost >= madeus_cost
    assert gap_is_monotone_in_load(params)
    # heavy workload produced real commit grouping on the slave
    assert params.group_commits > 0
    assert report.consistent is True
