"""Table 3: database size versus TPC-W scale parameters.

The population model's sizes must land within 10% of the paper's
0.8 / 3.1 / 6.2 / 12 GB for the four (items, EBs) pairs.
"""

import pytest

from repro.experiments import dbsize
from repro.workload.tpcw import (PAPER_TABLE3, PopulationParams,
                                 nominal_database_size_mb)


def test_table3_database_sizes(benchmark, publish, profile):
    def compute():
        return [(entry, nominal_database_size_mb(
            PopulationParams(items=entry["items"], ebs=entry["ebs"])))
            for entry in PAPER_TABLE3]
    sizes = benchmark(compute)
    publish("table3_dbsize", dbsize.report_table3(profile))
    for entry, size_mb in sizes:
        assert size_mb / 1000.0 == pytest.approx(entry["size_gb"],
                                                 rel=0.10), entry
