"""Hot-spot rebalancing: the paper's Section 5.6 scenario as an example.

Node 0 hosts three TPC-W tenants: B is heavy (the hot spot driver),
A and C are light.  We compare the two remedies the paper evaluates —
migrating the heavy tenant vs migrating a light one — and print the
per-tenant response times before and after each, ending with the
paper's operational rule: *migrate the heavy tenant*.

Run with::

    python examples/hotspot_rebalance.py            # quick profile
    REPRO_PROFILE=smoke python examples/hotspot_rebalance.py
"""

from repro.experiments import get_profile
from repro.experiments.multitenant import (report_case, run_case,
                                           which_migration_is_better)


def main() -> None:
    profile = get_profile()
    print("profile: %s (set REPRO_PROFILE=paper for full scale)\n"
          % profile.name)

    print("Case 1 - migrate the HEAVY tenant (B, 700 paper-EBs)...")
    case1 = run_case("B", profile)
    print(report_case(case1, profile, "Case 1"))
    print()

    print("Case 2 - migrate a LIGHT tenant (C, 200 paper-EBs)...")
    case2 = run_case("C", profile)
    print(report_case(case2, profile, "Case 2"))
    print()

    answer, reasons = which_migration_is_better(case1, case2)
    print("=> migrate the %s tenant." % answer.upper())
    for reason in reasons:
        print("   - %s" % reason)


if __name__ == "__main__":
    main()
