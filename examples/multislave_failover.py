"""Multi-slave migration with a standby failure (paper Section 4.2).

Madeus can propagate syncsets to multiple slaves at the same time; if a
slave fails mid-migration, it is discarded and the migration continues
with the others.  This example migrates a tenant to node1 while also
feeding node2 as a warm standby replica, injects a failure into the
standby halfway through, and shows the primary migration completing
consistently regardless.  It then re-runs without the failure to show
both replicas ending bit-identical.

Run with::

    python examples/multislave_failover.py
"""

from repro import (Cluster, Environment, MADEUS, Middleware,
                   MiddlewareConfig, MigrationOptions, TransferRates)
from repro.core import states_equal
from repro.workload.simplekv import (KvWorkloadConfig, run_kv_clients,
                                     setup_kv_tenant)

RATES = TransferRates(dump_mb_s=5.0, restore_mb_s=2.0)


def run(inject_failure: bool) -> None:
    env = Environment()
    cluster = Cluster(env)
    for index in range(3):
        cluster.add_node("node%d" % index)
    middleware = Middleware(env, cluster, MiddlewareConfig(policy=MADEUS))
    holder = {}

    def scenario(env):
        yield from setup_kv_tenant(cluster.node("node0").instance,
                                   "acme", keys=40)
        cluster.node("node0").instance.tenant(
            "acme").fixed_overhead_mb = 2.0
        middleware.register_tenant("acme", "node0")
        run_kv_clients(env, middleware, "acme",
                       KvWorkloadConfig(keys=40, clients=6,
                                        transactions_per_client=120,
                                        think_time=0.01),
                       seed=3)
        yield env.timeout(0.1)
        if inject_failure:
            def failer(env):
                state = middleware.tenant_state("acme")
                while not state.standby_propagators:
                    yield env.timeout(0.05)
                middleware.fail_standby("acme", "node2")
                print("  !! standby node2 failed and was discarded")
            env.process(failer(env))
        report = yield from middleware.migrate(
            "acme", "node1", MigrationOptions(rates=RATES,
                                              standbys=["node2"]))
        holder["report"] = report

    env.process(scenario(env))
    env.run()
    report = holder["report"]
    print("  migration: %.3f s, primary consistent: %s"
          % (report.migration_time, report.consistent))
    print("  failed standbys: %s" % (report.failed_standbys or "none"))
    if report.standby_consistency:
        print("  standby consistency: %s" % report.standby_consistency)
        equal, _diffs = states_equal(
            cluster.node("node1").instance.tenant("acme"),
            cluster.node("node2").instance.tenant("acme"))
        print("  primary == standby replica: %s" % equal)
    print("  tenant routed to: %s" % middleware.route("acme"))


def main() -> None:
    print("case A: both slaves survive")
    run(inject_failure=False)
    print()
    print("case B: the standby fails mid-migration")
    run(inject_failure=True)


if __name__ == "__main__":
    main()
