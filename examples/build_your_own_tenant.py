"""Using the engine + middleware API directly: a custom tenant schema.

Shows the lower-level public API a downstream user would build on:

* defining a schema with the mini-SQL DDL,
* driving transactions through the middleware proxy (classification,
  SSB bookkeeping and all),
* inspecting snapshot-isolation behaviour (a first-updater-wins abort),
* live-migrating the tenant and then verifying the slave's state
  yourself with the theory layer's ``states_equal``.

Run with::

    python examples/build_your_own_tenant.py
"""

from repro import (Cluster, Environment, MADEUS, Middleware,
                   MiddlewareConfig, MigrationOptions, TransferRates)
from repro.core import states_equal
from repro.engine import Session


def main() -> None:
    env = Environment()
    cluster = Cluster(env)
    source = cluster.add_node("node0")
    destination = cluster.add_node("node1")
    middleware = Middleware(env, cluster, MiddlewareConfig(policy=MADEUS))

    notes = []

    def scenario(env):
        # --- schema + seed data via a direct engine session ----------
        instance = source.instance
        instance.create_tenant("ledger")
        admin = Session(instance, "ledger")
        yield from admin.execute(
            "CREATE TABLE account (id INT PRIMARY KEY, owner VARCHAR, "
            "balance INT)")
        yield from admin.execute(
            "CREATE INDEX idx_owner ON account (owner)")
        yield from admin.execute("BEGIN")
        for account_id, owner in enumerate(["ada", "bob", "cyd"]):
            yield from admin.execute(
                "INSERT INTO account (id, owner, balance) "
                "VALUES (%d, '%s', 100)" % (account_id, owner))
        yield from admin.execute("COMMIT")
        middleware.register_tenant("ledger", "node0")

        # --- a transfer through the middleware ------------------------
        conn = middleware.connect("ledger")
        yield from middleware.submit(conn, "BEGIN")
        yield from middleware.submit(
            conn, "SELECT balance FROM account WHERE id = 0")
        yield from middleware.submit(
            conn, "UPDATE account SET balance = balance - 30 WHERE id = 0")
        yield from middleware.submit(
            conn, "SELECT balance FROM account WHERE id = 1")
        yield from middleware.submit(
            conn, "UPDATE account SET balance = balance + 30 WHERE id = 1")
        result = yield from middleware.submit(conn, "COMMIT")
        notes.append("transfer committed: %s" % result.ok)

        # --- a write-write conflict: first-updater-wins ---------------
        red = middleware.connect("ledger")
        blue = middleware.connect("ledger")

        def red_txn(env):
            yield from middleware.submit(red, "BEGIN")
            yield from middleware.submit(
                red, "SELECT balance FROM account WHERE id = 2")
            yield from middleware.submit(
                red, "UPDATE account SET balance = balance - 1 "
                     "WHERE id = 2")
            yield env.timeout(0.05)
            result = yield from middleware.submit(red, "COMMIT")
            notes.append("red commit ok: %s" % result.ok)
        env.process(red_txn(env))
        yield env.timeout(0.01)
        yield from middleware.submit(blue, "BEGIN")
        yield from middleware.submit(
            blue, "SELECT balance FROM account WHERE id = 2")
        result = yield from middleware.submit(
            blue, "UPDATE account SET balance = balance + 1 WHERE id = 2")
        notes.append("blue update aborted by first-updater-wins: %s"
                     % (not result.ok))
        yield env.timeout(0.1)

        # --- live migration + explicit consistency check --------------
        report = yield from middleware.migrate(
            "ledger", "node1", MigrationOptions(
                rates=TransferRates(dump_mb_s=5.0, restore_mb_s=2.0)))
        equal, differences = states_equal(
            source.instance.tenant("ledger"),
            destination.instance.tenant("ledger"))
        notes.append("migration time: %.4f s" % report.migration_time)
        notes.append("states equal after switch-over: %s" % equal)
        if differences:
            notes.extend(differences)

    env.process(scenario(env))
    env.run()
    for note in notes:
        print(note)
    print("ledger is now served by:", middleware.route("ledger"))


if __name__ == "__main__":
    main()
