"""Compare the four propagation policies on one migration (Figure 6).

Migrates the same TPC-W tenant under the same medium workload with each
of B-ALL, B-MIN, B-CON, and Madeus, and prints the resulting migration
times, replay volumes, and group-commit ratios — a minimal version of
the paper's Figure 6 experiment.

Run with::

    python examples/compare_policies.py               # quick profile
    REPRO_PROFILE=smoke python examples/compare_policies.py
"""

from repro import ALL_POLICIES
from repro.experiments import get_profile
from repro.experiments.migration_time import run_one
from repro.metrics.report import format_table

PAPER_EBS = 400  # the paper's "medium" workload


def main() -> None:
    profile = get_profile()
    print("profile: %s — migrating one 800-MB-class tenant at %d "
          "paper-EBs under each policy\n" % (profile.name, PAPER_EBS))
    rows = []
    for policy in ALL_POLICIES:
        print("  running %s ..." % policy.name, flush=True)
        result = run_one(policy, PAPER_EBS, profile)
        rows.append([
            policy.name,
            result.migration_time if result.migration_time is not None
            else None,
            result.dump_time + result.restore_time,
            result.catchup_time,
            result.syncsets,
            result.mean_group_size,
            result.consistent,
        ])
    print()
    print(format_table(
        ["policy", "migration [s]", "dump+restore [s]", "catch-up [s]",
         "syncsets", "group", "consistent"],
        rows, title="Policy comparison (N/A = slave never caught up)"))
    print("\nReading: MIN trims the replay volume (B-ALL vs B-MIN); "
          "serialised commits squander the concurrency B-CON adds; "
          "Madeus's concurrent commits unlock group commit and win.")


if __name__ == "__main__":
    main()
