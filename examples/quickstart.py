"""Quickstart: migrate a live tenant with Madeus in ~60 lines.

Builds a two-node cluster, creates a small key-value tenant, runs a few
clients through the middleware, live-migrates the tenant to the empty
node while they keep working, and prints the migration report.

Run with::

    python examples/quickstart.py
"""

from repro import (Cluster, Environment, MADEUS, Middleware,
                   MiddlewareConfig, MigrationOptions, TransferRates)
from repro.workload.simplekv import (KvWorkloadConfig, run_kv_clients,
                                     setup_kv_tenant)


def main() -> None:
    env = Environment()
    cluster = Cluster(env)
    cluster.add_node("node0")   # source (master)
    cluster.add_node("node1")   # destination (slave)
    middleware = Middleware(env, cluster, MiddlewareConfig(policy=MADEUS))

    holder = {}

    def scenario(env):
        # 1. create and register a tenant on node0
        yield from setup_kv_tenant(cluster.node("node0").instance,
                                   "acme", keys=50)
        middleware.register_tenant("acme", "node0")

        # 2. clients keep issuing transactions through the middleware
        workload = run_kv_clients(
            env, middleware, "acme",
            KvWorkloadConfig(keys=50, clients=8,
                             transactions_per_client=100,
                             think_time=0.02),
            seed=7)

        # 3. live-migrate while they run
        yield env.timeout(0.2)
        report = yield from middleware.migrate(
            "acme", "node1", MigrationOptions(
                rates=TransferRates(dump_mb_s=5.0, restore_mb_s=2.0)))
        holder["report"] = report
        holder["workload"] = workload

    env.process(scenario(env))
    env.run()

    report = holder["report"]
    workload = holder["workload"]
    print("migrated %r: %s -> %s under %s" % (
        report.tenant, report.source, report.destination, report.policy))
    print("  migration time : %.3f s  (dump %.3f, restore %.3f, "
          "catch-up %.3f, switch %.3f)"
          % (report.migration_time, report.dump_time, report.restore_time,
             report.catchup_time, report.switch_time))
    print("  syncsets       : %d (%d operations replayed)"
          % (report.syncsets_propagated, report.operations_propagated))
    print("  group commit   : %.2f commits per slave WAL flush"
          % report.slave_mean_group_size)
    print("  consistent     : %s  (Theorem 2 check)" % report.consistent)
    print("  client commits : %d update / %d read-only / %d aborted"
          % (workload.committed_txns, workload.read_only_txns,
             workload.aborted_txns))
    print("  tenant now routed to:", middleware.route("acme"))


if __name__ == "__main__":
    main()
