"""Unit tests for the control plane (:mod:`repro.control`): the load
watcher, the hysteresis hotspot detector, the cost-ranked planner, and
the service-mode scheduler that actuates its moves.

Planner/detector tests construct :class:`ClusterView` values directly —
they are pure functions of a view, so no simulation is needed.  The
watcher, static-load, and service-mode tests drive a small real
testbed."""

import pytest

from repro.cluster import Cluster
from repro.control import (
    ClusterView,
    HotspotDetector,
    LoadWatcher,
    Planner,
    RebalanceOptions,
    Rebalancer,
    imbalance_coefficient,
)
from repro.core import (
    MADEUS,
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
    MigrationScheduler,
    ScheduleOptions,
)
from repro.engine import TransferRates
from repro.errors import MigrationError
from repro.sim import Environment
from repro.workload.simplekv import setup_kv_tenant

RATES = TransferRates(dump_mb_s=8.0, restore_mb_s=4.0, base_mb=16.0)


def _view(node_loads, tenant_rates=None, tenant_nodes=None, at=0.0,
          window=1, flush_rates=None):
    return ClusterView(at=at, window=window,
                       tenant_rates=tenant_rates or {},
                       tenant_nodes=tenant_nodes or {},
                       node_loads=node_loads,
                       node_flush_rates=flush_rates or {})


class TestImbalanceCoefficient:
    def test_empty_and_idle_are_balanced(self):
        assert imbalance_coefficient({}) == 0.0
        assert imbalance_coefficient({"a": 0.0, "b": 0.0}) == 0.0

    def test_even_load_is_zero(self):
        assert imbalance_coefficient({"a": 3.0, "b": 3.0,
                                      "c": 3.0}) == 0.0

    def test_skew_is_positive_and_ordering_holds(self):
        mild = imbalance_coefficient({"a": 4.0, "b": 3.0, "c": 3.0})
        severe = imbalance_coefficient({"a": 8.0, "b": 1.0, "c": 1.0})
        assert 0.0 < mild < severe


class TestClusterView:
    def test_tenants_on_sorts_heaviest_first(self):
        view = _view({"n0": 5.0},
                     tenant_rates={"A": 1.0, "B": 3.0, "C": 1.0},
                     tenant_nodes={"A": "n0", "B": "n0", "C": "n0"})
        assert view.tenants_on("n0") == ["B", "A", "C"]
        assert view.tenants_on("n1") == []

    def test_imbalance_property_matches_function(self):
        loads = {"n0": 6.0, "n1": 1.0, "n2": 1.0}
        assert _view(loads).imbalance == imbalance_coefficient(loads)

    def test_views_are_immutable(self):
        with pytest.raises(Exception):
            _view({}).at = 9.0


class TestHotspotDetector:
    def test_enters_only_after_sustain_samples(self):
        detector = HotspotDetector(enter_ratio=1.5, exit_ratio=1.1,
                                   sustain=2, cooldown=10.0)
        loads = {"n0": 6.0, "n1": 1.0, "n2": 1.0, "n3": 0.0}
        assert detector.observe(_view(loads, at=1.0)) == []
        assert detector.observe(_view(loads, at=2.0)) == ["n0"]
        assert detector.is_hot("n0")

    def test_exact_enter_threshold_never_transitions(self):
        # mean = 2.0, enter threshold = 3.0; a load of exactly 3.0 must
        # never enter (strict comparison: dead band, not knife edge).
        detector = HotspotDetector(enter_ratio=1.5, exit_ratio=1.1,
                                   sustain=1, cooldown=0.0)
        loads = {"n0": 3.0, "n1": 2.0, "n2": 2.0, "n3": 1.0}
        for tick in range(5):
            assert detector.observe(_view(loads, at=float(tick))) == []

    def test_dead_band_keeps_a_hot_node_hot(self):
        # Enter at > 1.5x mean, exit only below 1.1x mean: a load that
        # falls between the thresholds must stay hot, not flap.
        detector = HotspotDetector(enter_ratio=1.5, exit_ratio=1.1,
                                   sustain=1, cooldown=10.0)
        hot = {"n0": 6.0, "n1": 1.0, "n2": 1.0, "n3": 0.0}
        assert detector.observe(_view(hot, at=1.0)) == ["n0"]
        between = {"n0": 2.6, "n1": 2.0, "n2": 2.0, "n3": 1.4}
        # mean 2.0 -> exit threshold 2.2 < 2.6 < enter threshold 3.0
        assert detector.observe(_view(between, at=2.0)) == ["n0"]

    def test_exit_starts_cooldown_preventing_reentry(self):
        detector = HotspotDetector(enter_ratio=1.5, exit_ratio=1.1,
                                   sustain=1, cooldown=10.0)
        hot = {"n0": 6.0, "n1": 1.0, "n2": 1.0, "n3": 0.0}
        even = {"n0": 2.0, "n1": 2.0, "n2": 2.0, "n3": 2.0}
        assert detector.observe(_view(hot, at=1.0)) == ["n0"]
        assert detector.observe(_view(even, at=2.0)) == []
        assert detector.cooling_until("n0") == 12.0
        # Spiking again inside the cooldown window must not re-enter.
        assert detector.observe(_view(hot, at=5.0)) == []
        assert detector.observe(_view(hot, at=11.0)) == []
        # After the window the streak accumulates again.
        assert detector.observe(_view(hot, at=13.0)) == ["n0"]

    def test_idle_cluster_has_no_hotspots(self):
        detector = HotspotDetector(sustain=1)
        loads = {"n0": 0.0, "n1": 0.0}
        assert detector.observe(_view(loads, at=1.0)) == []

    def test_min_load_floor_suppresses_tiny_clusters(self):
        detector = HotspotDetector(enter_ratio=1.5, exit_ratio=1.1,
                                   sustain=1, min_load=5.0)
        loads = {"n0": 4.0, "n1": 1.0, "n2": 1.0}
        assert detector.observe(_view(loads, at=1.0)) == []

    def test_hot_list_is_heaviest_first(self):
        detector = HotspotDetector(enter_ratio=1.2, exit_ratio=1.1,
                                   sustain=1)
        loads = {"n0": 5.0, "n1": 7.0, "n2": 0.5, "n3": 0.5}
        assert detector.observe(_view(loads, at=1.0)) == ["n1", "n0"]

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotDetector(enter_ratio=1.1, exit_ratio=1.1)
        with pytest.raises(ValueError):
            HotspotDetector(sustain=0)
        with pytest.raises(ValueError):
            HotspotDetector(cooldown=-1.0)


def _planner_bed(nodes=4, tenants=("A", "B", "C", "D", "E")):
    """A real testbed so the planner can read sizes and crash flags.

    Tenants A/B/C live on node0, D on node1, E on node2; node3 empty.
    """
    env = Environment()
    cluster = Cluster(env)
    for index in range(nodes):
        cluster.add_node("node%d" % index)
    middleware = Middleware(env, cluster, MiddlewareConfig(policy=MADEUS))
    placement = {"A": "node0", "B": "node0", "C": "node0",
                 "D": "node1", "E": "node2"}

    def setup(env):
        for tenant in tenants:
            node = placement[tenant]
            yield from setup_kv_tenant(
                cluster.node(node).instance, tenant, 4)
            middleware.register_tenant(tenant, node)
    env.process(setup(env))
    env.run()
    return env, cluster, middleware


def _planner_view(at=0.0):
    """node0 carries 6.0 (A/B/C at 2.0 each); node3 is idle."""
    return _view(
        {"node0": 6.0, "node1": 1.0, "node2": 1.0, "node3": 0.0},
        tenant_rates={"A": 2.0, "B": 2.0, "C": 2.0, "D": 1.0,
                      "E": 1.0},
        tenant_nodes={"A": "node0", "B": "node0", "C": "node0",
                      "D": "node1", "E": "node2"},
        at=at)


class TestPlanner:
    def test_moves_heaviest_tenant_to_least_loaded_node(self):
        _env, _cluster, middleware = _planner_bed()
        planner = Planner(middleware)
        moves = planner.plan(_planner_view(), ["node0"], now=0.0)
        assert len(moves) == 1
        move = moves[0]
        assert move.tenant == "A"          # ties break alphabetically
        assert move.source == "node0"
        assert move.destination == "node3"  # the idle node
        assert move.rate == 2.0
        assert move.size_mb > 0
        assert move.predicted_cost > 0

    def test_no_hot_nodes_means_no_moves(self):
        _env, _cluster, middleware = _planner_bed()
        planner = Planner(middleware)
        assert planner.plan(_planner_view(), [], now=0.0) == []
        assert planner.plan(_planner_view(), ["node0"], now=0.0,
                            budget=0) == []

    def test_refuses_moves_that_do_not_lower_variance(self):
        # One giant tenant: moving it would just relocate the hotspot
        # (destination after = 6.0 > source after = 0.0), so the
        # planner must propose nothing rather than churn.
        _env, _cluster, middleware = _planner_bed()
        planner = Planner(middleware)
        view = _view(
            {"node0": 6.0, "node1": 1.0, "node2": 1.0, "node3": 0.0},
            tenant_rates={"A": 6.0},
            tenant_nodes={"A": "node0"})
        assert planner.plan(view, ["node0"], now=0.0) == []

    def test_tenant_cooldown_blocks_immediate_remove(self):
        _env, _cluster, middleware = _planner_bed()
        planner = Planner(middleware, cooldown=30.0)
        planner.note_move("A", now=0.0)
        assert planner.in_cooldown("A", 10.0)
        moves = planner.plan(_planner_view(at=10.0), ["node0"],
                             now=10.0)
        assert [m.tenant for m in moves] == ["B"]
        # Expired cooldown frees the tenant again.
        assert not planner.in_cooldown("A", 31.0)
        moves = planner.plan(_planner_view(at=31.0), ["node0"],
                             now=31.0)
        assert [m.tenant for m in moves] == ["A"]

    def test_in_flight_tenants_are_skipped(self):
        _env, _cluster, middleware = _planner_bed()
        planner = Planner(middleware)
        moves = planner.plan(_planner_view(), ["node0"], now=0.0,
                             in_flight=["A", "B"])
        assert [m.tenant for m in moves] == ["C"]

    def test_excluded_destination_is_skipped_until_ttl(self):
        _env, _cluster, middleware = _planner_bed()
        planner = Planner(middleware, exclusion_ttl=60.0)
        planner.exclude_destination("node3", now=0.0)
        moves = planner.plan(_planner_view(at=1.0), ["node0"], now=1.0)
        assert moves[0].destination == "node1"  # next least-loaded
        assert planner.is_excluded("node3", 59.0)
        assert not planner.is_excluded("node3", 61.0)
        moves = planner.plan(_planner_view(at=61.0), ["node0"],
                             now=61.0)
        assert moves[0].destination == "node3"

    def test_crashed_node_is_never_a_destination(self):
        _env, _cluster, middleware = _planner_bed()
        _cluster.node("node3").instance.crash()
        planner = Planner(middleware)
        moves = planner.plan(_planner_view(), ["node0"], now=0.0)
        assert moves[0].destination == "node1"

    def test_idle_tenants_are_never_moved(self):
        _env, _cluster, middleware = _planner_bed()
        planner = Planner(middleware)
        view = _view(
            {"node0": 0.0, "node1": 0.0, "node2": 0.0, "node3": 0.0},
            tenant_rates={"A": 0.0, "B": 0.0},
            tenant_nodes={"A": "node0", "B": "node0"})
        assert planner.plan(view, ["node0"], now=0.0) == []

    def test_budget_caps_moves_cheapest_first(self):
        _env, _cluster, middleware = _planner_bed()
        planner = Planner(middleware)
        # Two hot nodes, budget one: keep only the cheapest move.
        view = _view(
            {"node0": 6.0, "node1": 6.0, "node2": 0.5, "node3": 0.0},
            tenant_rates={"A": 2.0, "B": 2.0, "C": 2.0, "D": 6.0,
                          "E": 0.5},
            tenant_nodes={"A": "node0", "B": "node0", "C": "node0",
                          "D": "node1", "E": "node2"},
            at=0.0)
        unlimited = planner.plan(view, ["node0", "node1"], now=0.0,
                                 budget=4)
        capped = planner.plan(view, ["node0", "node1"], now=0.0,
                              budget=1)
        assert len(capped) == 1
        assert capped[0].predicted_cost == min(
            m.predicted_cost for m in unlimited)

    def test_predicted_cost_grows_with_commit_rate(self):
        _env, _cluster, middleware = _planner_bed()
        planner = Planner(middleware)
        slow = _view({"node0": 1.0}, tenant_rates={"A": 1.0},
                     tenant_nodes={"A": "node0"},
                     flush_rates={"node0": 1.0})
        fast = _view({"node0": 50.0}, tenant_rates={"A": 50.0},
                     tenant_nodes={"A": "node0"},
                     flush_rates={"node0": 50.0})
        size = 8.0
        assert (planner.predicted_cost(fast, "A", size)
                > planner.predicted_cost(slow, "A", size)
                > 0.0)


class TestLoadWatcher:
    def _bed(self):
        env = Environment()
        cluster = Cluster(env)
        cluster.add_node("node0")
        cluster.add_node("node1")
        middleware = Middleware(env, cluster,
                                MiddlewareConfig(policy=MADEUS))

        def setup(env):
            for tenant, node in (("A", "node0"), ("B", "node1")):
                yield from setup_kv_tenant(
                    cluster.node(node).instance, tenant, 4)
                middleware.register_tenant(tenant, node)
        env.process(setup(env))
        env.run()
        return env, middleware

    def test_first_sample_baselines_at_zero_rates(self):
        env, middleware = self._bed()
        watcher = LoadWatcher(middleware, window=3)
        middleware.tenant_state("A").commits_seen = 10
        view = watcher.sample_once()
        assert view.tenant_rates == {"A": 0.0, "B": 0.0}
        assert view.node_loads == {"node0": 0.0, "node1": 0.0}

    def test_rates_are_counter_deltas_over_elapsed_time(self):
        env, middleware = self._bed()
        watcher = LoadWatcher(middleware, window=3)
        watcher.sample_once()
        middleware.tenant_state("A").commits_seen += 20
        env.run(until=env.now + 10.0)
        view = watcher.sample_once()
        assert view.tenant_rates["A"] == pytest.approx(2.0)
        assert view.tenant_rates["B"] == 0.0
        assert view.node_loads["node0"] == pytest.approx(2.0)
        assert view.tenant_nodes == {"A": "node0", "B": "node1"}
        assert view.imbalance > 0

    def test_window_smooths_rates(self):
        env, middleware = self._bed()
        watcher = LoadWatcher(middleware, window=2)
        watcher.sample_once()
        for delta in (40, 0):
            middleware.tenant_state("A").commits_seen += delta
            env.run(until=env.now + 10.0)
            view = watcher.sample_once()
        # window mean of [4.0, 0.0]
        assert view.tenant_rates["A"] == pytest.approx(2.0)
        assert watcher.view() is view

    def test_window_validation(self):
        env, middleware = self._bed()
        with pytest.raises(ValueError):
            LoadWatcher(middleware, window=0)


class TestServiceModeScheduler:
    def _bed(self):
        env = Environment()
        cluster = Cluster(env)
        for name in ("node0", "node1", "node2"):
            cluster.add_node(name)
        middleware = Middleware(env, cluster, MiddlewareConfig(
            policy=MADEUS, verify_consistency=True))

        def setup(env):
            for tenant in ("A", "B"):
                yield from setup_kv_tenant(
                    cluster.node("node0").instance, tenant, 6)
                middleware.register_tenant(tenant, "node0")
        env.process(setup(env))
        env.run()
        return env, middleware

    def test_submit_returns_player_and_outcome(self):
        env, middleware = self._bed()
        scheduler = MigrationScheduler(middleware, ScheduleOptions(
            migration=MigrationOptions(rates=RATES)))
        scheduler.start_service()
        assert scheduler.service_open
        holder = {}

        def control(env):
            player = scheduler.submit("A", "node1")
            holder["job"] = yield player
            holder["report"] = yield from scheduler.stop_service()
        env.process(control(env))
        env.run()
        assert holder["job"].outcome == "ok"
        assert holder["job"].tenant == "A"
        assert middleware.route("A") == "node1"
        report = holder["report"]
        assert report.ok_count == 1
        assert not scheduler.service_open

    def test_jobs_submitted_while_draining_are_awaited(self):
        env, middleware = self._bed()
        scheduler = MigrationScheduler(middleware, ScheduleOptions(
            migration=MigrationOptions(rates=RATES)))
        scheduler.start_service()
        holder = {}

        def late(env):
            # Well inside job A's transfer, so the drain is still live.
            yield env.timeout(0.01)
            scheduler.submit("B", "node2")

        def control(env):
            scheduler.submit("A", "node1")
            env.process(late(env))
            holder["report"] = yield from scheduler.stop_service()
        env.process(control(env))
        env.run()
        assert holder["report"].ok_count == 2
        assert middleware.route("B") == "node2"

    def test_service_over_pending_batch_is_rejected(self):
        env, middleware = self._bed()
        scheduler = MigrationScheduler(middleware)
        scheduler.submit("A", "node1")
        with pytest.raises(MigrationError):
            scheduler.start_service()

    def test_stop_without_service_is_rejected(self):
        env, middleware = self._bed()
        scheduler = MigrationScheduler(middleware)
        with pytest.raises(MigrationError):
            next(scheduler.stop_service())

    def test_batch_run_still_queues_and_returns_none(self):
        env, middleware = self._bed()
        scheduler = MigrationScheduler(middleware, ScheduleOptions(
            migration=MigrationOptions(rates=RATES)))
        assert scheduler.submit("A", "node1") is None
        proc = env.process(scheduler.run())
        env.run()
        assert proc.value.ok_count == 1


class TestStaticLoadStability:
    def test_even_load_produces_zero_moves(self):
        """A balanced cluster must never trigger the control plane."""
        env = Environment()
        cluster = Cluster(env)
        for index in range(4):
            cluster.add_node("node%d" % index)
        middleware = Middleware(env, cluster,
                                MiddlewareConfig(policy=MADEUS))
        tenants = ["T%d" % index for index in range(8)]

        def setup(env):
            for index, tenant in enumerate(tenants):
                node = "node%d" % (index % 4)
                yield from setup_kv_tenant(
                    cluster.node(node).instance, tenant, 4)
                middleware.register_tenant(tenant, node)
        env.process(setup(env))
        env.run()

        def offered(env):
            # Perfectly even synthetic load: every tenant commits at
            # the same rate, so no node ever crosses the hysteresis
            # enter threshold.  Bounded so the final env.run() drains.
            for _tick in range(35):
                yield env.timeout(1.0)
                for tenant in tenants:
                    middleware.tenant_state(tenant).commits_seen += 5
        env.process(offered(env))
        rebalancer = Rebalancer(middleware, RebalanceOptions(
            sample_interval=1.0, window=2, decide_every=2,
            cooldown=5.0))
        rebalancer.start()
        env.run(until=30.0)
        holder = {}

        def stop(env):
            holder["report"] = yield from rebalancer.stop()
        env.process(stop(env))
        env.run()
        report = holder["report"]
        assert report.samples >= 20
        assert report.decisions >= 10
        assert report.moves == []
        assert report.schedule is not None
        assert report.schedule.ok_count == 0
