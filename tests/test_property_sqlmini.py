"""Property-based round-trip tests for the mini-SQL parser/renderer:
``parse(render(ast)) == ast`` for randomly generated statements."""

from hypothesis import given, strategies as st

from repro.engine.render import render
from repro.engine.sqlmini import (Begin, BinaryOp, ColumnDef, ColumnRef,
                                  Commit, Comparison, CreateIndex,
                                  CreateTable, Delete, Insert, Literal,
                                  Rollback, Select, Update, parse)

identifier = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True) \
    .filter(lambda s: s.upper() not in {
        "SELECT", "FROM", "WHERE", "AND", "ORDER", "BY", "DESC", "ASC",
        "LIMIT", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        "BEGIN", "COMMIT", "ROLLBACK", "ABORT", "CREATE", "TABLE",
        "INDEX", "ON", "PRIMARY", "KEY", "ALTER", "ADD", "COLUMN",
        "NULL"})

literal_value = st.one_of(
    st.none(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"),
        whitelist_characters=" '_-"), max_size=12),
)

comparison = st.builds(
    Comparison,
    column=identifier,
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=literal_value.filter(lambda v: v is not None))

where_clause = st.lists(comparison, max_size=3).map(tuple)


@st.composite
def expression(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return ColumnRef(draw(identifier))
        return Literal(draw(st.integers(min_value=-100, max_value=100)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinaryOp(op, draw(expression(depth=depth - 1)),
                    draw(expression(depth=depth - 1)))


def _canonical_select(statement: Select) -> Select:
    """``descending`` is meaningless without ORDER BY; canonicalise it
    (the renderer cannot express the degenerate combination)."""
    if statement.order_by is None and statement.descending:
        import dataclasses
        return dataclasses.replace(statement, descending=False)
    return statement


select = st.builds(
    Select,
    table=identifier,
    columns=st.lists(identifier, max_size=3, unique=True).map(tuple),
    where=where_clause,
    order_by=st.one_of(st.none(), identifier),
    descending=st.booleans(),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=500))
).map(_canonical_select)


@st.composite
def insert(draw):
    columns = tuple(draw(st.lists(identifier, min_size=1, max_size=4,
                                  unique=True)))
    values = tuple(draw(literal_value) for _c in columns)
    return Insert(draw(identifier), columns, values)


@st.composite
def update(draw):
    assignments = tuple(
        (draw(identifier), draw(expression()))
        for _i in range(draw(st.integers(min_value=1, max_value=3))))
    return Update(draw(identifier), assignments, draw(where_clause))


delete = st.builds(Delete, table=identifier, where=where_clause)

create_table = st.builds(
    CreateTable,
    table=identifier,
    columns=st.lists(identifier, min_size=1, max_size=4, unique=True)
    .map(lambda names: tuple(
        ColumnDef(name, "INT", primary_key=(index == 0))
        for index, name in enumerate(names))))

create_index = st.builds(CreateIndex, name=identifier, table=identifier,
                         column=identifier)

transaction_statement = st.sampled_from([Begin(), Commit(), Rollback()])

any_statement = st.one_of(select, insert(), update(), delete,
                          create_table, create_index,
                          transaction_statement)


@given(statement=any_statement)
def test_parse_render_roundtrip(statement):
    """parse(render(ast)) == ast, except ROLLBACK/ABORT aliasing."""
    text = render(statement)
    reparsed = parse(text)
    assert reparsed == statement


@given(statement=any_statement)
def test_render_is_stable(statement):
    """Rendering is a fixed point: render(parse(render(x))) ==
    render(x)."""
    once = render(statement)
    twice = render(parse(once))
    assert once == twice


@given(value=literal_value)
def test_literal_roundtrip_through_insert(value):
    statement = Insert("t", ("a",), (value,))
    assert parse(render(statement)) == statement
