"""End-to-end observability: migrations emit ordered phase traces."""

import pytest

from repro.cli import main as cli_main
from repro.cluster import Cluster
from repro.core import (MADEUS, Middleware, MiddlewareConfig,
                        MigrationOptions)
from repro.engine.dump import TransferRates
from repro.errors import CatchUpTimeout
from repro.obs import check_phase_order, read_trace, write_trace
from repro.obs.trace import MIGRATION, PHASE, ROUND
from repro.workload.simplekv import (KvWorkloadConfig, run_kv_clients,
                                     setup_kv_tenant)

RATES = TransferRates(dump_mb_s=5.0, restore_mb_s=2.0)


def run_small_migration(env, policy=MADEUS, deadline=None,
                        migrate_after=0.1, clients=6, txns=60,
                        think_time=0.02):
    cluster = Cluster(env)
    cluster.add_node("node0")
    cluster.add_node("node1")
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=policy, catchup_deadline=deadline))
    for node_name in ("node0", "node1"):
        cluster.node(node_name).instance.bind_obs(middleware.metrics)
    holder = {}

    def main(env):
        yield from setup_kv_tenant(cluster.node("node0").instance,
                                   "A", 40)
        middleware.register_tenant("A", "node0")
        config = KvWorkloadConfig(keys=40, clients=clients,
                                  transactions_per_client=txns,
                                  read_only_ratio=0.4,
                                  think_time=think_time)
        run_kv_clients(env, middleware, "A", config, seed=42)
        yield env.timeout(migrate_after)
        try:
            holder["report"] = yield from middleware.migrate(
                "A", "node1", MigrationOptions(rates=RATES))
        except CatchUpTimeout as exc:
            holder["timeout"] = exc
    env.process(main(env))
    env.run()
    return middleware, holder


class TestMigrationPhaseTrace:
    def test_phases_ordered_with_nonzero_durations(self, env):
        middleware, holder = run_small_migration(env)
        assert "report" in holder
        assert check_phase_order(middleware.tracer.spans) == []
        phases = {s.name: s for s in middleware.tracer.phases()}
        assert set(phases) == {"dump", "restore", "catch-up",
                               "handover"}
        for name in ("dump", "restore", "handover"):
            assert phases[name].duration > 0, name
        assert phases["catch-up"].duration >= 0
        # the three acceptance phases appear strictly in order
        assert (phases["dump"].end <= phases["catch-up"].start
                <= phases["handover"].start)

    def test_phase_times_match_the_report(self, env):
        middleware, holder = run_small_migration(env)
        report = holder["report"]
        phases = {s.name: s for s in middleware.tracer.phases()}
        assert phases["dump"].start == report.started_at
        assert phases["dump"].end == report.snapshot_at
        assert phases["restore"].end == report.restored_at
        assert phases["catch-up"].end == report.caught_up_at
        assert phases["handover"].end == report.ended_at

    def test_migration_span_carries_propagation_stats(self, env):
        middleware, holder = run_small_migration(env)
        report = holder["report"]
        (migration,) = middleware.tracer.find(kind=MIGRATION)
        assert migration.attrs["outcome"] == "ok"
        assert migration.attrs["rounds"] == report.rounds
        assert (migration.attrs["max_concurrent_players"]
                == report.max_concurrent_players)
        assert migration.attrs["syncsets"] == report.syncsets_propagated
        registry = middleware.metrics
        assert (registry.gauge("propagation.rounds").value
                == report.rounds)
        assert (registry.gauge("propagation.players").max_value
                == report.max_concurrent_players)
        assert registry.counter("migration.completed").value == 1
        # the slave's WAL fsync path was observed
        assert registry.counter("node1.wal.flushes").value > 0
        assert registry.histogram("node1.wal.group_size").count > 0

    def test_madeus_records_round_spans(self, env):
        middleware, holder = run_small_migration(env)
        rounds = middleware.tracer.find(kind=ROUND)
        assert len(rounds) == holder["report"].rounds
        assert all(r.duration is not None and r.duration >= 0
                   for r in rounds)

    def test_aborted_migration_closes_spans(self, env, monkeypatch):
        # Force the no-catch-up outcome deterministically: with the
        # threshold below zero the conductor never reports caught-up,
        # so the deadline always fires (the paper's B-CON "N/A" path).
        from repro.core.propagation import Conductor
        monkeypatch.setattr(Conductor, "CATCHUP_THRESHOLD", -1)
        # A zero deadline is scheduled before the propagator's first
        # loop iteration, so it deterministically wins the race even
        # against an instant drain.
        middleware, holder = run_small_migration(env, deadline=0.0)
        assert "timeout" in holder
        (migration,) = middleware.tracer.find(kind=MIGRATION)
        assert migration.attrs["outcome"] == "aborted"
        phases = {s.name: s for s in middleware.tracer.phases()}
        assert phases["catch-up"].attrs["outcome"] == "timeout"
        assert all(s.end is not None
                   for s in middleware.tracer.spans
                   if s.kind in (MIGRATION, PHASE))

    def test_trace_cli_renders_exported_migration(self, env, tmp_path,
                                                  capsys):
        middleware, _holder = run_small_migration(env)
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, middleware.tracer, middleware.metrics,
                    meta={"policy": MADEUS.name})
        assert cli_main(["trace", path, "--check-phases"]) == 0
        output = capsys.readouterr().out
        assert "phase order: ok" in output
        assert "propagation rounds" in output


class TestTestbedTraceArtifacts:
    @pytest.mark.slow
    def test_migrate_async_exports_artifact(self, tmp_path, monkeypatch):
        from repro.experiments import SMOKE, TenantSetup, build_testbed
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        testbed = build_testbed(
            SMOKE, [TenantSetup("A", "node0", paper_ebs=100)])
        testbed.run(until=1.0)
        outcome = testbed.migrate_async("A", "node1")
        testbed.run_until(lambda: "done" in outcome, step=2.0,
                          cap=300.0)
        assert "report" in outcome
        path = outcome["trace_path"]
        assert path.endswith("_Madeus_A.jsonl")
        data = read_trace(path)
        assert data.meta["profile"] == "smoke"
        assert data.meta["tenant"] == "A"
        assert check_phase_order(data.spans) == []
        assert data.metric_value("propagation.rounds") >= 1
        assert data.metric_value("propagation.players", "max") >= 1
