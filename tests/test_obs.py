"""The observability subsystem: tracer, metrics, JSONL, CLI rendering."""

import io
import json

import pytest

from repro.obs import (MetricsRegistry, Tracer, check_phase_order,
                       read_trace, write_trace)
from repro.obs.timeline import render_report, render_timeline
from repro.obs.trace import PHASE, Span


class TestTracerSpans:
    def test_span_times_follow_sim_clock(self, env):
        tracer = Tracer(env)

        def proc(env):
            span = tracer.start("outer")
            yield env.timeout(5)
            tracer.finish(span)
        env.process(proc(env))
        env.run()
        (span,) = tracer.spans
        assert span.start == 0.0
        assert span.end == 5.0
        assert span.duration == 5.0
        assert not span.open

    def test_nesting_links_parent_and_children(self, env):
        tracer = Tracer(env)

        def proc(env):
            outer = tracer.start("outer")
            yield env.timeout(1)
            first = tracer.start("first", parent=outer)
            yield env.timeout(2)
            tracer.finish(first)
            second = tracer.start("second", parent=outer)
            yield env.timeout(3)
            tracer.finish(second)
            tracer.finish(outer)
        env.process(proc(env))
        env.run()
        outer = tracer.find("outer")[0]
        children = tracer.children(outer)
        assert [c.name for c in children] == ["first", "second"]
        assert children[0].start == 1.0 and children[0].end == 3.0
        assert children[1].start == 3.0 and children[1].end == 6.0
        # children nest inside the parent interval
        for child in children:
            assert outer.start <= child.start
            assert child.end <= outer.end

    def test_callable_clock_and_context_manager(self):
        now = {"t": 10.0}
        tracer = Tracer(lambda: now["t"])
        with tracer.span("section", colour="red") as span:
            now["t"] = 12.5
        assert span.start == 10.0 and span.end == 12.5
        assert span.attrs["colour"] == "red"

    def test_events_and_record_cap(self, env):
        tracer = Tracer(env, max_records=2)
        tracer.event("a")
        tracer.event("b")
        tracer.event("c")  # over the cap: dropped, not stored
        assert len(tracer.events) == 2
        assert tracer.dropped == 1
        # finishing spans still works at the cap
        span = tracer.start("late")
        tracer.finish(span)
        assert span.end is not None

    def test_open_span_has_no_duration(self, env):
        tracer = Tracer(env)
        span = tracer.start("open")
        assert span.open and span.duration is None


class TestPhaseOrderChecker:
    @staticmethod
    def _phase(span_id, name, start, end, parent=7):
        span = Span(span_id, name, PHASE, start, parent_id=parent)
        span.end = end
        return span

    def test_clean_phases_pass(self):
        spans = [self._phase(1, "dump", 0.0, 2.0),
                 self._phase(2, "catch-up", 3.0, 5.0),
                 self._phase(3, "handover", 5.0, 6.0)]
        assert check_phase_order(spans) == []

    def test_missing_phases_reported(self):
        assert check_phase_order([]) == ["no phase spans found"]

    def test_out_of_order_phases_reported(self):
        spans = [self._phase(1, "catch-up", 0.0, 1.0),
                 self._phase(2, "dump", 2.0, 3.0)]
        problems = check_phase_order(spans)
        assert problems and "expected order" in problems[0]

    def test_unfinished_phase_reported(self):
        span = Span(1, "dump", PHASE, 0.0, parent_id=7)
        problems = check_phase_order([span])
        assert problems == ["migration 7: phase 'dump' never finished"]

    def test_overlapping_phases_reported(self):
        spans = [self._phase(1, "dump", 0.0, 4.0),
                 self._phase(2, "catch-up", 3.0, 5.0)]
        problems = check_phase_order(spans)
        assert any("before" in p for p in problems)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(3)
        registry.gauge("g").set(1)
        histogram = registry.histogram("h")
        for value in (1.0, 2.0, 9.0):
            histogram.observe(value)
        assert registry.counter("c").value == 5
        assert registry.gauge("g").value == 1
        assert registry.gauge("g").max_value == 3
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(4.0)
        assert histogram.min == 1.0 and histogram.max == 9.0

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        for value in (1.0, 2.0):
            registry.histogram("h").observe(value)
        snapshot = registry.snapshot()
        # the stable read API: a flat {name: value} mapping
        assert snapshot == {"c": 2, "g": 7, "h": 1.5}
        registry.reset()
        # handles stay valid; values zero
        assert registry.counter("c").value == 0
        assert registry.gauge("g").max_value == 0
        assert registry.histogram("h").count == 0
        # the old snapshot is a copy, not a view
        assert snapshot["c"] == 2

    def test_gauge_value_reads_without_creating(self):
        registry = MetricsRegistry()
        registry.gauge("players").set(4)
        registry.counter("commits").inc(9)
        registry.histogram("h").observe(3.0)
        assert registry.gauge_value("players") == 4
        # counters carry a point value too
        assert registry.gauge_value("commits") == 9
        # histograms have no single current value -> default
        assert registry.gauge_value("h", default=-1.0) == -1.0
        # absent names yield the default and are NOT materialised
        assert registry.gauge_value("missing", default=2.5) == 2.5
        assert "missing" not in registry

    def test_absorb_dataclass_and_mapping(self):
        from repro.core.propagation import PropagationStats
        registry = MetricsRegistry()
        stats = PropagationStats(rounds=3, max_concurrent_players=9)
        registry.absorb("propagation", stats)
        assert registry.gauge("propagation.rounds").value == 3
        assert registry.gauge(
            "propagation.max_concurrent_players").value == 9
        # absorbing again tracks the new value without double counting
        stats.rounds = 5
        registry.absorb("propagation", stats)
        assert registry.gauge("propagation.rounds").value == 5
        registry.absorb("extra", {"a": 1.5, "skip": "text"})
        assert registry.gauge("extra.a").value == 1.5
        assert "extra.skip" not in registry


class TestJsonlRoundTrip:
    def _sample(self, env):
        tracer = Tracer(env)

        def proc(env):
            migration = tracer.start("migration", kind="migration",
                                     policy="Madeus")
            for name, length in (("dump", 2), ("restore", 1),
                                 ("catch-up", 3), ("handover", 1)):
                phase = tracer.phase(name, parent=migration)
                yield env.timeout(length)
                tracer.finish(phase)
            tracer.event("migration.switched", tenant="A")
            tracer.finish(migration, outcome="ok")
        env.process(proc(env))
        env.run()
        registry = MetricsRegistry()
        registry.counter("wal.flushes").inc(12)
        registry.gauge("propagation.rounds").set(4)
        registry.histogram("wal.group_size").observe(3.0)
        return tracer, registry

    def test_round_trip_preserves_everything(self, env, tmp_path):
        tracer, registry = self._sample(env)
        path = str(tmp_path / "trace.jsonl")
        count = write_trace(path, tracer, registry,
                            meta={"policy": "Madeus"})
        # meta + 5 spans + 1 event + 3 metrics
        assert count == 10
        data = read_trace(path)
        assert data.meta["policy"] == "Madeus"
        assert data.meta["version"] == 1
        assert len(data.spans) == 5
        assert len(data.events) == 1
        by_id = {s.span_id: s for s in data.spans}
        original = {s.span_id: s for s in tracer.spans}
        for span_id, span in by_id.items():
            assert span.name == original[span_id].name
            assert span.kind == original[span_id].kind
            assert span.start == original[span_id].start
            assert span.end == original[span_id].end
            assert span.parent_id == original[span_id].parent_id
            assert span.attrs == original[span_id].attrs
        assert data.metric_value("wal.flushes") == 12
        assert data.metric_value("propagation.rounds") == 4
        assert data.metrics["wal.group_size"]["count"] == 1
        assert check_phase_order(data.spans) == []

    def test_every_line_is_json(self, env, tmp_path):
        tracer, registry = self._sample(env)
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, tracer, registry)
        with open(path) as handle:
            for line in handle:
                record = json.loads(line)
                assert record["type"] in ("meta", "span", "event",
                                          "metric")

    def test_reader_skips_unknown_records(self):
        buffer = io.StringIO(
            '{"type": "meta", "version": 1}\n'
            '{"type": "wibble", "x": 1}\n'
            '\n'
            '{"type": "event", "time": 1.0, "name": "e"}\n')
        data = read_trace(buffer)
        assert len(data.events) == 1
        assert data.spans == []

    def test_render_report_mentions_phases(self, env):
        tracer, registry = self._sample(env)
        buffer = io.StringIO()
        write_trace(buffer, tracer, registry)
        buffer.seek(0)
        data = read_trace(buffer)
        report = render_report(data, source="inline")
        for needle in ("dump", "catch-up", "handover", "wal.flushes",
                       "phase timeline"):
            assert needle in report
        assert "migration" in render_timeline(data)
