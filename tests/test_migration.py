"""End-to-end live-migration tests across all four policies.

These are the core integration tests: each migration must leave the
slave's logical state equal to the master's final state (Theorem 2),
Madeus's replay schedule must satisfy the LSIR, and the migration
reports must be internally consistent.
"""

import pytest

from repro.cluster import Cluster
from repro.core import (ALL_POLICIES, B_ALL, B_CON, B_MIN, MADEUS,
                        Middleware, MiddlewareConfig,
                        MigrationOptions)
from repro.engine.dump import TransferRates
from repro.errors import CatchUpTimeout, MigrationError, RoutingError
from repro.sim import Environment, StreamFactory
from repro.workload.simplekv import (KvWorkloadConfig, run_kv_clients,
                                     setup_kv_tenant)

from _helpers import drive

RATES = TransferRates(dump_mb_s=5.0, restore_mb_s=2.0)


def build(env, policy, validate_lsir=True, deadline=None):
    cluster = Cluster(env)
    cluster.add_node("node0")
    cluster.add_node("node1")
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=policy, validate_lsir=validate_lsir,
        verify_consistency=True, catchup_deadline=deadline))
    return cluster, middleware


def run_migration(env, policy, *, clients=6, txns=60, read_ratio=0.4,
                  migrate_after=0.1, seed=42, validate=True):
    cluster, middleware = build(env, policy, validate_lsir=validate)
    holder = {}

    def main(env):
        yield from setup_kv_tenant(cluster.node("node0").instance, "A", 40)
        middleware.register_tenant("A", "node0")
        config = KvWorkloadConfig(keys=40, clients=clients,
                                  transactions_per_client=txns,
                                  read_only_ratio=read_ratio,
                                  think_time=0.02)
        workload = run_kv_clients(env, middleware, "A", config, seed=seed)
        yield env.timeout(migrate_after)
        report = yield from middleware.migrate(
            "A", "node1", MigrationOptions(rates=RATES))
        holder["report"] = report
        holder["workload"] = workload
    env.process(main(env))
    env.run()
    return holder["report"], holder["workload"], cluster, middleware


class TestMigrationConsistency:
    @pytest.mark.parametrize("policy", ALL_POLICIES,
                             ids=lambda p: p.name)
    def test_slave_equals_master_after_switchover(self, env, policy):
        report, _workload, _cluster, _middleware = run_migration(
            env, policy)
        assert report.consistent is True, report.inconsistencies

    @pytest.mark.parametrize("policy", ALL_POLICIES,
                             ids=lambda p: p.name)
    def test_consistency_across_seeds(self, env, policy):
        report, _w, _c, _m = run_migration(env, policy, seed=1234,
                                           read_ratio=0.2)
        assert report.consistent is True, report.inconsistencies

    def test_slave_state_reflects_all_committed_increments(self, env):
        report, workload, cluster, _mw = run_migration(env, MADEUS)
        slave = cluster.node("node1").instance.tenant("A")
        table = slave.table("kv")
        for key, increments in workload.committed_increments.items():
            row = table.chain(key).latest()
            assert row["v"] == increments, "key %d" % key

    def test_post_switch_traffic_lands_on_slave(self, env):
        cluster, middleware = build(env, MADEUS)
        holder = {}

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 10)
            middleware.register_tenant("A", "node0")
            report = yield from middleware.migrate(
                "A", "node1", MigrationOptions(rates=RATES))
            conn = middleware.connect("A")
            yield from middleware.submit(conn, "BEGIN")
            yield from middleware.submit(conn,
                                         "SELECT v FROM kv WHERE k = 0")
            result = yield from middleware.submit(
                conn, "UPDATE kv SET v = v + 100 WHERE k = 0")
            assert result.ok
            yield from middleware.submit(conn, "COMMIT")
            holder["report"] = report
        env.process(main(env))
        env.run()
        assert holder["report"].consistent
        slave = cluster.node("node1").instance.tenant("A")
        assert slave.table("kv").chain(0).latest()["v"] == 100
        master = cluster.node("node0").instance.tenant("A")
        assert master.table("kv").chain(0).latest()["v"] == 0

    def test_route_updated_after_switchover(self, env):
        _report, _w, _cluster, middleware = run_migration(env, MADEUS)
        assert middleware.route("A") == "node1"


class TestLsirCompliance:
    def test_madeus_schedule_satisfies_lsir(self, env):
        report, _w, _c, _m = run_migration(env, MADEUS, validate=True)
        assert report.lsir_violations == []

    def test_bcon_schedule_satisfies_lsir_rules_too(self, env):
        """B-CON is stricter than the LSIR (serial commits), so its
        schedules also validate."""
        report, _w, _c, _m = run_migration(env, B_CON, validate=True)
        assert report.lsir_violations == []

    def test_serial_commit_order_replay_may_violate_1b(self, env):
        """B-MIN replays in commit order: a first read whose snapshot
        predates an earlier-committing concurrent transaction is
        replayed late (rule 1-b).  Consistency still holds for the
        primary-key workload, which is why B-MIN 'works' in the paper
        despite lacking CON-FW."""
        report, _w, _c, _m = run_migration(env, B_MIN, validate=True,
                                           read_ratio=0.0, clients=8)
        # Not asserted as a violation *must* exist (timing dependent),
        # but consistency must hold either way.
        assert report.consistent is True

    def test_madeus_group_commit_observed(self, env):
        report, _w, _c, _m = run_migration(env, MADEUS, clients=10,
                                           txns=80, read_ratio=0.1)
        assert report.slave_mean_group_size >= 1.0
        assert report.slave_flush_count <= report.slave_commit_count


class TestMigrationReports:
    def test_phases_are_ordered(self, env):
        report, _w, _c, _m = run_migration(env, MADEUS)
        assert (report.started_at <= report.snapshot_at
                <= report.restored_at <= report.caught_up_at
                <= report.switched_at <= report.ended_at)

    def test_migration_time_is_sum_of_phases(self, env):
        report, _w, _c, _m = run_migration(env, MADEUS)
        total = (report.dump_time + report.restore_time
                 + report.catchup_time + report.switch_time)
        assert report.migration_time == pytest.approx(total)

    def test_snapshot_size_positive(self, env):
        report, _w, _c, _m = run_migration(env, MADEUS)
        assert report.snapshot_size_mb > 0

    def test_report_stored_on_middleware(self, env):
        _report, _w, _c, middleware = run_migration(env, MADEUS)
        assert len(middleware.reports) == 1

    def test_policy_name_recorded(self, env):
        report, _w, _c, _m = run_migration(env, B_ALL)
        assert report.policy == "B-ALL"

    def test_syncset_counters_match_propagated(self, env):
        report, _w, _c, _m = run_migration(env, MADEUS, read_ratio=0.0)
        assert report.syncsets_propagated > 0
        assert report.operations_propagated >= report.syncsets_propagated


class TestMigrationErrors:
    def test_migrate_unknown_tenant_raises(self, env):
        _cluster, middleware = build(env, MADEUS)

        def proc(env):
            try:
                yield from middleware.migrate(
                    "ghost", "node1", MigrationOptions(rates=RATES))
            except RoutingError as exc:
                return str(exc)
        assert "ghost" in drive(env, proc(env))

    def test_migrate_to_same_node_raises(self, env):
        cluster, middleware = build(env, MADEUS)

        def proc(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 5)
            middleware.register_tenant("A", "node0")
            try:
                yield from middleware.migrate(
                    "A", "node0", MigrationOptions(rates=RATES))
            except MigrationError as exc:
                return str(exc)
        assert "already on" in drive(env, proc(env))

    def test_double_migration_rejected(self, env):
        cluster, middleware = build(env, MADEUS)
        errors = []

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 30)
            # Give the database real bulk so the migration takes a while.
            cluster.node("node0").instance.tenant(
                "A").fixed_overhead_mb = 5.0
            middleware.register_tenant("A", "node0")

            def second(env):
                yield env.timeout(0.5)
                try:
                    yield from middleware.migrate(
                        "A", "node1", MigrationOptions(rates=RATES))
                except MigrationError as exc:
                    errors.append(str(exc))
            env.process(second(env))
            yield from middleware.migrate(
                "A", "node1", MigrationOptions(rates=RATES))
        env.process(main(env))
        env.run()
        assert errors and "already migrating" in errors[0]

    def test_catchup_timeout_surfaces_as_na(self, env):
        """With an impossibly small deadline the migration reports the
        paper's 'N/A' outcome instead of hanging."""
        cluster, middleware = build(env, B_CON, validate_lsir=False,
                                    deadline=0.001)
        outcome = {}

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 30)
            cluster.node("node0").instance.tenant(
                "A").fixed_overhead_mb = 5.0
            middleware.register_tenant("A", "node0")
            config = KvWorkloadConfig(keys=30, clients=8,
                                      transactions_per_client=500,
                                      read_only_ratio=0.0,
                                      think_time=0.005)
            run_kv_clients(env, middleware, "A", config, seed=3)
            yield env.timeout(0.05)
            try:
                yield from middleware.migrate(
                    "A", "node1", MigrationOptions(rates=RATES))
            except CatchUpTimeout as exc:
                outcome["timeout"] = exc
        env.process(main(env))
        env.run()
        assert "timeout" in outcome
        assert outcome["timeout"].elapsed >= 0

    def test_migration_retry_after_timeout_succeeds(self, env):
        cluster, middleware = build(env, MADEUS, validate_lsir=False,
                                    deadline=0.0001)
        outcome = {}

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 20)
            cluster.node("node0").instance.tenant(
                "A").fixed_overhead_mb = 2.0
            middleware.register_tenant("A", "node0")
            config = KvWorkloadConfig(keys=20, clients=4,
                                      transactions_per_client=50,
                                      think_time=0.01)
            run_kv_clients(env, middleware, "A", config, seed=9)
            yield env.timeout(0.02)
            try:
                yield from middleware.migrate(
                    "A", "node1", MigrationOptions(rates=RATES))
            except CatchUpTimeout as exc:
                outcome["first"] = exc
            # allow the orphaned propagation to wind down, then retry
            # with a workable deadline to a fresh destination name
            yield env.timeout(2.0)
            middleware.config.catchup_deadline = None
            cluster.node("node1").instance.drop_tenant("A")
            report = yield from middleware.migrate(
                "A", "node1", MigrationOptions(rates=RATES))
            outcome["second"] = report
        env.process(main(env))
        env.run()
        assert "first" in outcome
        assert outcome["second"].consistent is True


class TestWorkerBookkeeping:
    def test_mlc_counts_update_commits_only(self, env):
        cluster, middleware = build(env, MADEUS)

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 5)
            middleware.register_tenant("A", "node0")
            conn = middleware.connect("A")
            # read-only transaction: MLC unchanged
            yield from middleware.submit(conn, "BEGIN")
            yield from middleware.submit(conn,
                                         "SELECT v FROM kv WHERE k = 0")
            yield from middleware.submit(conn, "COMMIT")
            mlc_after_ro = middleware.tenant_state("A").mlc
            # update transaction: MLC + 1
            yield from middleware.submit(conn, "BEGIN")
            yield from middleware.submit(conn,
                                         "SELECT v FROM kv WHERE k = 0")
            yield from middleware.submit(
                conn, "UPDATE kv SET v = 1 WHERE k = 0")
            yield from middleware.submit(conn, "COMMIT")
            return (mlc_after_ro, middleware.tenant_state("A").mlc)
        before, after = drive(env, main(env))
        assert before == 0
        assert after == 1

    def test_ssbs_not_linked_outside_migration(self, env):
        cluster, middleware = build(env, MADEUS)

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 5)
            middleware.register_tenant("A", "node0")
            conn = middleware.connect("A")
            yield from middleware.submit(conn, "BEGIN")
            yield from middleware.submit(conn,
                                         "SELECT v FROM kv WHERE k = 1")
            yield from middleware.submit(
                conn, "UPDATE kv SET v = 1 WHERE k = 1")
            yield from middleware.submit(conn, "COMMIT")
            state = middleware.tenant_state("A")
            return (state.ssl.pending_count(), state.ssl.open_count())
        assert drive(env, main(env)) == (0, 0)

    def test_aborted_txn_discards_ssb(self, env):
        cluster, middleware = build(env, MADEUS)

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 5)
            middleware.register_tenant("A", "node0")
            conn = middleware.connect("A")
            yield from middleware.submit(conn, "BEGIN")
            yield from middleware.submit(conn,
                                         "SELECT v FROM kv WHERE k = 1")
            yield from middleware.submit(
                conn, "UPDATE kv SET v = 1 WHERE k = 1")
            yield from middleware.submit(conn, "ROLLBACK")
            state = middleware.tenant_state("A")
            return (state.ssl.open_count(), state.aborts_seen, conn.ssb)
        opens, aborts, ssb = drive(env, main(env))
        assert opens == 0
        assert aborts == 1
        assert ssb is None

    def test_engine_abort_discards_ssb_and_resets_tracker(self, env):
        cluster, middleware = build(env, MADEUS)

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 5)
            middleware.register_tenant("A", "node0")
            c1 = middleware.connect("A")
            c2 = middleware.connect("A")

            def winner(env):
                yield from middleware.submit(c1, "BEGIN")
                yield from middleware.submit(
                    c1, "SELECT v FROM kv WHERE k = 2")
                yield from middleware.submit(
                    c1, "UPDATE kv SET v = 1 WHERE k = 2")
                yield env.timeout(0.05)
                yield from middleware.submit(c1, "COMMIT")
            env.process(winner(env))
            yield env.timeout(0.01)
            yield from middleware.submit(c2, "BEGIN")
            yield from middleware.submit(c2,
                                         "SELECT v FROM kv WHERE k = 2")
            result = yield from middleware.submit(
                c2, "UPDATE kv SET v = 2 WHERE k = 2")
            yield env.timeout(0.1)
            return (result.ok, c2.ssb, c2.tracker.in_txn,
                    middleware.tenant_state("A").ssl.open_count())
        ok, ssb, in_txn, opens = drive(env, main(env))
        assert ok is False
        assert ssb is None
        assert in_txn is False
        assert opens == 0
