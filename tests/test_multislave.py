"""Multi-slave migration (Section 4.2): concurrent propagation to
several slaves, and surviving a standby failure mid-migration."""

import pytest

from repro.cluster import Cluster
from repro.core import (MADEUS, Middleware, MiddlewareConfig,
                        MigrationOptions, states_equal)
from repro.engine.dump import TransferRates
from repro.errors import MigrationError
from repro.sim import Environment
from repro.workload.simplekv import (KvWorkloadConfig, run_kv_clients,
                                     setup_kv_tenant)

RATES = TransferRates(dump_mb_s=5.0, restore_mb_s=2.0)


def build(env, nodes=3):
    cluster = Cluster(env)
    for index in range(nodes):
        cluster.add_node("node%d" % index)
    middleware = Middleware(env, cluster,
                            MiddlewareConfig(policy=MADEUS))
    return cluster, middleware


def run_multislave(env, *, fail_standby_at=None, keys=30, clients=5,
                   txns=60):
    cluster, middleware = build(env)
    holder = {}

    def main(env):
        yield from setup_kv_tenant(cluster.node("node0").instance, "A",
                                   keys)
        cluster.node("node0").instance.tenant("A").fixed_overhead_mb = 1.0
        middleware.register_tenant("A", "node0")
        config = KvWorkloadConfig(keys=keys, clients=clients,
                                  transactions_per_client=txns,
                                  think_time=0.01)
        workload = run_kv_clients(env, middleware, "A", config, seed=21)
        yield env.timeout(0.05)
        if fail_standby_at is not None:
            def failer(env):
                # wait for Step 3 (standby propagators exist), then for
                # the configured extra delay, then inject the failure
                state = middleware.tenant_state("A")
                while not state.standby_propagators:
                    yield env.timeout(0.02)
                yield env.timeout(fail_standby_at)
                if state.standby_propagators:
                    middleware.fail_standby("A", "node2")
            env.process(failer(env))
        report = yield from middleware.migrate(
                "A", "node1",
                MigrationOptions(rates=RATES, standbys=["node2"]))
        holder["report"] = report
        holder["workload"] = workload
    env.process(main(env))
    env.run()
    return holder, cluster, middleware


class TestMultiSlave:
    def test_both_slaves_end_consistent(self, env):
        holder, cluster, _mw = run_multislave(env)
        report = holder["report"]
        assert report.consistent is True
        assert report.standby_consistency == {"node2": True}
        assert report.failed_standbys == []
        equal, diffs = states_equal(
            cluster.node("node1").instance.tenant("A"),
            cluster.node("node2").instance.tenant("A"))
        assert equal, diffs

    def test_standby_receives_backlog_and_live_syncsets(self, env):
        holder, cluster, _mw = run_multislave(env)
        workload = holder["workload"]
        standby = cluster.node("node2").instance.tenant("A")
        for key, increments in workload.committed_increments.items():
            assert standby.table("kv").chain(key).latest()["v"] == \
                increments

    def test_failed_standby_is_discarded_and_migration_continues(
            self, env):
        holder, cluster, middleware = run_multislave(
            env, fail_standby_at=0.0)
        report = holder["report"]
        # migration completed despite the standby failure
        assert report.consistent is True
        assert report.failed_standbys == ["node2"]
        assert report.standby_consistency == {}
        assert middleware.route("A") == "node1"

    def test_fail_unknown_standby_raises(self, env):
        cluster, middleware = build(env)

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 5)
            middleware.register_tenant("A", "node0")
            with pytest.raises(MigrationError):
                middleware.fail_standby("A", "node2")
        process = env.process(main(env))
        env.run()
        assert process.ok

    def test_destination_cannot_be_standby(self, env):
        cluster, middleware = build(env)

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 5)
            middleware.register_tenant("A", "node0")
            try:
                yield from middleware.migrate(
                "A", "node1",
                MigrationOptions(rates=RATES, standbys=["node1"]))
            except MigrationError as exc:
                return str(exc)
        result = env.process(main(env))
        env.run()
        assert "standby" in result.value

    def test_source_cannot_be_standby(self, env):
        cluster, middleware = build(env)

        def main(env):
            yield from setup_kv_tenant(cluster.node("node0").instance,
                                       "A", 5)
            middleware.register_tenant("A", "node0")
            try:
                yield from middleware.migrate(
                "A", "node1",
                MigrationOptions(rates=RATES, standbys=["node0"]))
            except MigrationError as exc:
                return str(exc)
        result = env.process(main(env))
        env.run()
        assert "already on" in result.value
