"""Tests for the theory layer: dependencies, history recording, the
LSIR validator, and the consistency checker."""

import pytest

from repro.core import (NECESSARY_DEPENDENCIES, UNNECESSARY_DEPENDENCIES,
                        DependencyType, HistoryRecorder, LsirValidator,
                        states_equal)
from repro.engine import DbmsInstance, Session
from repro.sim import Environment

from _helpers import drive, drive_all


class TestDependencyPartition:
    def test_lemma3_partition_is_complete_and_disjoint(self):
        """Lemmas 1-3: the six types split into 4 necessary + 2 not."""
        every = set(DependencyType)
        assert NECESSARY_DEPENDENCIES | UNNECESSARY_DEPENDENCIES == every
        assert not (NECESSARY_DEPENDENCIES & UNNECESSARY_DEPENDENCIES)

    def test_lemma1_inter_ww_unnecessary(self):
        assert DependencyType.INTER_WW in UNNECESSARY_DEPENDENCIES

    def test_lemma2_intra_wr_unnecessary(self):
        assert DependencyType.INTRA_WR in UNNECESSARY_DEPENDENCIES

    def test_necessary_set_matches_lemma3(self):
        assert NECESSARY_DEPENDENCIES == {
            DependencyType.INTER_WR, DependencyType.INTER_RW,
            DependencyType.INTRA_RW, DependencyType.INTRA_WW}


@pytest.fixture
def recorded(env):
    """Run a small workload under a HistoryRecorder and return it."""
    recorder = HistoryRecorder()
    inst = DbmsInstance(env, "n0", observer=recorder)
    inst.create_tenant("T")

    def setup(env):
        s = Session(inst, "T")
        yield from s.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        yield from s.execute("BEGIN")
        for key in (1, 2):
            yield from s.execute(
                "INSERT INTO kv (k, v) VALUES (%d, 0)" % key)
        yield from s.execute("COMMIT")
    drive(env, setup(env))

    def writer(env):
        s = Session(inst, "T")
        yield from s.execute("BEGIN")
        yield from s.execute("SELECT v FROM kv WHERE k = 1")
        yield from s.execute("UPDATE kv SET v = v + 1 WHERE k = 1")
        yield from s.execute("UPDATE kv SET v = v + 1 WHERE k = 1")
        yield from s.execute("COMMIT")

    def reader(env):
        s = Session(inst, "T")
        yield env.timeout(1)
        yield from s.execute("BEGIN")
        yield from s.execute("SELECT v FROM kv WHERE k = 1")
        yield from s.execute("COMMIT")
    drive_all(env, writer(env), reader(env))
    return recorder


class TestHistoryRecorder:
    def test_committed_updates_listed_in_commit_order(self, recorded):
        updates = recorded.committed_updates()
        assert len(updates) == 2  # setup insert txn + writer txn
        csns = [t.commit_csn for t in updates]
        assert csns == sorted(csns)

    def test_read_only_txn_not_an_update(self, recorded):
        read_only = [t for t in recorded.transactions.values()
                     if t.status == "committed" and not t.writes]
        assert len(read_only) == 1

    def test_intra_ww_detected(self, recorded):
        dependencies = recorded.extract_dependencies()
        kinds = {d[0] for d in dependencies}
        assert DependencyType.INTRA_WW in kinds

    def test_inter_wr_detected(self, recorded):
        """The late reader saw the writer's committed version."""
        dependencies = recorded.extract_dependencies()
        assert any(d[0] == DependencyType.INTER_WR
                   for d in dependencies)

    def test_abort_recorded(self, env):
        recorder = HistoryRecorder()
        inst = DbmsInstance(env, "n0", observer=recorder)
        inst.create_tenant("T")

        def proc(env):
            s = Session(inst, "T")
            yield from s.execute("CREATE TABLE kv (k INT PRIMARY KEY, "
                                 "v INT)")
            yield from s.execute("BEGIN")
            yield from s.execute("SELECT v FROM kv WHERE k = 1")
            yield from s.execute("ROLLBACK")
        drive(env, proc(env))
        statuses = [t.status for t in recorder.transactions.values()]
        assert "aborted" in statuses


class TestLsirValidator:
    def _record(self, validator, events):
        for time, (ssb_id, sts, ets, kind) in enumerate(events):
            validator.record(ssb_id, sts, ets, kind, float(time))

    def test_valid_schedule_accepted(self):
        validator = LsirValidator()
        # c1 (ets=3) before r2 (sts=4): rule 1-a respected
        self._record(validator, [
            (1, 3, 3, "first_read"),
            (1, 3, 3, "commit"),
            (2, 4, 4, "first_read"),
            (2, 4, 4, "commit"),
        ])
        assert validator.is_valid

    def test_rule_1a_violation_detected(self):
        validator = LsirValidator()
        # commit with ets=3 AFTER first read with sts=4 -> violates 1-a
        self._record(validator, [
            (1, 3, 3, "first_read"),
            (2, 4, 9, "first_read"),
            (1, 3, 3, "commit"),
            (2, 4, 9, "commit"),
        ])
        problems = validator.violations()
        assert any("1-a" in p for p in problems)

    def test_rule_1b_violation_detected(self):
        validator = LsirValidator()
        # r2 has sts=3 <= ets=5 of c1, so r2 must precede c1
        self._record(validator, [
            (1, 3, 5, "first_read"),
            (1, 3, 5, "commit"),
            (2, 3, 7, "first_read"),
            (2, 3, 7, "commit"),
        ])
        problems = validator.violations()
        assert any("1-b" in p for p in problems)

    def test_concurrent_commits_allowed(self):
        """Same-instant commits (group commit) violate nothing."""
        validator = LsirValidator()
        validator.record(1, 3, 3, "first_read", 0.0)
        validator.record(2, 3, 4, "first_read", 0.0)
        validator.record(1, 3, 3, "commit", 1.0)
        validator.record(2, 3, 4, "commit", 1.0)
        assert validator.is_valid

    def test_rule_2_write_order_violation(self):
        validator = LsirValidator()
        validator.record(1, 1, 2, "first_read", 0.0)
        validator.record(1, 1, 2, "write", 1.0, write_index=1)
        validator.record(1, 1, 2, "write", 2.0, write_index=0)
        validator.record(1, 1, 2, "commit", 3.0)
        problems = validator.violations()
        assert any("rule 2" in p for p in problems)

    def test_commit_before_own_first_read_detected(self):
        validator = LsirValidator()
        validator.record(1, 5, 5, "commit", 0.0)
        validator.record(1, 5, 5, "first_read", 1.0)
        problems = validator.violations()
        assert any("before its first read" in p for p in problems)

    def test_empty_schedule_valid(self):
        assert LsirValidator().is_valid


class TestStatesEqual:
    def _tenant(self, env, rows):
        from repro.engine.schema import TableSchema
        from repro.engine.sqlmini import ColumnDef
        from repro.engine.database import TenantDatabase
        tenant = TenantDatabase("x", env)
        tenant.create_table(TableSchema("t", (
            ColumnDef("k", "INT", True), ColumnDef("v", "INT"))))
        table = tenant.table("t")
        for key, value in rows.items():
            table.install(key, 1, {"k": key, "v": value})
        return tenant

    def test_equal_states(self, env):
        a = self._tenant(env, {1: 10, 2: 20})
        b = self._tenant(env, {1: 10, 2: 20})
        equal, differences = states_equal(a, b)
        assert equal and not differences

    def test_value_difference_reported(self, env):
        a = self._tenant(env, {1: 10})
        b = self._tenant(env, {1: 11})
        equal, differences = states_equal(a, b)
        assert not equal
        assert "key 1" in differences[0]

    def test_missing_row_reported(self, env):
        a = self._tenant(env, {1: 10, 2: 20})
        b = self._tenant(env, {1: 10})
        equal, differences = states_equal(a, b)
        assert not equal

    def test_missing_table_reported(self, env):
        a = self._tenant(env, {1: 10})
        b = self._tenant(env, {1: 10})
        from repro.engine.schema import TableSchema
        from repro.engine.sqlmini import ColumnDef
        a.create_table(TableSchema("extra", (ColumnDef("k", "INT", True),)))
        equal, differences = states_equal(a, b)
        assert not equal
        assert "missing on slave" in differences[0]
